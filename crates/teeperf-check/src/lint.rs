//! `teeperf-lint`: a token/line-level lint pass over the workspace's Rust
//! sources (no rustc internals) enforcing the conventions the model
//! checker's soundness rests on.
//!
//! ## Rules
//!
//! * **`raw-atomics`** — shared-log state must only be touched through the
//!   [`tee_sim::SharedMem`] accessors (the model seam); raw
//!   `std::sync::atomic` types bypass the scheduler and make checked
//!   executions unsound. The seam itself (`shm.rs`, `sched.rs`) is
//!   allowlisted; unrelated subsystems that legitimately use atomics for
//!   non-log state carry an explicit file-level allow with a reason.
//! * **`ord-justified`** — every atomic `Ordering::` choice
//!   (`Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`) must carry an
//!   `// ord:` justification on the same line or in the comment block
//!   directly above. Memory-ordering choices are load-bearing and
//!   unreviewable without a stated reason. (`cmp::Ordering` variants do
//!   not match.)
//! * **`no-wallclock`** — protocol modules must be deterministic: no
//!   `Instant::now`, `SystemTime`, `std::time::`, `thread_rng`, or
//!   `rand::random`. Nondeterminism there would break schedule replay.
//! * **`no-unsafe`** — no `unsafe` anywhere in the workspace (the crate
//!   roots also carry `#![forbid(unsafe_code)]`; this catches sources
//!   that are not under a crate root, e.g. future fixtures or scripts).
//!
//! ## Escapes
//!
//! * File-level: `// teeperf-lint: allow(<rule>, file): <reason>`
//!   anywhere in the file disables `<rule>` for that file.
//! * Line-level: `// lint: allow(<rule>): <reason>` on the offending line
//!   or the line directly above it.
//!
//! Both forms require a non-empty reason; a reasonless allow is itself a
//! violation. Comments and string/char literals are stripped before rule
//! matching (nested block comments and raw strings included), so patterns
//! inside docs or literals never fire — which is also why this file can
//! describe the rules it enforces.

use std::path::{Path, PathBuf};

/// Lint rules, named as they appear in diagnostics and allow escapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Raw `std::sync::atomic` use outside the model seam.
    RawAtomics,
    /// Atomic `Ordering::` without an `// ord:` justification.
    OrdJustified,
    /// Wall-clock or OS randomness in a protocol module.
    NoWallclock,
    /// `unsafe` anywhere.
    NoUnsafe,
    /// A malformed or reasonless allow escape.
    BadAllow,
}

impl Rule {
    /// Stable kebab-case name used in diagnostics and allow escapes.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawAtomics => "raw-atomics",
            Rule::OrdJustified => "ord-justified",
            Rule::NoWallclock => "no-wallclock",
            Rule::NoUnsafe => "no-unsafe",
            Rule::BadAllow => "bad-allow",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s {
            "raw-atomics" => Some(Rule::RawAtomics),
            "ord-justified" => Some(Rule::OrdJustified),
            "no-wallclock" => Some(Rule::NoWallclock),
            "no-unsafe" => Some(Rule::NoUnsafe),
            _ => None,
        }
    }
}

/// One lint finding, renderable as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to the linter (repo-relative in the binary).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Files that ARE the model seam: the only places raw atomics are allowed
/// without an explicit in-file escape.
const SEAM_FILES: &[&str] = &[
    "crates/tee-sim/src/shm.rs",
    "crates/teeperf-check/src/sched.rs",
];

/// Modules implementing (or scheduling) the shared-log protocol, where
/// determinism is mandatory. The file-backed transport (`shm_file.rs`) is
/// protocol: it writes the same layout through file I/O and its replay
/// must stay deterministic. The daemon crate deliberately is NOT: its loop
/// timing (pump intervals, socket timeouts, watchdog pacing) is
/// operational, not protocol state, so wall-clock use there needs no
/// per-line allows. The windowing layer (`window.rs`, `query/windowed.rs`)
/// is protocol too: window boundaries are virtual-clock positions and a
/// wall-clock read there would make retention non-reproducible.
const PROTOCOL_MODULES: &[&str] = &[
    "crates/teeperf-core/src/log.rs",
    "crates/teeperf-core/src/batch.rs",
    "crates/teeperf-core/src/layout.rs",
    "crates/teeperf-core/src/fidelity.rs",
    "crates/teeperf-core/src/shm_file.rs",
    "crates/tee-sim/src/shm.rs",
    "crates/tee-sim/src/memmodel.rs",
    "crates/teeperf-check/src/sched.rs",
    "crates/teeperf-check/src/harness.rs",
    "crates/teeperf-check/src/explore.rs",
    "crates/teeperf-live/src/window.rs",
    "crates/teeperf-analyzer/src/query/windowed.rs",
];

/// Path-scoped rule configuration: which files are the model seam (raw
/// atomics allowed) and which modules carry the full protocol determinism
/// rules (`no-wallclock`). [`LintConfig::default`] is the workspace's
/// shipped policy; tools embedding the linter can extend either list
/// instead of editing the source.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Seam files, matched by repo-relative path suffix.
    pub seam_files: Vec<String>,
    /// Protocol modules, matched by repo-relative path suffix.
    pub protocol_modules: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            seam_files: SEAM_FILES.iter().map(|s| (*s).to_string()).collect(),
            protocol_modules: PROTOCOL_MODULES.iter().map(|s| (*s).to_string()).collect(),
        }
    }
}

impl LintConfig {
    /// Add a protocol module (full determinism rules) to the policy.
    #[must_use]
    pub fn with_protocol_module(mut self, path: &str) -> LintConfig {
        self.protocol_modules.push(path.to_string());
        self
    }

    /// Add a seam file (raw atomics allowed) to the policy.
    #[must_use]
    pub fn with_seam_file(mut self, path: &str) -> LintConfig {
        self.seam_files.push(path.to_string());
        self
    }

    fn is_seam(&self, path: &str) -> bool {
        self.seam_files.iter().any(|s| path_matches(path, s))
    }

    fn is_protocol(&self, path: &str) -> bool {
        self.protocol_modules.iter().any(|s| path_matches(path, s))
    }
}

fn path_matches(path: &str, suffix: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm == suffix || norm.ends_with(&format!("/{suffix}"))
}

/// One source line, split into what the compiler sees and what it ignores.
#[derive(Debug, Default, Clone)]
struct ScannedLine {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (delimiters kept, so token shapes survive).
    code: String,
    /// Concatenated comment text of the line.
    comment: String,
}

/// Split `source` into per-line code and comment streams. Handles line
/// comments, nested block comments, string / raw-string / byte-string
/// literals, char literals, and lifetimes (`'a` is not a char literal).
fn scan(source: &str) -> Vec<ScannedLine> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut lines = vec![ScannedLine::default()];
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(ScannedLine::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("at least one line");
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string: r"..." or r#"..."# (any hashes).
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push_str("r\"");
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                    // `'\n'`): a char literal closes with a quote within a
                    // couple of characters; a lifetime never closes.
                    let is_char = next == Some('\\')
                        || chars.get(i + 2) == Some(&'\'')
                        || (next == Some('\'')/* empty: malformed, treat as char */);
                    if is_char {
                        cur.code.push('\'');
                        state = State::Char;
                        i += 1;
                        continue;
                    }
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character (blanked anyway)
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1; // blank literal content
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// `true` if `code` contains `word` as a whole identifier (not a
/// substring of a longer identifier).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// `true` if `code` mentions an atomic `Ordering::` variant (and not just
/// `cmp::Ordering`, whose variants are Less/Equal/Greater).
fn has_atomic_ordering(code: &str) -> bool {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| code.contains(&format!("Ordering::{v}")))
}

fn has_raw_atomic(code: &str) -> bool {
    if code.contains("sync::atomic") {
        return true;
    }
    [
        "AtomicBool",
        "AtomicPtr",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
    ]
    .iter()
    .any(|t| has_word(code, t))
}

fn wallclock_pattern(code: &str) -> Option<&'static str> {
    [
        "Instant::now",
        "SystemTime",
        "std::time::",
        "thread_rng",
        "rand::random",
    ]
    .into_iter()
    .find(|p| code.contains(p))
}

/// Allow escapes parsed out of a file's comments.
#[derive(Debug, Default)]
struct Allows {
    /// Rules disabled for the whole file.
    file: Vec<Rule>,
    /// `(line, rule)` pairs: rule disabled on `line` and `line + 1`.
    line: Vec<(usize, Rule)>,
    /// Malformed escapes (reported as violations).
    bad: Vec<(usize, String)>,
}

fn parse_allows(lines: &[ScannedLine]) -> Allows {
    let mut allows = Allows::default();
    for (idx, l) in lines.iter().enumerate() {
        let lineno = idx + 1;
        // An escape must be a standalone comment (the marker at the start
        // of the comment text); prose that merely *mentions* the syntax —
        // like this module's docs — is not an escape.
        let comment = l.comment.trim_start();
        for (marker, file_scope) in [("teeperf-lint: allow(", true), ("lint: allow(", false)] {
            let Some(rest) = comment.strip_prefix(marker) else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                allows.bad.push((lineno, "unclosed allow escape".into()));
                continue;
            };
            let inside = &rest[..close];
            let after = rest[close + 1..].trim_start();
            let reason_ok = after
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            if !reason_ok {
                allows
                    .bad
                    .push((lineno, format!("allow({inside}) without a reason")));
                continue;
            }
            let mut parts = inside.split(',').map(str::trim);
            let rule_name = parts.next().unwrap_or_default();
            let scope = parts.next();
            let Some(rule) = Rule::parse(rule_name) else {
                allows
                    .bad
                    .push((lineno, format!("unknown rule in allow: {rule_name:?}")));
                continue;
            };
            match (file_scope, scope) {
                (true, Some("file")) => allows.file.push(rule),
                (true, other) => allows.bad.push((
                    lineno,
                    format!("file-level allow must say `, file` (got {other:?})"),
                )),
                (false, None) => allows.line.push((lineno, rule)),
                (false, Some(extra)) => allows
                    .bad
                    .push((lineno, format!("unexpected allow argument {extra:?}"))),
            }
            break;
        }
    }
    allows
}

/// `true` if an `ord:` marker justifies the atomic ordering at `idx`: on
/// the line itself, on an earlier line of the same (possibly wrapped)
/// statement, or in the comment block directly above the statement.
fn ord_justified(lines: &[ScannedLine], idx: usize) -> bool {
    let mut j = idx;
    loop {
        if lines[j].comment.contains("ord:") {
            return true;
        }
        if j == 0 {
            return false;
        }
        let above = &lines[j - 1];
        let code = above.code.trim_end();
        let comment_only = code.trim().is_empty() && !above.comment.is_empty();
        // A line whose code does not close a statement (no trailing `;`,
        // block brace, or emptiness) means line `j` is a continuation of
        // the same statement — rustfmt freely wraps `Ordering::` arguments
        // onto their own line, and the justification sits above the
        // statement's first line.
        let continues = !code.is_empty()
            && !code.ends_with(';')
            && !code.ends_with('}')
            && !code.ends_with('{');
        if comment_only || continues {
            j -= 1;
        } else {
            return false;
        }
    }
}

/// Lint one file's source under the default workspace policy. `path` is
/// used for diagnostics and for the path-scoped rules (seam allowlist,
/// protocol modules).
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_with(&LintConfig::default(), path, source)
}

/// Lint one file's source under an explicit [`LintConfig`].
pub fn lint_source_with(config: &LintConfig, path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = scan(source);
    let allows = parse_allows(&lines);
    let mut out = Vec::new();
    for (lineno, msg) in &allows.bad {
        out.push(Diagnostic {
            path: path.to_string(),
            line: *lineno,
            rule: Rule::BadAllow,
            message: msg.clone(),
        });
    }
    let is_seam = config.is_seam(path);
    let is_protocol = config.is_protocol(path);
    let allowed = |rule: Rule, lineno: usize| {
        allows.file.contains(&rule)
            || allows
                .line
                .iter()
                .any(|(l, r)| *r == rule && (*l == lineno || *l + 1 == lineno))
    };
    for (idx, l) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = l.code.as_str();
        if has_word(code, "unsafe") && !allowed(Rule::NoUnsafe, lineno) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::NoUnsafe,
                message: "`unsafe` is banned in this workspace".to_string(),
            });
        }
        if !is_seam && has_raw_atomic(code) && !allowed(Rule::RawAtomics, lineno) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::RawAtomics,
                message: "raw std::sync::atomic outside the SharedMem/MemModel seam \
                          (go through the seam, or add a file-level allow with a reason)"
                    .to_string(),
            });
        }
        if has_atomic_ordering(code)
            && !ord_justified(&lines, idx)
            && !allowed(Rule::OrdJustified, lineno)
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::OrdJustified,
                message: "atomic Ordering choice without an `// ord:` justification \
                          on this line or the comment block above"
                    .to_string(),
            });
        }
        if is_protocol {
            if let Some(pat) = wallclock_pattern(code) {
                if !allowed(Rule::NoWallclock, lineno) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: lineno,
                        rule: Rule::NoWallclock,
                        message: format!("{pat} in a protocol module breaks deterministic replay"),
                    });
                }
            }
        }
    }
    out
}

/// Directories (by component name) never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collect every `.rs` file under `root` (sorted, for stable output),
/// skipping build output and lint test fixtures.
///
/// # Errors
/// The first I/O error hit while walking.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` source under `root`. Diagnostics carry root-relative
/// paths.
///
/// # Errors
/// The first I/O error hit while walking or reading.
pub fn lint_tree(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    for path in collect_sources(root)? {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_source(&label, &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn scanner_strips_comments_and_literals() {
        let src = "let x = \"unsafe Ordering::SeqCst\"; // unsafe here too\n\
                   /* AtomicU64 in a block\ncomment */ let y = 'a';\n\
                   let s = r#\"Instant::now\"#; let lt: &'static str = \"\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here too"));
        assert!(!lines[0].code.contains("SeqCst"));
        assert!(lines[1].comment.contains("AtomicU64"));
        assert!(lines[2].comment.contains("comment"));
        assert!(lines[2].code.contains("let y"));
        assert!(!lines[3].code.contains("Instant"));
        assert!(
            lines[3].code.contains("'static"),
            "lifetime survives as code"
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 1;\n";
        let lines = scan(src);
        assert!(lines[0].code.contains("let z"));
        assert!(!lines[0].code.contains("outer"));
    }

    #[test]
    fn unsafe_in_code_fires_in_strings_does_not() {
        let bad = lint_source("x.rs", "unsafe { foo() }\n");
        assert_eq!(rules(&bad), vec![Rule::NoUnsafe]);
        assert!(lint_source("x.rs", "let s = \"unsafe\";\n").is_empty());
        // Substrings of identifiers do not fire.
        assert!(lint_source("x.rs", "fn unsafely_named() {}\n").is_empty());
    }

    #[test]
    fn raw_atomics_fire_outside_seam_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            rules(&lint_source("crates/foo/src/a.rs", src)),
            vec![Rule::RawAtomics]
        );
        assert!(lint_source("crates/tee-sim/src/shm.rs", src).is_empty());
        assert!(lint_source("crates/teeperf-check/src/sched.rs", src).is_empty());
    }

    #[test]
    fn ord_requires_justification_nearby() {
        let bare = "x.store(1, Ordering::Relaxed);\n";
        assert_eq!(rules(&lint_source("a.rs", bare)), vec![Rule::OrdJustified]);
        let same_line = "x.store(1, Ordering::Relaxed); // ord: test handoff\n";
        assert!(lint_source("a.rs", same_line).is_empty());
        let above = "// ord: release pairs with the acquire in poll()\n\
                     x.store(1, Ordering::Release);\n";
        assert!(lint_source("a.rs", above).is_empty());
        let block_above = "// ord: multi-line justification that wraps onto\n\
                           // a second comment line before the access\n\
                           x.store(1, Ordering::Release);\n";
        assert!(lint_source("a.rs", block_above).is_empty());
        // A comment block that exists but never says ord: does not count.
        let unrelated = "// just a comment\nx.store(1, Ordering::Release);\n";
        assert_eq!(
            rules(&lint_source("a.rs", unrelated)),
            vec![Rule::OrdJustified]
        );
        // A wrapped statement is justified by the comment above its first
        // line, even with code continuation lines in between.
        let wrapped = "// ord: cas failure still observes prior writes\n\
                       let prev = self.words[i]\n\
                           .compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n";
        assert!(lint_source("a.rs", wrapped).is_empty());
        // ...but a *finished* statement in between breaks the link.
        let broken = "// ord: stale justification\n\
                      let y = 1;\n\
                      x.store(1, Ordering::Release);\n";
        assert_eq!(
            rules(&lint_source("a.rs", broken)),
            vec![Rule::OrdJustified]
        );
        // cmp::Ordering variants are not atomic orderings.
        assert!(lint_source("a.rs", "if c == Ordering::Equal {}\n").is_empty());
    }

    #[test]
    fn wallclock_fires_only_in_protocol_modules() {
        let src = "let t = Instant::now();\n";
        assert!(lint_source("crates/bench/src/live.rs", src).is_empty());
        assert_eq!(
            rules(&lint_source("crates/teeperf-core/src/log.rs", src)),
            vec![Rule::NoWallclock]
        );
    }

    #[test]
    fn file_transport_is_a_protocol_module() {
        // The file-backed shared log writes the same layout the in-memory
        // protocol defines: its module carries the full determinism rules.
        let src = "let t = Instant::now();\n";
        assert_eq!(
            rules(&lint_source("crates/teeperf-core/src/shm_file.rs", src)),
            vec![Rule::NoWallclock]
        );
    }

    #[test]
    fn daemon_modules_may_use_wall_clock_without_allows() {
        // Daemon loop timing is operational, not protocol state: no
        // per-line allows needed for Instant/SystemTime there.
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        assert!(lint_source("crates/teeperf-daemon/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/teeperf-daemon/src/bin/teeperfd.rs", src).is_empty());
    }

    #[test]
    fn lint_config_extends_both_path_scopes() {
        let wall = "let t = Instant::now();\n";
        let atomics = "use std::sync::atomic::AtomicU64;\n";
        let config = LintConfig::default()
            .with_protocol_module("crates/ext/src/proto.rs")
            .with_seam_file("crates/ext/src/seam.rs");
        assert_eq!(
            rules(&lint_source_with(&config, "crates/ext/src/proto.rs", wall)),
            vec![Rule::NoWallclock]
        );
        assert!(lint_source_with(&config, "crates/ext/src/seam.rs", atomics).is_empty());
        // The default policy is untouched by the extension.
        assert!(lint_source("crates/ext/src/proto.rs", wall).is_empty());
        assert_eq!(
            rules(&lint_source("crates/ext/src/seam.rs", atomics)),
            vec![Rule::RawAtomics]
        );
    }

    #[test]
    fn file_level_allow_disables_rule_with_reason() {
        let src = "// teeperf-lint: allow(raw-atomics, file): perf counters, not log state\n\
                   use std::sync::atomic::AtomicU64;\n";
        assert!(lint_source("crates/foo/src/a.rs", src).is_empty());
        let reasonless = "// teeperf-lint: allow(raw-atomics, file):\n\
                          use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            rules(&lint_source("crates/foo/src/a.rs", reasonless)),
            vec![Rule::BadAllow, Rule::RawAtomics]
        );
    }

    #[test]
    fn line_level_allow_covers_its_line_and_the_next() {
        let src = "// lint: allow(ord-justified): exercised by the golden test\n\
                   x.store(1, Ordering::Relaxed);\n";
        assert!(lint_source("a.rs", src).is_empty());
        let far = "// lint: allow(ord-justified): too far away\n\
                   let y = 1;\n\
                   x.store(1, Ordering::Relaxed);\n";
        assert_eq!(rules(&lint_source("a.rs", far)), vec![Rule::OrdJustified]);
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// lint: allow(no-such-rule): whatever\n";
        assert_eq!(rules(&lint_source("a.rs", src)), vec![Rule::BadAllow]);
    }
}
