//! `teeperf-check`: a concurrency-correctness toolchain for the lock-free
//! shared-memory log ([`teeperf_core::log`]).
//!
//! Two halves, both offline and dependency-free:
//!
//! * **Model checking** ([`sched`], [`harness`], [`explore`]): the real
//!   `write_live` / `poll` / `rotate` protocol code runs against a virtual
//!   scheduler (via the [`tee_sim::MemModel`] seam) that owns every
//!   interleaving decision. Small configs are enumerated exhaustively
//!   under a preemption bound; larger ones are swept with seeded
//!   PCT-style random schedules. Machine-checked invariants: every
//!   published entry is drained exactly once or counted dropped exactly
//!   once, `dropped_total` never over-counts across rotation, reused
//!   slots never resurrect stale payloads, and the rotation handshake
//!   terminates. A mutation mode re-introduces the historical bug classes
//!   (behind `teeperf-core`'s test-only `mutation-testing` feature) and
//!   the checker finds each within a bounded schedule budget, emitting a
//!   deterministically replayable trace.
//!
//! * **Protocol linting** ([`lint`]): a token-level pass over the
//!   workspace's `.rs` sources enforcing the conventions the model
//!   checker's soundness rests on — no raw atomics outside the seam,
//!   every atomic `Ordering` choice justified by an `// ord:` comment, no
//!   wall-clock or OS randomness in protocol modules, and no `unsafe`
//!   anywhere.
//!
//! Binaries: `teeperf-check` (the checker CLI) and `teeperf-lint` (the
//! lint pass; exits non-zero on violations). See `DESIGN.md` §11.

#![forbid(unsafe_code)]

pub mod explore;
pub mod harness;
pub mod lint;
pub mod sched;
