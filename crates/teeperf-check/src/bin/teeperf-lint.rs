//! Protocol lint pass over the workspace's Rust sources.
//!
//! ```text
//! teeperf-lint [root]        # default root: current directory
//! ```
//!
//! Prints one `path:line: [rule] message` diagnostic per finding and exits
//! 1 if there are any (the CI `lint-protocol` stage treats every finding
//! as an error), 2 on I/O or usage problems. See
//! [`teeperf_check::lint`] for the rules and their escape hatches.

#![forbid(unsafe_code)]

use std::path::Path;

use teeperf_check::lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => ".".to_string(),
        [root] if !root.starts_with('-') => root.clone(),
        _ => {
            eprintln!("usage: teeperf-lint [root]");
            std::process::exit(2);
        }
    };
    let diags = match lint::lint_tree(Path::new(&root)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("teeperf-lint: {e}");
            std::process::exit(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("teeperf-lint: clean");
        std::process::exit(0);
    }
    eprintln!("teeperf-lint: {} violation(s)", diags.len());
    std::process::exit(1);
}
