//! Schedule-exploring model checker for the lock-free shared-memory log.
//!
//! ```text
//! teeperf-check --smoke                 # CI entry point: exhaustive small
//!                                       # config + seeded PCT sweep +
//!                                       # mutation detection, hard bounded
//! teeperf-check --mutation <name>       # hunt one mutation (dfs then pct)
//! teeperf-check --pct N --seed S        # seeded random sweep only
//! teeperf-check --replay <trace-file>   # re-run a recorded regression
//!                                       # trace; fails unless the expected
//!                                       # violation is re-found
//! teeperf-check --record <trace-file> --mutation <name>
//!                                       # hunt, then write the finding as
//!                                       # a replayable trace file
//! ```
//!
//! Exit status: 0 when every expectation holds (clean configs stay clean,
//! armed mutations are caught, replays re-find their violation), 1
//! otherwise, 2 on usage errors.

#![forbid(unsafe_code)]

use teeperf_check::explore::{self, CheckReport};
use teeperf_check::harness::{Config, MutationKind};

/// Preemption bound for exhaustive runs; both historical bug classes need
/// exactly one forced switch, so 2 adds safety margin while staying small.
const DFS_PREEMPTION_BOUND: usize = 2;
/// Cap on executions per exhaustive run (honestly reported as truncation
/// if hit; the smoke configs finish well under it).
const DFS_EXECUTION_CAP: usize = 200_000;
/// PCT depth (number of priority change points + 1).
const PCT_DEPTH: usize = 3;

fn usage() -> ! {
    eprintln!(
        "usage: teeperf-check --smoke\n\
         \x20      teeperf-check --mutation <none|stale-slot-resurrection|drop-double-count\n\
         \x20                    |abandoned-as-dropped|torn-regime-read>\n\
         \x20                    [--pct N] [--seed S] [--record <file>]\n\
         \x20      teeperf-check --pct N [--seed S]\n\
         \x20      teeperf-check --replay <trace-file>"
    );
    std::process::exit(2);
}

/// Small config whose bounded schedule space is fully enumerable; the
/// stale-slot bug is reachable here with one preemption. No observer: the
/// extra role inflates the bounded space past what exhaustion can cover in
/// a smoke budget, and only the drop-accounting invariant needs it.
fn small_config(mutation: MutationKind) -> Config {
    Config {
        writers: 2,
        entries_per_writer: 1,
        capacity: 1,
        mid_rotations: 1,
        observer_reads: 0,
        batch_slots: 1,
        regime_flips: 0,
        mutation,
    }
}

/// [`small_config`] plus the concurrent `dropped_total()` observer — the
/// role that can see transient drop double-counting.
fn observer_config(mutation: MutationKind) -> Config {
    Config {
        observer_reads: 2,
        ..small_config(mutation)
    }
}

/// Larger config for the PCT sweep: enough writers and epochs that
/// interesting interleavings are dense, too many to enumerate.
fn sweep_config(mutation: MutationKind) -> Config {
    Config {
        writers: 3,
        entries_per_writer: 2,
        capacity: 2,
        mid_rotations: 2,
        observer_reads: 3,
        batch_slots: 1,
        regime_flips: 0,
        mutation,
    }
}

/// Small batched config whose bounded space is still enumerable: two
/// writers claiming runs of two slots over a three-slot log, so one run
/// always straddles the capacity edge and hands back its over-capacity
/// remainder. The abandoned-slot accounting bugs are reachable here.
fn batched_config(mutation: MutationKind) -> Config {
    Config {
        writers: 2,
        entries_per_writer: 2,
        capacity: 3,
        mid_rotations: 1,
        observer_reads: 0,
        batch_slots: 2,
        regime_flips: 0,
        mutation,
    }
}

/// Small regime-flipping config whose bounded space is still enumerable:
/// two writers decode the regime word before each append while the drainer
/// publishes one flip at its mid-rotation. The torn regime read needs one
/// preemption (flip lands between a decode's two halves) to surface.
fn regime_config(mutation: MutationKind) -> Config {
    Config {
        entries_per_writer: 2,
        capacity: 2,
        regime_flips: 1,
        ..small_config(mutation)
    }
}

/// [`sweep_config`] with regime flips at every mid-rotation, for PCT over
/// decode/publish interleavings (and exactly-once drain across flips).
fn regime_sweep_config(mutation: MutationKind) -> Config {
    Config {
        regime_flips: 2,
        ..sweep_config(mutation)
    }
}

/// [`sweep_config`] with batched reservation, for PCT over the
/// reserve-run/publish/abandon interleavings of the batched protocol.
fn batched_sweep_config(mutation: MutationKind) -> Config {
    Config {
        batch_slots: 2,
        ..sweep_config(mutation)
    }
}

/// The PCT sweep config that can expose `mutation`: the abandoned-slot
/// mutation needs hand-backs, which only batched reservation produces.
fn sweep_for(mutation: MutationKind) -> Config {
    match mutation {
        MutationKind::AbandonedAsDropped => batched_sweep_config(mutation),
        // The torn read needs regime publishes to tear against.
        MutationKind::TornRegimeRead => regime_sweep_config(mutation),
        _ => sweep_config(mutation),
    }
}

/// Run one check and assert the expectation; prints the report either way.
fn expect(report: &CheckReport, expect_violation: bool) -> bool {
    println!("{}", report.summary());
    if expect_violation == report.violation.is_some() {
        return true;
    }
    if expect_violation {
        eprintln!("FAIL: armed mutation survived the schedule budget");
    } else {
        eprintln!("FAIL: the clean protocol violated an invariant");
        if let Some(v) = &report.violation {
            eprintln!("  {v}");
            eprintln!("  replay schedule: {:?}", v.schedule);
        }
    }
    false
}

/// Hunt a mutation: exhaustive DFS on the smallest config that can expose
/// it first, then a PCT sweep on the larger one. Returns the first finding
/// report.
fn hunt(mutation: MutationKind, pct_schedules: usize, base_seed: u64) -> CheckReport {
    let dfs_config = match mutation {
        // Transient over-counts are only visible to the observer role.
        MutationKind::DroppedDoubleCount => observer_config(mutation),
        // Mis-charged hand-backs need batched reservation to exist at all.
        MutationKind::AbandonedAsDropped => batched_config(mutation),
        // A torn decode needs a regime publish to tear against.
        MutationKind::TornRegimeRead => regime_config(mutation),
        _ => small_config(mutation),
    };
    let dfs = explore::check_exhaustive(&dfs_config, DFS_PREEMPTION_BOUND, DFS_EXECUTION_CAP);
    if dfs.violation.is_some() || mutation == MutationKind::None {
        // For the clean protocol the caller wants both phases; for a
        // mutation the DFS finding is already the answer.
        if dfs.violation.is_some() {
            return dfs;
        }
    }
    println!("{}", dfs.summary());
    explore::check_pct(&sweep_for(mutation), PCT_DEPTH, base_seed, pct_schedules)
}

fn smoke() -> bool {
    let mut ok = true;
    // 1. Clean protocol, exhaustively: every schedule with <= 2 preemptions
    //    of the small config upholds every invariant.
    let clean_dfs = explore::check_exhaustive(
        &small_config(MutationKind::None),
        DFS_PREEMPTION_BOUND,
        DFS_EXECUTION_CAP,
    );
    ok &= expect(&clean_dfs, false);
    if !clean_dfs.exhausted {
        eprintln!("FAIL: smoke DFS did not exhaust its bounded space");
        ok = false;
    }
    // 1b. Same, with the concurrent observer role, under a tighter
    //     preemption bound (the fourth role inflates the bound-2 space
    //     past a smoke budget; one preemption still covers every
    //     single-switch interleaving of reads against the rotation).
    let clean_obs =
        explore::check_exhaustive(&observer_config(MutationKind::None), 1, DFS_EXECUTION_CAP);
    ok &= expect(&clean_obs, false);
    if !clean_obs.exhausted {
        eprintln!("FAIL: smoke observer DFS did not exhaust its bounded space");
        ok = false;
    }
    // 1c. Clean batched protocol, exhaustively: every schedule of the
    //     reserve-run/publish/abandon state machine with <= 2 preemptions
    //     upholds exactly-once drain and abandoned-slot accounting.
    let clean_batched = explore::check_exhaustive(
        &batched_config(MutationKind::None),
        DFS_PREEMPTION_BOUND,
        DFS_EXECUTION_CAP,
    );
    ok &= expect(&clean_batched, false);
    if !clean_batched.exhausted {
        eprintln!("FAIL: smoke batched DFS did not exhaust its bounded space");
        ok = false;
    }
    // 1d. Clean regime-flipping protocol, exhaustively: whole-word decodes
    //     always name a published `(regime, epoch)` pair, and exactly-once
    //     drain holds across every transition interleaving.
    let clean_regime = explore::check_exhaustive(
        &regime_config(MutationKind::None),
        DFS_PREEMPTION_BOUND,
        DFS_EXECUTION_CAP,
    );
    ok &= expect(&clean_regime, false);
    if !clean_regime.exhausted {
        eprintln!("FAIL: smoke regime DFS did not exhaust its bounded space");
        ok = false;
    }
    // 2. Clean protocol, 200 seeded PCT schedules of the larger config,
    //    classic, batched, and regime-flipping.
    let clean_pct = explore::check_pct(&sweep_config(MutationKind::None), PCT_DEPTH, 1, 200);
    ok &= expect(&clean_pct, false);
    let clean_batched_pct =
        explore::check_pct(&batched_sweep_config(MutationKind::None), PCT_DEPTH, 1, 200);
    ok &= expect(&clean_batched_pct, false);
    let clean_regime_pct =
        explore::check_pct(&regime_sweep_config(MutationKind::None), PCT_DEPTH, 1, 200);
    ok &= expect(&clean_regime_pct, false);
    // 3. Each historical bug class, re-introduced, is caught.
    for mutation in [
        MutationKind::StaleSlotResurrection,
        MutationKind::DroppedDoubleCount,
        MutationKind::AbandonedAsDropped,
        MutationKind::TornRegimeRead,
    ] {
        let found = hunt(mutation, 200, 1);
        ok &= expect(&found, true);
        // 4. The recorded evidence replays deterministically.
        if let Some(v) = &found.violation {
            let replayed = explore::replay(&found.config, v.schedule.clone());
            match replayed {
                Some(rv) if rv.kind == v.kind => {
                    println!(
                        "  replay({} steps) re-found {}",
                        v.schedule.len(),
                        rv.kind.name()
                    );
                }
                other => {
                    eprintln!(
                        "FAIL: schedule replay for {} found {:?}, expected {}",
                        mutation.name(),
                        other.map(|v| v.kind.name().to_string()),
                        v.kind.name()
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

fn replay_trace(path: &str) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("read {path}: {e}");
            return false;
        }
    };
    let (cfg, depth, seed, expect_kind) = match explore::parse_trace(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("parse {path}: {e}");
            return false;
        }
    };
    let report = explore::replay_seed(&cfg, depth, seed);
    println!("{}", report.summary());
    let found = report
        .violation
        .as_ref()
        .map_or("none".to_string(), |v| v.kind.name().to_string());
    if found == expect_kind {
        println!("trace {path}: re-found `{expect_kind}` from seed {seed}");
        true
    } else {
        eprintln!("FAIL: trace {path} expected `{expect_kind}`, got `{found}`");
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke_mode = false;
    let mut mutation: Option<MutationKind> = None;
    let mut pct: Option<usize> = None;
    let mut seed = 1u64;
    let mut replay_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--mutation" => {
                let v = value("--mutation");
                mutation = Some(MutationKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown mutation: {v}");
                    usage()
                }));
            }
            "--pct" => {
                let v = value("--pct");
                pct = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --pct count: {v}");
                    usage()
                }));
            }
            "--seed" => {
                let v = value("--seed");
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed: {v}");
                    usage()
                });
            }
            "--replay" => replay_path = Some(value("--replay")),
            "--record" => record_path = Some(value("--record")),
            _ => {
                eprintln!("unknown argument: {arg}");
                usage()
            }
        }
    }

    let ok = if smoke_mode {
        smoke()
    } else if let Some(path) = replay_path {
        replay_trace(&path)
    } else if let Some(mutation) = mutation {
        let report = if record_path.is_some() {
            // A recorded trace replays a single PCT seed, so the hunt must
            // come from the PCT phase; skip the DFS one.
            explore::check_pct(&sweep_for(mutation), PCT_DEPTH, seed, pct.unwrap_or(200))
        } else {
            hunt(mutation, pct.unwrap_or(200), seed)
        };
        let ok = expect(&report, mutation != MutationKind::None);
        if ok {
            if let (Some(path), Some(found_seed)) = (&record_path, report.seed) {
                let text = explore::format_trace(&report.config, PCT_DEPTH, found_seed, &report);
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("write {path}: {e}");
                    std::process::exit(1);
                }
                println!("recorded trace to {path}");
            } else if record_path.is_some() {
                eprintln!("note: --record needs a PCT finding (none recorded)");
            }
        }
        ok
    } else if let Some(schedules) = pct {
        let report = explore::check_pct(
            &sweep_config(MutationKind::None),
            PCT_DEPTH,
            seed,
            schedules,
        );
        expect(&report, false)
    } else {
        usage()
    };
    std::process::exit(i32::from(!ok));
}
