//! The protocol harness: runs the *real* `teeperf_core::log` live protocol
//! (`write_live` / `poll` / `rotate`) under the virtual scheduler and
//! checks machine-readable invariants against independently tracked ground
//! truth.
//!
//! Roles (one virtual thread each, in fixed [`VTid`] order so schedules
//! replay):
//!
//! * **writers** `0..W` — each appends `entries_per_writer` entries with
//!   globally unique addresses via `SharedLog::write_live`, recording every
//!   attempt and its outcome.
//! * **drainer** `W` — owns the `LogCursor`: polls, performs up to
//!   `mid_rotations` rotations while writers are still running (this is
//!   what exercises slot reuse across epochs), then one final rotation
//!   after every writer has finished.
//! * **observer** `W+1` (optional) — reads `dropped_total()` concurrently
//!   and checks it against the over-count bound; this is the only role
//!   that can see the historical drop double-counting bug, whose final
//!   totals are correct and only its *transient* values lie.
//!
//! ## Invariants
//!
//! 1. **Exactly-once drain:** the multiset of drained entry addresses
//!    equals the multiset of successfully written ones — a stale-slot
//!    resurrection shows up as a duplicate, a lost entry as a hole.
//! 2. **Drop accounting:** after the final rotation, `dropped_total()`
//!    equals attempts − successes.
//! 3. **No transient drop over-count:** every observer read of
//!    `dropped_total()` is ≤ completed drops + writers still inside the
//!    protocol (each can contribute at most one unreported drop). Transient
//!    *under*-reporting is documented and allowed; over-reporting means the
//!    same drop was visible in two words at once.
//! 4. **Validity:** nothing drained is torn or unpublished.
//! 5. **Termination:** the execution completes — a schedule under which
//!    every unfinished thread is parked is a livelock of the rotation
//!    handshake (checked by the scheduler itself).

use std::sync::{Arc, Mutex, MutexGuard};

use tee_sim::SharedMem;
use teeperf_core::layout::{EntryValidity, EventKind, LogEntry};
use teeperf_core::log::{make_header, mutation::Mutation, region_bytes, LogCursor, SharedLog};
use teeperf_core::Regime;

use crate::sched::{ChoiceSource, ExecOutcome, ExecRecord, Fleet, VTid};

/// Which historical bug class to re-introduce (mapped onto
/// `teeperf_core::log::mutation`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MutationKind {
    /// The shipped protocol, no bug.
    #[default]
    None,
    /// PR-1 class: rotation keeps stale publication words on reused slots.
    StaleSlotResurrection,
    /// PR-1-review / PR-5 class: rotation counts the closing epoch's drops
    /// into the cumulative word before resetting the tail.
    DroppedDoubleCount,
    /// Batched-reservation class: rotation charges over-capacity batch
    /// hand-backs as drops while also counting them as abandoned, so each
    /// hand-back is accounted twice.
    AbandonedAsDropped,
    /// Fidelity-regime class: a writer reads the shared regime word as two
    /// 32-bit halves instead of one word, so a concurrent publish can tear
    /// the epoch half away from the regime half.
    TornRegimeRead,
}

impl MutationKind {
    fn arm(self) -> Mutation {
        match self {
            MutationKind::None => Mutation::None,
            MutationKind::StaleSlotResurrection => Mutation::SkipSlotClear,
            MutationKind::DroppedDoubleCount => Mutation::CountDropsBeforeTailReset,
            MutationKind::AbandonedAsDropped => Mutation::CountAbandonedAsDropped,
            MutationKind::TornRegimeRead => Mutation::TornRegimeRead,
        }
    }

    /// Stable kebab-case name (trace files, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::None => "none",
            MutationKind::StaleSlotResurrection => "stale-slot-resurrection",
            MutationKind::DroppedDoubleCount => "drop-double-count",
            MutationKind::AbandonedAsDropped => "abandoned-as-dropped",
            MutationKind::TornRegimeRead => "torn-regime-read",
        }
    }

    /// Parse a [`MutationKind::name`] back.
    pub fn parse(s: &str) -> Option<MutationKind> {
        match s {
            "none" => Some(MutationKind::None),
            "stale-slot-resurrection" => Some(MutationKind::StaleSlotResurrection),
            "drop-double-count" => Some(MutationKind::DroppedDoubleCount),
            "abandoned-as-dropped" => Some(MutationKind::AbandonedAsDropped),
            "torn-regime-read" => Some(MutationKind::TornRegimeRead),
            _ => None,
        }
    }
}

/// One checked scenario: how many writers, how much log, how much drainer
/// and observer activity, and which mutation (if any) is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Concurrent `write_live` threads.
    pub writers: usize,
    /// Entries each writer appends.
    pub entries_per_writer: u64,
    /// Log capacity in entries (small on purpose: forces reuse + drops).
    pub capacity: u64,
    /// Rotations the drainer performs while writers may still be running.
    pub mid_rotations: u64,
    /// Concurrent `dropped_total()` reads by the observer role (0 = no
    /// observer thread).
    pub observer_reads: u64,
    /// Slots each writer claims per tail reservation: `1` appends via
    /// `write_live`, `> 1` via a per-writer `BatchWriter` — exercising the
    /// reserve-run / publish / abandon interleavings.
    pub batch_slots: u64,
    /// Fidelity-regime transitions the drainer publishes through the
    /// shared regime word at its mid-rotations (cycling a fixed ladder).
    /// With flips armed (or the torn-read mutation), every writer decodes
    /// the regime word before each append and the decode is checked
    /// against the published set. 0 leaves the regime machinery — and the
    /// schedule space of pre-regime configs — untouched.
    pub regime_flips: u64,
    /// Armed protocol mutation.
    pub mutation: MutationKind,
}

impl Config {
    /// Virtual threads this config schedules.
    pub fn participants(&self) -> usize {
        self.writers + 1 + usize::from(self.observer_reads > 0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}w x {}e cap={} rot={} obs={} batch={} flips={} mut={}",
            self.writers,
            self.entries_per_writer,
            self.capacity,
            self.mid_rotations,
            self.observer_reads,
            self.batch_slots,
            self.regime_flips,
            self.mutation.name()
        )
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            writers: 2,
            entries_per_writer: 1,
            capacity: 1,
            mid_rotations: 1,
            observer_reads: 0,
            batch_slots: 1,
            regime_flips: 0,
            mutation: MutationKind::None,
        }
    }
}

/// An invariant the execution broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The same published entry was drained more than once (stale-slot
    /// resurrection manifests here).
    DuplicateDrain,
    /// A successfully written entry was never drained.
    LostEntry,
    /// A drained record was torn or unpublished.
    InvalidEntry,
    /// Final `dropped_total()` disagrees with attempts − successes.
    DropAccounting,
    /// Final `abandoned_total()` disagrees with the batch writers' ground
    /// truth (remainders + hand-backs + rotation-discarded runs): an
    /// abandoned slot was counted twice or not at all.
    AbandonAccounting,
    /// A concurrent `dropped_total()` read exceeded the over-count bound
    /// (the drop double-counting bug manifests here).
    ObserverOverCount,
    /// A writer decoded the regime word to a `(regime, epoch)` pair the
    /// drainer never published, or hit the corrupt-word fallback on an
    /// uncorrupted log (the torn regime read manifests here: a non-atomic
    /// read pairs one publish's epoch with another's regime).
    RegimeDecode,
    /// Every unfinished thread was parked: the handshake livelocked.
    Livelock,
    /// Protocol code panicked under this schedule.
    Panic,
}

impl ViolationKind {
    /// Stable kebab-case name (trace files, reports).
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::DuplicateDrain => "duplicate-drain",
            ViolationKind::LostEntry => "lost-entry",
            ViolationKind::InvalidEntry => "invalid-entry",
            ViolationKind::DropAccounting => "drop-accounting",
            ViolationKind::AbandonAccounting => "abandon-accounting",
            ViolationKind::ObserverOverCount => "observer-over-count",
            ViolationKind::RegimeDecode => "regime-decode",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Panic => "panic",
        }
    }
}

/// A broken invariant plus the exact schedule that broke it. Feeding
/// `schedule` back through [`crate::sched::Prescribed`] reproduces the
/// violation deterministically.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
    /// The schedule (granted thread per step) that exposed it.
    pub schedule: Vec<VTid>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [schedule: {} steps]",
            self.kind.name(),
            self.detail,
            self.schedule.len()
        )
    }
}

/// Ground truth maintained outside the shared region. Only ever touched by
/// the single currently-granted virtual thread (the scheduler serializes
/// everything), so the mutex is for the borrow checker, not for real
/// contention.
#[derive(Debug, Default)]
struct Truth {
    attempts: u64,
    written: Vec<u64>,
    completed_drops: u64,
    writers_done: usize,
    /// Slots batch writers abandoned: exit remainders + over-capacity
    /// hand-backs + runs discarded under rotation. Every one must surface
    /// exactly once in `abandoned_total()` after the final rotation.
    expected_abandoned: u64,
    observer_overcounts: Vec<String>,
    drained: Vec<LogEntry>,
    /// Every `(regime, epoch)` pair the drainer published (seeded with the
    /// init word `Full@0`). Recorded *before* the word is stored, so no
    /// writer can observe an unrecorded publish.
    published_regimes: Vec<(Regime, u32)>,
    /// Every writer decode of the regime word: `(regime, epoch, fallback)`.
    regime_observations: Vec<(Regime, u32, bool)>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The regime sequence the drainer publishes when flips are armed: each
/// step changes both halves of the word relative to its neighbours, so a
/// torn lo/hi recombination can never alias a published pair.
const REGIME_LADDER: [Regime; 4] = [
    Regime::Sampled(2),
    Regime::Sampled(8),
    Regime::Quiescent,
    Regime::Full,
];

/// Run one serialized execution of `cfg` under `choices` and check every
/// invariant. Returns the raw execution record plus the first violation
/// found, if any.
pub fn execute(
    fleet: &mut Fleet,
    cfg: &Config,
    choices: &mut dyn ChoiceSource,
    step_budget: usize,
) -> (ExecRecord, Option<Violation>) {
    assert!(cfg.writers >= 1, "need at least one writer");
    assert!(
        fleet.slots() >= cfg.participants(),
        "fleet too small for config"
    );
    let shm = Arc::new(SharedMem::new_modeled(
        region_bytes(cfg.capacity),
        fleet.model(),
    ));
    let log = SharedLog::init(
        Arc::clone(&shm),
        &make_header(1, cfg.capacity, true, 0x40_0000, tee_sim::SHM_BASE),
    );
    let truth = Arc::new(Mutex::new(Truth::default()));
    // The init word is all-zero, which decodes as `Full` at regime epoch 0.
    lock(&truth).published_regimes.push((Regime::Full, 0));
    // Regime decodes only run when the config exercises regimes, so
    // pre-regime configs keep their exact schedule spaces.
    let observe_regimes = cfg.regime_flips > 0 || cfg.mutation == MutationKind::TornRegimeRead;

    let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for w in 0..cfg.writers {
        // The torn-read mutation lives on the *writer* side (the gate's
        // refresh path is what decodes the word); arm it on every writer
        // handle so any writer's decode can tear against a publish.
        let log = if cfg.mutation == MutationKind::TornRegimeRead {
            log.clone().with_mutation(cfg.mutation.arm())
        } else {
            log.clone()
        };
        let truth = Arc::clone(&truth);
        let entries = cfg.entries_per_writer;
        let batch_slots = cfg.batch_slots;
        jobs.push(Box::new(move || {
            let mut batch = (batch_slots > 1).then(|| log.batch_writer(batch_slots));
            for k in 1..=entries {
                if observe_regimes {
                    let obs = log.regime_observed();
                    lock(&truth).regime_observations.push(obs);
                }
                let addr = (w as u64 + 1) * 1_000 + k;
                let entry = LogEntry {
                    kind: EventKind::Call,
                    counter: k,
                    addr,
                    tid: w as u64,
                };
                let stored = match &mut batch {
                    Some(b) => b.append(&entry).slot.is_some(),
                    None => log.write_live(&entry).is_some(),
                };
                let mut t = lock(&truth);
                t.attempts += 1;
                if stored {
                    t.written.push(addr);
                } else {
                    t.completed_drops += 1;
                }
            }
            let mut t = lock(&truth);
            if let Some(b) = &batch {
                // Everything this writer reserved but never published must
                // end up counted as abandoned exactly once: the unfinished
                // run's remainder (holes for the next rotation), the
                // over-capacity hand-backs, and runs already discarded
                // because the epoch rotated under them.
                t.expected_abandoned += b.pending() + b.handed_back() + b.discarded();
            }
            t.writers_done += 1;
        }));
    }
    {
        // Drainer: the single cursor owner. Mutations arm on this handle —
        // both historical bugs lived in the rotation path it runs.
        let log = log.clone().with_mutation(cfg.mutation.arm());
        let truth = Arc::clone(&truth);
        let writers = cfg.writers;
        let mid_rotations = cfg.mid_rotations;
        let regime_flips = cfg.regime_flips;
        jobs.push(Box::new(move || {
            let mut cursor = LogCursor::default();
            let mut drained = Vec::new();
            let mut rotations_done = 0u64;
            loop {
                drained.extend(log.poll(&mut cursor));
                if lock(&truth).writers_done == writers {
                    // All writers finished: one final rotation drains
                    // everything still in the closing epoch.
                    drained.extend(log.rotate(&mut cursor).entries);
                    break;
                }
                if rotations_done < mid_rotations {
                    drained.extend(log.rotate(&mut cursor).entries);
                    rotations_done += 1;
                    // Walk the regime ladder: one publish per mid-rotation
                    // (recorded in ground truth *before* the word lands, so
                    // an observed-but-unrecorded publish cannot exist).
                    let flips = lock(&truth).published_regimes.len() as u64 - 1;
                    if flips < regime_flips {
                        let regime = REGIME_LADDER[(flips % 4) as usize];
                        let epoch = u32::try_from(flips + 1).unwrap_or(u32::MAX);
                        lock(&truth).published_regimes.push((regime, epoch));
                        log.set_regime(regime, epoch);
                    }
                } else {
                    // Out of rotation budget and writers still running:
                    // park until some writer makes progress (every writer
                    // step that matters is a store/RMW).
                    log.shm().spin_hint();
                }
            }
            lock(&truth).drained = drained;
        }));
    }
    if cfg.observer_reads > 0 {
        let log = log.clone();
        let truth = Arc::clone(&truth);
        let writers = cfg.writers;
        let reads = cfg.observer_reads;
        let batch_slots = cfg.batch_slots.max(1);
        jobs.push(Box::new(move || {
            for _ in 0..reads {
                let observed = log.dropped_total();
                let t = lock(&truth);
                // Each writer still inside the protocol can have raised the
                // tail by at most one reservation whose append has not
                // returned yet: one slot on the classic path, `batch_slots`
                // on the batched path (the over-capacity part only counts
                // as a drop until the hand-back lands a few steps later).
                let bound = t.completed_drops + (writers - t.writers_done) as u64 * batch_slots;
                if observed > bound {
                    let detail = format!(
                        "dropped_total()={observed} > bound {bound} \
                         (completed drops {} + {} writers in flight x batch {})",
                        t.completed_drops,
                        writers - t.writers_done,
                        batch_slots
                    );
                    drop(t);
                    lock(&truth).observer_overcounts.push(detail);
                }
            }
        }));
    }

    let rec = fleet.run_execution(jobs, choices, step_budget);
    let violation = match &rec.outcome {
        ExecOutcome::Completed => check_invariants(cfg, &log, &lock(&truth), &rec),
        ExecOutcome::Livelock => Some(Violation {
            kind: ViolationKind::Livelock,
            detail: "all unfinished threads parked in spin-waits with no writer left".to_string(),
            schedule: rec.schedule.clone(),
        }),
        ExecOutcome::Panicked(msg) => Some(Violation {
            kind: ViolationKind::Panic,
            detail: msg.clone(),
            schedule: rec.schedule.clone(),
        }),
        // Abandoned: not a verdict about the protocol. The caller's report
        // marks the exploration truncated.
        ExecOutcome::BudgetExceeded => None,
    };
    (rec, violation)
}

fn check_invariants(
    cfg: &Config,
    log: &SharedLog,
    truth: &Truth,
    rec: &ExecRecord,
) -> Option<Violation> {
    let fail = |kind: ViolationKind, detail: String| {
        Some(Violation {
            kind,
            detail,
            schedule: rec.schedule.clone(),
        })
    };
    if let Some(detail) = truth.observer_overcounts.first() {
        return fail(ViolationKind::ObserverOverCount, detail.clone());
    }
    // Every writer decode of the regime word must name a published
    // `(regime, epoch)` pair, and the corrupt-word fallback must never
    // fire on a log nothing corrupted. A torn (non-atomic) read fails the
    // pair check: it welds one publish's epoch to another's regime.
    for (regime, epoch, fallback) in &truth.regime_observations {
        if *fallback {
            return fail(
                ViolationKind::RegimeDecode,
                format!("corrupt-word fallback on an uncorrupted log (epoch {epoch})"),
            );
        }
        if !truth.published_regimes.contains(&(*regime, *epoch)) {
            return fail(
                ViolationKind::RegimeDecode,
                format!(
                    "writer observed unpublished pair {regime:?}@{epoch} \
                     (published: {:?}) [{}]",
                    truth.published_regimes,
                    cfg.summary()
                ),
            );
        }
    }
    for e in &truth.drained {
        if e.validity() != EntryValidity::Valid {
            return fail(
                ViolationKind::InvalidEntry,
                format!("drained a {:?} record: {e:?}", e.validity()),
            );
        }
    }
    // Exactly-once: compare drained vs written as multisets of addresses
    // (addresses are globally unique by construction).
    let mut counts = std::collections::BTreeMap::<u64, i64>::new();
    for addr in &truth.written {
        *counts.entry(*addr).or_insert(0) += 1;
    }
    for e in &truth.drained {
        *counts.entry(e.addr).or_insert(0) -= 1;
    }
    for (addr, n) in &counts {
        if *n < 0 {
            return fail(
                ViolationKind::DuplicateDrain,
                format!("entry addr {addr} drained {} times", 1 - n),
            );
        }
        if *n > 0 {
            return fail(
                ViolationKind::LostEntry,
                format!("entry addr {addr} written but never drained"),
            );
        }
    }
    let expected_drops = truth.attempts - truth.written.len() as u64;
    let final_drops = log.dropped_total();
    if final_drops != expected_drops {
        return fail(
            ViolationKind::DropAccounting,
            format!(
                "final dropped_total()={final_drops}, ground truth {expected_drops} \
                 ({} attempts, {} stored) [{}]",
                truth.attempts,
                truth.written.len(),
                cfg.summary()
            ),
        );
    }
    let final_abandoned = log.abandoned_total();
    if final_abandoned != truth.expected_abandoned {
        return fail(
            ViolationKind::AbandonAccounting,
            format!(
                "final abandoned_total()={final_abandoned}, ground truth {} [{}]",
                truth.expected_abandoned,
                cfg.summary()
            ),
        );
    }
    if log.writers_in_flight() != 0 {
        return fail(
            ViolationKind::DropAccounting,
            format!(
                "writers_in_flight()={} after completion",
                log.writers_in_flight()
            ),
        );
    }
    None
}
