//! Schedule exploration strategies over the serialized executions that
//! [`crate::harness::execute`] runs.
//!
//! * [`check_exhaustive`] — CHESS-style preemption-bounded depth-first
//!   enumeration. An unforced context switch (choosing a thread other than
//!   the still-runnable previously granted one) is a *preemption*;
//!   bounding preemptions per execution keeps small configs exactly
//!   enumerable while still reaching every bug that needs ≤ bound forced
//!   switches. Both historical bug classes in the rotation protocol need
//!   exactly one.
//! * [`check_pct`] — PCT-style seeded random scheduling: each virtual
//!   thread gets a random priority, the highest-priority runnable thread
//!   always runs, and at `depth − 1` random change points the running
//!   thread's priority is demoted below everything seen so far. Good at
//!   rare-interleaving bugs on configs too large to enumerate; every seed
//!   is fully deterministic (the workspace `rand` shim is SplitMix64).
//! * [`replay`] — re-run one recorded schedule exactly (violation
//!   reproduction; also the regression-trace format in
//!   [`format_trace`] / [`parse_trace`]).
//!
//! Every explorer builds fresh [`Fleet`]s as needed: a livelocked
//! execution intentionally wedges its fleet (the parked workers can never
//! be released), so explorers treat fleets as disposable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::{self, Config, Violation};
use crate::sched::{ChoicePoint, ChoiceSource, ExecOutcome, Fleet, Prescribed, VTid};

/// Default per-execution step budget. Checked configs are tiny (tens of
/// protocol operations); anything approaching this bound is runaway.
pub const DEFAULT_STEP_BUDGET: usize = 20_000;

/// What one exploration run concluded.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The config that was explored.
    pub config: Config,
    /// Strategy description, e.g. `"dfs(preemptions<=2)"`.
    pub mode: String,
    /// Executions actually run.
    pub executions: usize,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// For DFS: the bounded schedule space was fully enumerated. Never set
    /// by PCT (random exploration is inherently partial).
    pub exhausted: bool,
    /// The execution cap (or a step budget) cut the exploration short —
    /// coverage below is honest, not complete.
    pub truncated: bool,
    /// For PCT: the seed that produced `violation`.
    pub seed: Option<u64>,
}

impl CheckReport {
    /// One-line human rendering.
    pub fn summary(&self) -> String {
        let verdict = match &self.violation {
            Some(v) => format!("VIOLATION {v}"),
            None if self.exhausted => "ok (exhausted)".to_string(),
            None if self.truncated => "ok so far (truncated)".to_string(),
            None => "ok".to_string(),
        };
        format!(
            "[{}] {} — {} executions — {}",
            self.mode,
            self.config.summary(),
            self.executions,
            verdict
        )
    }
}

/// DFS choice source: prescribed prefix, then the zero-preemption default
/// (keep running the previously granted thread when it still can run).
struct DfsSource<'a> {
    prefix: &'a [VTid],
}

impl ChoiceSource for DfsSource<'_> {
    fn choose(&mut self, step: usize, point: &ChoicePoint) -> VTid {
        match self.prefix.get(step) {
            Some(tid) => *tid,
            None => default_choice(point),
        }
    }
}

fn default_choice(point: &ChoicePoint) -> VTid {
    point.prev_runnable.unwrap_or(point.runnable[0])
}

/// Deterministic enumeration order of the options at a point: the
/// zero-preemption default first, then the rest ascending.
fn option_order(point: &ChoicePoint) -> Vec<VTid> {
    let default = default_choice(point);
    let mut order = vec![default];
    order.extend(point.runnable.iter().copied().filter(|t| *t != default));
    order
}

/// Preemption cost of granting `tid` at `point`: 1 if it switches away
/// from a still-runnable previous thread.
fn preemption_cost(point: &ChoicePoint, tid: VTid) -> usize {
    match point.prev_runnable {
        Some(prev) if prev != tid => 1,
        _ => 0,
    }
}

/// Exhaustively enumerate every schedule of `cfg` with at most
/// `preemption_bound` preemptions, stopping at the first violation or
/// after `max_executions` runs (reported as truncated).
pub fn check_exhaustive(
    cfg: &Config,
    preemption_bound: usize,
    max_executions: usize,
) -> CheckReport {
    let mode = format!("dfs(preemptions<={preemption_bound})");
    let mut report = CheckReport {
        config: *cfg,
        mode,
        executions: 0,
        violation: None,
        exhausted: false,
        truncated: false,
        seed: None,
    };
    let mut fleet = Fleet::new(cfg.participants());
    let mut prefix: Vec<VTid> = Vec::new();
    loop {
        if fleet.is_wedged() {
            fleet = Fleet::new(cfg.participants());
        }
        let mut source = DfsSource { prefix: &prefix };
        let (rec, violation) = harness::execute(&mut fleet, cfg, &mut source, DEFAULT_STEP_BUDGET);
        report.executions += 1;
        if violation.is_some() {
            report.violation = violation;
            return report;
        }
        if rec.outcome == ExecOutcome::BudgetExceeded {
            // This branch could not be run to completion; anything below
            // the recorded horizon is unexplored.
            report.truncated = true;
        }
        // Backtrack: deepest step with an untried, preemption-feasible
        // alternative. Steps before the prefix replay identically, so the
        // recorded points are a faithful view of the whole path.
        let mut spent = 0usize;
        let costs: Vec<usize> = rec
            .points
            .iter()
            .zip(&rec.schedule)
            .map(|(p, t)| preemption_cost(p, *t))
            .collect();
        let spent_before: Vec<usize> = costs
            .iter()
            .map(|c| {
                let before = spent;
                spent += c;
                before
            })
            .collect();
        let mut next_prefix = None;
        for i in (0..rec.points.len()).rev() {
            let order = option_order(&rec.points[i]);
            let pos = order
                .iter()
                .position(|t| *t == rec.schedule[i])
                .expect("granted thread was an option");
            for cand in &order[pos + 1..] {
                if spent_before[i] + preemption_cost(&rec.points[i], *cand) <= preemption_bound {
                    let mut p = rec.schedule[..i].to_vec();
                    p.push(*cand);
                    next_prefix = Some(p);
                    break;
                }
            }
            if next_prefix.is_some() {
                break;
            }
        }
        match next_prefix {
            Some(p) => prefix = p,
            None => {
                report.exhausted = !report.truncated;
                return report;
            }
        }
        if report.executions >= max_executions {
            report.truncated = true;
            report.exhausted = false;
            return report;
        }
    }
}

/// PCT choice source for one seed: random per-thread priorities, random
/// change points, highest-priority runnable wins.
struct PctSource {
    /// Current priority per vthread (higher wins). Initial values start at
    /// 1000; demotions count down from 999 so each demoted thread lands
    /// below everything before it.
    priorities: Vec<i64>,
    change_steps: Vec<usize>,
    next_demotion: i64,
}

impl PctSource {
    fn new(participants: usize, depth: usize, horizon: usize, rng: &mut StdRng) -> PctSource {
        let priorities = (0..participants)
            .map(|_| 1_000 + rng.gen_range(0i64..1_000_000))
            .collect();
        let mut change_steps: Vec<usize> = (0..depth.saturating_sub(1))
            .map(|_| rng.gen_range(0usize..horizon.max(1)))
            .collect();
        change_steps.sort_unstable();
        PctSource {
            priorities,
            change_steps,
            next_demotion: 999,
        }
    }
}

impl ChoiceSource for PctSource {
    fn choose(&mut self, step: usize, point: &ChoicePoint) -> VTid {
        let top = |prio: &[i64]| -> VTid {
            *point
                .runnable
                .iter()
                .max_by_key(|t| prio[**t])
                .expect("runnable never empty")
        };
        while self.change_steps.first() == Some(&step) {
            self.change_steps.remove(0);
            let victim = top(&self.priorities);
            self.priorities[victim] = self.next_demotion;
            self.next_demotion -= 1;
        }
        top(&self.priorities)
    }
}

/// Run `schedules` PCT executions of `cfg` with consecutive seeds starting
/// at `base_seed`, stopping at the first violation (the report records the
/// finding seed — replaying that single seed reproduces the violation).
pub fn check_pct(cfg: &Config, depth: usize, base_seed: u64, schedules: usize) -> CheckReport {
    let mut report = CheckReport {
        config: *cfg,
        mode: format!(
            "pct(depth={depth}, seeds={base_seed}..{})",
            base_seed + schedules as u64
        ),
        executions: 0,
        violation: None,
        exhausted: false,
        truncated: false,
        seed: None,
    };
    let mut fleet = Fleet::new(cfg.participants());
    for i in 0..schedules {
        let seed = base_seed + i as u64;
        if fleet.is_wedged() {
            fleet = Fleet::new(cfg.participants());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut source = PctSource::new(cfg.participants(), depth, pct_horizon(cfg), &mut rng);
        let (_, violation) = harness::execute(&mut fleet, cfg, &mut source, DEFAULT_STEP_BUDGET);
        report.executions += 1;
        if let Some(v) = violation {
            report.violation = Some(v);
            report.seed = Some(seed);
            return report;
        }
    }
    report
}

/// Rough step-count horizon for placing PCT change points: enough to land
/// demotions inside the interesting window without wasting most of them
/// past the end of the execution.
fn pct_horizon(cfg: &Config) -> usize {
    let writer_steps = cfg.writers as u64 * cfg.entries_per_writer * 8;
    let drain_steps = (cfg.mid_rotations + 1) * (cfg.capacity * 4 + 24);
    let observer_steps = cfg.observer_reads * 8;
    (writer_steps + drain_steps + observer_steps) as usize
}

/// Replay one PCT seed against `cfg` — the regression-trace entry point.
pub fn replay_seed(cfg: &Config, depth: usize, seed: u64) -> CheckReport {
    check_pct(cfg, depth, seed, 1)
}

/// Re-run one recorded schedule exactly. Diverging from the recorded
/// runnable sets panics (by [`Prescribed`]'s contract): a schedule only
/// replays against the code and config that produced it.
pub fn replay(cfg: &Config, schedule: Vec<VTid>) -> Option<Violation> {
    let mut fleet = Fleet::new(cfg.participants());
    let mut source = Prescribed::new(schedule);
    let (_, violation) = harness::execute(&mut fleet, cfg, &mut source, DEFAULT_STEP_BUDGET);
    violation
}

/// Serialize a finding into the regression-trace format stored under
/// `tests/fixtures/traces/`: `key = value` lines plus `#` comments.
pub fn format_trace(cfg: &Config, depth: usize, seed: u64, report: &CheckReport) -> String {
    let expect = report.violation.as_ref().map_or("none", |v| v.kind.name());
    format!(
        "# teeperf-check regression trace: replaying this seed against this\n\
         # config must re-find the violation named in `expect`.\n\
         mutation = {}\n\
         writers = {}\n\
         entries_per_writer = {}\n\
         capacity = {}\n\
         mid_rotations = {}\n\
         observer_reads = {}\n\
         batch_slots = {}\n\
         regime_flips = {}\n\
         pct_depth = {depth}\n\
         seed = {seed}\n\
         expect = {expect}\n",
        cfg.mutation.name(),
        cfg.writers,
        cfg.entries_per_writer,
        cfg.capacity,
        cfg.mid_rotations,
        cfg.observer_reads,
        cfg.batch_slots,
        cfg.regime_flips,
    )
}

/// Parse [`format_trace`] output. Returns the config, PCT depth, seed and
/// expected violation kind name.
///
/// # Errors
/// A message naming the malformed or missing key.
pub fn parse_trace(text: &str) -> Result<(Config, usize, u64, String), String> {
    let mut cfg = Config::default();
    let (mut depth, mut seed, mut expect) = (None, None, None);
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed trace line: {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        let num = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("bad number for {key}: {value:?}"))
        };
        match key {
            "mutation" => {
                cfg.mutation = harness::MutationKind::parse(value)
                    .ok_or_else(|| format!("unknown mutation: {value:?}"))?;
            }
            "writers" => cfg.writers = num()? as usize,
            "entries_per_writer" => cfg.entries_per_writer = num()?,
            "capacity" => cfg.capacity = num()?,
            "mid_rotations" => cfg.mid_rotations = num()?,
            "observer_reads" => cfg.observer_reads = num()?,
            // Absent in pre-batching traces: defaults to 1 (classic path).
            "batch_slots" => cfg.batch_slots = num()?.max(1),
            // Absent in pre-regime traces: defaults to 0 (no flips).
            "regime_flips" => cfg.regime_flips = num()?,
            "pct_depth" => depth = Some(num()? as usize),
            "seed" => seed = Some(num()?),
            "expect" => expect = Some(value.to_string()),
            other => return Err(format!("unknown trace key: {other:?}")),
        }
    }
    Ok((
        cfg,
        depth.ok_or("trace missing pct_depth")?,
        seed.ok_or("trace missing seed")?,
        expect.ok_or("trace missing expect")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::MutationKind;

    #[test]
    fn trace_roundtrip() {
        let cfg = Config {
            writers: 3,
            entries_per_writer: 2,
            capacity: 2,
            mid_rotations: 2,
            observer_reads: 4,
            batch_slots: 2,
            regime_flips: 2,
            mutation: MutationKind::DroppedDoubleCount,
        };
        let report = CheckReport {
            config: cfg,
            mode: "pct".into(),
            executions: 1,
            violation: None,
            exhausted: false,
            truncated: false,
            seed: Some(41),
        };
        let text = format_trace(&cfg, 3, 41, &report);
        let (parsed, depth, seed, expect) = parse_trace(&text).expect("roundtrip");
        assert_eq!(parsed, cfg);
        assert_eq!(depth, 3);
        assert_eq!(seed, 41);
        assert_eq!(expect, "none");
    }

    #[test]
    fn trace_rejects_garbage() {
        assert!(parse_trace("writers: 3").is_err());
        assert!(parse_trace("mutation = bogus").is_err());
        assert!(
            parse_trace("writers = 2").is_err(),
            "missing seed/depth/expect"
        );
    }

    #[test]
    fn option_order_puts_default_first() {
        let point = ChoicePoint {
            runnable: vec![0, 1, 2],
            prev_runnable: Some(1),
        };
        assert_eq!(option_order(&point), vec![1, 0, 2]);
        assert_eq!(preemption_cost(&point, 1), 0);
        assert_eq!(preemption_cost(&point, 2), 1);
        let fresh = ChoicePoint {
            runnable: vec![1, 2],
            prev_runnable: None,
        };
        assert_eq!(option_order(&fresh), vec![1, 2]);
        assert_eq!(preemption_cost(&fresh, 2), 0);
    }
}
