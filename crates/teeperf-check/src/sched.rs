//! The virtual scheduler: serializes the real protocol threads one atomic
//! operation at a time.
//!
//! Every thread participating in a checked execution runs its *production*
//! protocol code against a [`tee_sim::SharedMem`] built with
//! [`tee_sim::SharedMem::new_modeled`]. The region reports each atomic
//! access to the [`Scheduler`] (via [`tee_sim::MemModel`]) *before* it
//! executes; the scheduler blocks the thread until the explorer grants it
//! the next step. Exactly one virtual thread is ever unblocked, so a whole
//! execution is one deterministic serialization of the protocol's atomic
//! operations — chosen step by step by a [`ChoiceSource`], which is how
//! the DFS and PCT explorers own every interleaving decision.
//!
//! Spin loops are the one place unbounded physical behaviour must become
//! finite: a thread that calls `spin_hint` is **parked** and only becomes
//! runnable again after some other thread performs a store or RMW.
//! Re-running a spin check that no write could have affected would re-read
//! the same value and reach the same state, so skipping it loses no
//! behaviours and keeps the schedule space finite. If every unfinished
//! thread is parked, no write can ever arrive and the execution is a
//! genuine livelock, which the explorer reports as a violation of the
//! termination invariant.
//!
//! Worker threads are pooled in a [`Fleet`] and reused across the many
//! thousands of executions an exhaustive exploration runs, so per-schedule
//! cost is a few condvar handoffs per step rather than thread spawns.

// teeperf-lint: allow(raw-atomics, file): this *is* the model seam — the
// scheduler's own handshake state must not run through the region it is
// scheduling.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use tee_sim::{MemAccess, MemModel};

/// Index of a virtual thread within an execution (stable across re-runs:
/// role order is fixed by the harness, which is what makes recorded
/// schedules replayable).
pub type VTid = usize;

std::thread_local! {
    /// Which virtual thread the current OS thread is acting as, if any.
    /// Unregistered threads (the orchestrator doing setup/teardown) pass
    /// through the seam without scheduling points.
    static CURRENT_VTID: std::cell::Cell<Option<VTid>> = const { std::cell::Cell::new(None) };
}

/// Why a virtual thread is not currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Between ops (owns the execution window), or job not yet delivered.
    Running,
    /// Blocked at the start gate or before an atomic access.
    AtPoint(Option<MemAccess>),
    /// Parked in a spin-wait; runnable again once `write_count` exceeds
    /// the recorded value.
    Parked { since_write: u64 },
    /// Job returned (or panicked — the panic is recorded separately).
    Finished,
}

#[derive(Debug)]
struct SchedState {
    status: Vec<Status>,
    /// Thread currently granted the next step, until it accepts.
    granted: Option<VTid>,
    /// Completed stores/RMWs this execution (parking epoch for spinners).
    write_count: u64,
    /// Abandon switch: every hook becomes a pass-through and all threads
    /// free-run concurrently to completion (used on budget exhaustion;
    /// the execution's result is discarded).
    free_run: bool,
    /// Panic payloads of virtual threads, in arrival order.
    panics: Vec<String>,
}

/// The serializing scheduler. One per [`Fleet`]; shared with every modeled
/// [`tee_sim::SharedMem`] region as its [`MemModel`].
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A virtual thread that panicked inside protocol code may have poisoned
    // the state mutex while the explorer was mid-wait; the state itself is
    // still consistent (every mutation is a single-field write).
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Scheduler {
    fn new(slots: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                status: vec![Status::Finished; slots],
                granted: None,
                write_count: 0,
                free_run: false,
                panics: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Block at a scheduling point until granted (or free-run). Returns
    /// whether the grant was real (false = free-run pass-through).
    fn wait_for_grant(&self, tid: VTid, status: Status) -> bool {
        let mut st = relock(&self.state);
        if st.free_run {
            return false;
        }
        st.status[tid] = status;
        self.cv.notify_all();
        loop {
            if st.free_run {
                st.status[tid] = Status::Running;
                return false;
            }
            if st.granted == Some(tid) {
                st.granted = None;
                st.status[tid] = Status::Running;
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl MemModel for Scheduler {
    fn before_access(&self, access: MemAccess) {
        let Some(tid) = CURRENT_VTID.get() else {
            // Orchestrator setup/teardown access, outside the execution
            // window: not a scheduling point.
            return;
        };
        if self.wait_for_grant(tid, Status::AtPoint(Some(access))) && access.kind.is_write() {
            let mut st = relock(&self.state);
            st.write_count += 1;
        }
    }

    fn on_spin(&self) {
        let Some(tid) = CURRENT_VTID.get() else {
            return;
        };
        let since_write = relock(&self.state).write_count;
        self.wait_for_grant(tid, Status::Parked { since_write });
    }
}

/// What [`Fleet::run_execution`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Every virtual thread ran to completion under the schedule.
    Completed,
    /// Every unfinished thread was parked in a spin-wait with no possible
    /// future write: the protocol livelocked under this schedule.
    Livelock,
    /// The step budget ran out; the execution was abandoned (threads were
    /// released to free-run to completion) and its result means nothing.
    BudgetExceeded,
    /// A virtual thread panicked (payload rendered into the string).
    Panicked(String),
}

/// One completed execution: the outcome plus the exact schedule that was
/// run (one granted [`VTid`] per step), replayable via
/// [`crate::explore::replay`].
#[derive(Debug, Clone)]
pub struct ExecRecord {
    /// How the execution ended.
    pub outcome: ExecOutcome,
    /// The granted thread at every step, in order.
    pub schedule: Vec<VTid>,
    /// Choice points observed: at each recorded step, the runnable set and
    /// the previously granted thread (for preemption accounting). Indexed
    /// like `schedule`.
    pub points: Vec<ChoicePoint>,
}

/// The context a [`ChoiceSource`] chose from at one step.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// Runnable virtual threads, ascending.
    pub runnable: Vec<VTid>,
    /// Previously granted thread, if it is in `runnable` (choosing any
    /// other runnable thread at this point is a preemption).
    pub prev_runnable: Option<VTid>,
}

/// A source of scheduling decisions (DFS enumeration, PCT randomness, or a
/// recorded-schedule replay).
pub trait ChoiceSource {
    /// Pick the next thread to grant from `point.runnable` (never empty).
    fn choose(&mut self, step: usize, point: &ChoicePoint) -> VTid;
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of reusable virtual-thread workers plus their [`Scheduler`].
#[derive(Debug)]
pub struct Fleet {
    sched: Arc<Scheduler>,
    workers: Vec<Sender<Job>>,
    /// A livelocked execution leaves workers parked forever; the fleet can
    /// then never run again and callers must build a fresh one.
    wedged: bool,
}

impl Fleet {
    /// Spawn `slots` pooled workers. Worker `i` always acts as [`VTid`]
    /// `i`, so role-to-thread mapping is stable across executions.
    pub fn new(slots: usize) -> Fleet {
        let sched = Arc::new(Scheduler::new(slots));
        let workers = (0..slots)
            .map(|tid| {
                let (tx, rx) = channel::<Job>();
                let sched = Arc::clone(&sched);
                std::thread::Builder::new()
                    .name(format!("vthread-{tid}"))
                    .spawn(move || {
                        CURRENT_VTID.set(Some(tid));
                        while let Ok(job) = rx.recv() {
                            // Start gate: the job must not run (not even
                            // its non-atomic prologue) until scheduled.
                            sched.wait_for_grant(tid, Status::AtPoint(None));
                            let result = catch_unwind(AssertUnwindSafe(job));
                            let mut st = relock(&sched.state);
                            if let Err(payload) = result {
                                st.panics.push(render_panic(payload.as_ref()));
                            }
                            st.status[tid] = Status::Finished;
                            sched.cv.notify_all();
                        }
                    })
                    .expect("spawn vthread worker");
                tx
            })
            .collect();
        Fleet {
            sched,
            workers,
            wedged: false,
        }
    }

    /// The scheduler to attach to modeled regions for this fleet.
    pub fn model(&self) -> Arc<Scheduler> {
        Arc::clone(&self.sched)
    }

    /// Number of worker slots.
    pub fn slots(&self) -> usize {
        self.workers.len()
    }

    /// Whether a livelocked execution has permanently parked the workers.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Run one fully serialized execution of `jobs` (job `i` on [`VTid`]
    /// `i`), asking `choices` for every scheduling decision, with at most
    /// `step_budget` grants.
    ///
    /// # Panics
    /// Panics if the fleet is wedged or `jobs` exceeds the slot count.
    pub fn run_execution(
        &mut self,
        jobs: Vec<Job>,
        choices: &mut dyn ChoiceSource,
        step_budget: usize,
    ) -> ExecRecord {
        assert!(!self.wedged, "fleet wedged by a livelocked execution");
        let participants = jobs.len();
        assert!(participants <= self.workers.len(), "more jobs than slots");
        {
            let mut st = relock(&self.sched.state);
            debug_assert!(
                st.status.iter().all(|s| *s == Status::Finished),
                "previous execution still live"
            );
            st.status = vec![Status::Finished; self.workers.len()];
            for s in st.status.iter_mut().take(participants) {
                // Running until the worker reaches its start gate.
                *s = Status::Running;
            }
            st.granted = None;
            st.write_count = 0;
            st.free_run = false;
            st.panics.clear();
        }
        for (worker, job) in self.workers.iter().zip(jobs) {
            worker.send(job).expect("vthread worker died");
        }

        let mut schedule = Vec::new();
        let mut points = Vec::new();
        loop {
            let mut st = relock(&self.sched.state);
            // Quiesce: wait until no thread is between scheduling points.
            loop {
                let busy =
                    st.granted.is_some() || st.status.iter().any(|s| matches!(s, Status::Running));
                if !busy {
                    break;
                }
                st = self
                    .sched
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if let Some(panic) = st.panics.first().cloned() {
                drop(st);
                self.abandon();
                return ExecRecord {
                    outcome: ExecOutcome::Panicked(panic),
                    schedule,
                    points,
                };
            }
            let runnable: Vec<VTid> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| match s {
                    Status::AtPoint(_) => true,
                    Status::Parked { since_write } => st.write_count > *since_write,
                    _ => false,
                })
                .map(|(tid, _)| tid)
                .collect();
            if runnable.is_empty() {
                if st.status.iter().all(|s| *s == Status::Finished) {
                    return ExecRecord {
                        outcome: ExecOutcome::Completed,
                        schedule,
                        points,
                    };
                }
                // Unfinished threads exist but none can ever run again:
                // they are all parked waiting for a write that no thread
                // is left to perform. Leave them parked (waking them could
                // spin forever); the fleet is spent.
                self.wedged = true;
                return ExecRecord {
                    outcome: ExecOutcome::Livelock,
                    schedule,
                    points,
                };
            }
            if schedule.len() >= step_budget {
                drop(st);
                self.abandon();
                return ExecRecord {
                    outcome: ExecOutcome::BudgetExceeded,
                    schedule,
                    points,
                };
            }
            let point = ChoicePoint {
                prev_runnable: schedule
                    .last()
                    .copied()
                    .filter(|prev| runnable.contains(prev)),
                runnable,
            };
            drop(st);
            let chosen = choices.choose(schedule.len(), &point);
            assert!(
                point.runnable.contains(&chosen),
                "choice source picked non-runnable vthread {chosen} from {:?}",
                point.runnable
            );
            schedule.push(chosen);
            points.push(point);
            let mut st = relock(&self.sched.state);
            st.granted = Some(chosen);
            self.sched.cv.notify_all();
        }
    }

    /// Release every blocked thread into free-run and wait for the jobs to
    /// finish concurrently (used when an execution is abandoned — results
    /// are discarded, we only need the workers back).
    fn abandon(&self) {
        let mut st = relock(&self.sched.state);
        st.free_run = true;
        st.granted = None;
        self.sched.cv.notify_all();
        while !st.status.iter().all(|s| *s == Status::Finished) {
            st = self
                .sched
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic queue of prescribed choices — the replay side of
/// [`ExecRecord::schedule`]. Panics if the execution diverges from the
/// recorded runnable sets, which (given the lint-enforced determinism of
/// protocol code) only happens when the schedule belongs to different code
/// or a different config.
#[derive(Debug, Clone)]
pub struct Prescribed {
    queue: VecDeque<VTid>,
}

impl Prescribed {
    /// Wrap a recorded schedule for replay.
    pub fn new(schedule: Vec<VTid>) -> Prescribed {
        Prescribed {
            queue: schedule.into(),
        }
    }
}

impl ChoiceSource for Prescribed {
    fn choose(&mut self, step: usize, point: &ChoicePoint) -> VTid {
        let tid = self
            .queue
            .pop_front()
            .unwrap_or_else(|| panic!("replay schedule exhausted at step {step}"));
        assert!(
            point.runnable.contains(&tid),
            "replay diverged at step {step}: {tid} not in {:?}",
            point.runnable
        );
        tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tee_sim::SharedMem;

    struct RoundRobin;
    impl ChoiceSource for RoundRobin {
        fn choose(&mut self, step: usize, point: &ChoicePoint) -> VTid {
            point.runnable[step % point.runnable.len()]
        }
    }

    struct FirstRunnable;
    impl ChoiceSource for FirstRunnable {
        fn choose(&mut self, _step: usize, point: &ChoicePoint) -> VTid {
            point.runnable[0]
        }
    }

    #[test]
    fn serialized_increments_complete_and_record_a_schedule() {
        let mut fleet = Fleet::new(2);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let jobs: Vec<Job> = (0..2)
            .map(|_| {
                let shm = Arc::clone(&shm);
                Box::new(move || {
                    for _ in 0..5 {
                        shm.fetch_add_u64(0, 1).unwrap();
                    }
                }) as Job
            })
            .collect();
        let rec = fleet.run_execution(jobs, &mut RoundRobin, 1_000);
        assert_eq!(rec.outcome, ExecOutcome::Completed);
        assert_eq!(shm.read_u64(0).unwrap(), 10);
        // 10 RMW grants plus 2 start-gate grants.
        assert_eq!(rec.schedule.len(), 12);
        assert_eq!(rec.points.len(), 12);
    }

    #[test]
    fn same_schedule_replays_identically() {
        let run = |choices: &mut dyn ChoiceSource| -> (Vec<VTid>, u64) {
            let mut fleet = Fleet::new(2);
            let shm = Arc::new(SharedMem::new_modeled(16, fleet.model()));
            let s0 = Arc::clone(&shm);
            let s1 = Arc::clone(&shm);
            let jobs: Vec<Job> = vec![
                Box::new(move || {
                    s0.write_u64(0, 1).unwrap();
                    s0.fetch_add_u64(8, 1).unwrap();
                }),
                Box::new(move || {
                    s1.write_u64(0, 2).unwrap();
                    s1.fetch_add_u64(8, 10).unwrap();
                }),
            ];
            let rec = fleet.run_execution(jobs, choices, 1_000);
            assert_eq!(rec.outcome, ExecOutcome::Completed);
            (rec.schedule, shm.read_u64(0).unwrap())
        };
        let (schedule, word) = run(&mut RoundRobin);
        let (schedule2, word2) = run(&mut Prescribed::new(schedule.clone()));
        assert_eq!(schedule, schedule2);
        assert_eq!(word, word2);
    }

    #[test]
    fn parked_spinner_wakes_only_after_a_write() {
        let mut fleet = Fleet::new(2);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let waiter = Arc::clone(&shm);
        let setter = Arc::clone(&shm);
        let jobs: Vec<Job> = vec![
            Box::new(move || {
                while waiter.read_u64(0).unwrap() == 0 {
                    waiter.spin_hint();
                }
            }),
            Box::new(move || {
                setter.write_u64(0, 1).unwrap();
            }),
        ];
        // FirstRunnable always prefers vthread 0; if parking did not work,
        // the waiter would be granted forever and the setter would starve
        // (the run would hit the step budget). With parking, the waiter's
        // spin parks it, the setter must run, and everything completes.
        let rec = fleet.run_execution(jobs, &mut FirstRunnable, 100);
        assert_eq!(rec.outcome, ExecOutcome::Completed);
    }

    #[test]
    fn livelock_is_detected_when_no_writer_remains() {
        let mut fleet = Fleet::new(1);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let waiter = Arc::clone(&shm);
        let jobs: Vec<Job> = vec![Box::new(move || {
            while waiter.read_u64(0).unwrap() == 0 {
                waiter.spin_hint();
            }
        })];
        let rec = fleet.run_execution(jobs, &mut FirstRunnable, 100);
        assert_eq!(rec.outcome, ExecOutcome::Livelock);
        assert!(fleet.is_wedged());
    }

    #[test]
    fn budget_exhaustion_abandons_cleanly_and_fleet_survives() {
        let mut fleet = Fleet::new(2);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let jobs: Vec<Job> = (0..2)
            .map(|_| {
                let shm = Arc::clone(&shm);
                Box::new(move || {
                    for _ in 0..100 {
                        shm.fetch_add_u64(0, 1).unwrap();
                    }
                }) as Job
            })
            .collect();
        let rec = fleet.run_execution(jobs, &mut RoundRobin, 10);
        assert_eq!(rec.outcome, ExecOutcome::BudgetExceeded);
        assert!(!fleet.is_wedged());
        // The abandoned jobs free-ran to completion; the region is sane and
        // the fleet reusable.
        assert_eq!(shm.read_u64(0).unwrap(), 200);
        let shm2 = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let s = Arc::clone(&shm2);
        let rec2 = fleet.run_execution(
            vec![Box::new(move || {
                s.fetch_add_u64(0, 1).unwrap();
            })],
            &mut FirstRunnable,
            100,
        );
        assert_eq!(rec2.outcome, ExecOutcome::Completed);
        assert_eq!(shm2.read_u64(0).unwrap(), 1);
    }

    #[test]
    fn vthread_panic_is_reported_not_hung() {
        let mut fleet = Fleet::new(2);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let s0 = Arc::clone(&shm);
        let s1 = Arc::clone(&shm);
        let jobs: Vec<Job> = vec![
            Box::new(move || {
                s0.fetch_add_u64(0, 1).unwrap();
                panic!("boom in protocol");
            }),
            Box::new(move || {
                s1.fetch_add_u64(0, 1).unwrap();
            }),
        ];
        let rec = fleet.run_execution(jobs, &mut FirstRunnable, 1_000);
        match rec.outcome {
            ExecOutcome::Panicked(msg) => assert!(msg.contains("boom")),
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_threads_pass_through_the_seam() {
        let fleet = Fleet::new(1);
        let shm = SharedMem::new_modeled(8, fleet.model());
        // The orchestrator (this test thread) has no VTID: accesses must
        // not block on the scheduler.
        shm.write_u64(0, 9).unwrap();
        assert_eq!(shm.read_u64(0).unwrap(), 9);
        shm.spin_hint();
    }

    #[test]
    fn scheduler_counts_writes_not_loads() {
        // White-box: parked threads key off write_count, so loads must not
        // bump it (or spinners would wake on reads and the space would
        // explode).
        let mut fleet = Fleet::new(1);
        let shm = Arc::new(SharedMem::new_modeled(8, fleet.model()));
        let s = Arc::clone(&shm);
        let observed = Arc::new(AtomicU64::new(0));
        let obs = Arc::clone(&observed);
        let rec = fleet.run_execution(
            vec![Box::new(move || {
                s.read_u64(0).unwrap();
                s.read_u64(0).unwrap();
                s.write_u64(0, 1).unwrap();
                // ord: test-only counter handoff, no concurrent readers.
                obs.store(1, Ordering::Relaxed);
            })],
            &mut FirstRunnable,
            100,
        );
        assert_eq!(rec.outcome, ExecOutcome::Completed);
        let st = relock(&fleet.sched.state);
        assert_eq!(st.write_count, 1);
        // ord: test-only counter handoff, no concurrent readers.
        assert_eq!(observed.load(Ordering::Relaxed), 1);
    }
}
