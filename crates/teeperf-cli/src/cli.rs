//! Command implementations, kept pure enough to unit-test: every command
//! returns the text it would print.

use std::fmt::Write as _;

use mcvm::{DebugInfo, RunConfig};
use tee_sim::{CostModel, TeeKind, TransitionMode};
use teeperf_analyzer::symbolize::Symbolizer;
use teeperf_analyzer::Analyzer;
use teeperf_compiler::{compile_instrumented, profile_program, run_native, InstrumentOptions};
use teeperf_core::{EventSource, FileReplaySource, LogFile, RecorderConfig};
use teeperf_flamegraph::{FlameGraph, SvgOptions};
use teeperf_live::{DrainPolicy, LiveConfig, RingConfig, SessionRegistry, Snapshot};

/// A CLI failure with a user-facing message and a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// What went wrong, user-facing.
    pub message: String,
    /// Exit code for the process: 1 for usage and pipeline errors, 2 when
    /// a named input path does not exist or cannot be read/parsed — so
    /// scripts can tell "bad invocation" from "bad file" without grepping
    /// stderr.
    pub code: u8,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
        code: 1,
    }
}

/// A per-path failure: the message always leads with the offending path,
/// and the process exits with code 2.
fn path_err(path: &str, e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("{path}: {e}"),
        code: 2,
    }
}

const USAGE: &str = "usage:
  teeperf compile <prog.mc> [--out <prog.tpo>] [--instrument yes|no] [--only <fn,fn>]
  teeperf run <prog.mc|prog.tpo> [--arch <kind>] [--transition-mode classic|switchless]
  teeperf record <prog.mc|prog.tpo> [--arch <kind>] [--out <base>] [--max-entries <n>] [--pid <n>]
                 [--batch-slots <n>] [--transition-mode classic|switchless]
  teeperf live <prog.mc|prog.tpo> [--arch <kind>] [--max-entries <n>] [--watermark <pct>]
               [--refresh <events>] [--frames yes|no] [--svg <file>] [--out <base>]
               [--analyzer-threads <n>] [--follow-pids <n>] [--batch-slots <n>]
               [--transition-mode classic|switchless]
               [--window-interval <ticks>] [--retain <n>] [--max-width <n>]
               [--overhead-budget <pct>]
  teeperf live --logs <a,b,c> [--watermark <pct>] [--watchdog-timeout <pumps>]
               [--svg <file>] [--out <base>] [--window-interval <ticks>] [--retain <n>]
  teeperf analyze <base.tpf> <base.sym> [--salvage yes|no] [--analyzer-threads <n>]
  teeperf query <base.tpf> <base.sym> <query> [--analyzer-threads <n>]
  teeperf query --connect <addr> [windows | <clause> ...]
  teeperf flamegraph <base.tpf> <base.sym> [--svg <file>] [--title <t>] [--analyzer-threads <n>]
  teeperf diff <a.tpf> <a.sym> <b.tpf> <b.sym> [--svg <file>] [--analyzer-threads <n>]
  teeperf phoenix [--bench <name>] [--arch <kind>]
  teeperf daemon [--dir <d>] [--listen <addr>] [--snapshot-out <file>] [--pump-ms <n>]
                 [--scan-every <n>] [--max-loops <n>] [--liveness yes|no]
                 [--window-interval <ticks>] [--retain <n>] [--overhead-budget <pct>]
  teeperf top --connect <addr> [--iterations <n>] [--interval-ms <n>] [--window <n>]
  teeperf archs

architectures: native, sgx-v1, sgx-v2, trustzone, sev, keystone
query example: \"select method, calls, excl where excl > 100 sort excl desc limit 10\"
--analyzer-threads: analysis worker shards; 0 or omitted = all available cores
--batch-slots n: log slots claimed per shared tail fetch-and-add (1 = classic hot path)
--transition-mode switchless: service ecalls/ocalls via a worker mailbox, no world switch
--follow-pids n: run the program as n simulated processes under one session registry
--logs a,b,c: replay recorded logs (<base>.tpf + <base>.sym) as one multi-process session
--salvage yes: keep the valid records of a torn/truncated log instead of rejecting it
--watchdog-timeout n: quarantine a source after n progress-free pumps (with backoff retries)
daemon: watch a registration directory of <pid>.tplog shared logs and serve
        /snapshot /pid/<n> /flame.svg /metrics /healthz over HTTP (see teeperfd)
top:    poll a daemon's /snapshot and render the method table, diffed against
        the previous poll (--iterations 0 = until interrupted); --window n
        renders the newest n retained windows from /query instead
--window-interval/--retain/--max-width: keep a retention ring of per-interval
        window profiles over the virtual clock (oldest pairs coarsen, then evict)
--overhead-budget pct: cap tolerated stream loss; a per-session controller
        degrades fidelity full -> sampled 1/N -> quiescent under pressure and
        recovers, with sampled totals bias-corrected and tagged `estimated`
query --connect: time-travel queries against a daemon's retention rings.
        clauses: windows=all|last:<n>|<a>..=<b>  pid=<n>  method=<substr>
        tid=<n>  top=<n>  by=self|total|calls  diff=<a>,<b>
        the single word `windows` fetches the /windows listing instead
";

/// Minimal flag parser: positional args plus `--flag value` pairs.
struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Args<'a>, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("flag --{name} needs a value")))?;
                flags.push((name, value.as_str()));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn arch(&self) -> Result<CostModel, CliError> {
        let name = self.flag("arch").unwrap_or("sgx-v1");
        let cost = TeeKind::parse(name)
            .map(CostModel::for_kind)
            .ok_or_else(|| err(format!("unknown architecture `{name}`")))?;
        let mode = self.flag("transition-mode").unwrap_or("classic");
        let mode = TransitionMode::parse(mode).ok_or_else(|| {
            err(format!(
                "unknown transition mode `{mode}` (want classic|switchless)"
            ))
        })?;
        Ok(cost.with_transition_mode(mode))
    }

    /// `--batch-slots N`: log slots claimed per shared tail fetch-and-add
    /// by the recording hooks; 1 (the default) is the classic path.
    fn batch_slots(&self) -> Result<u64, CliError> {
        match self.flag("batch-slots") {
            Some(v) => v
                .parse()
                .ok()
                .filter(|b| *b >= 1)
                .ok_or_else(|| err(format!("bad --batch-slots `{v}` (want >= 1)"))),
            None => Ok(1),
        }
    }

    /// `--analyzer-threads N`: analysis shard count, where 0 (the default)
    /// means one shard per available core.
    fn analyzer_threads(&self) -> Result<usize, CliError> {
        match self.flag("analyzer-threads") {
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("bad --analyzer-threads `{v}`"))),
            None => Ok(0),
        }
    }
}

/// Entry point used by `main` and by the tests.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(USAGE.to_string());
    };
    let rest = Args::parse(&args[1..])?;
    match command.as_str() {
        "compile" => cmd_compile(&rest),
        "run" => cmd_run(&rest),
        "record" => cmd_record(&rest),
        "live" => cmd_live(&rest),
        "analyze" => cmd_analyze(&rest),
        "query" => cmd_query(&rest),
        "flamegraph" => cmd_flamegraph(&rest),
        "diff" => cmd_diff(&rest),
        "phoenix" => cmd_phoenix(&rest),
        "daemon" => cmd_daemon(&rest),
        "top" => cmd_top(&rest),
        "archs" => Ok(TeeKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn read_source(args: &Args<'_>) -> Result<(String, String), CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing program path\n\n{USAGE}")))?;
    let source = std::fs::read_to_string(path).map_err(|e| path_err(path, e))?;
    Ok(((*path).to_string(), source))
}

/// Load a program from either Mini-C source (`.mc`, compiled on the fly,
/// uninstrumented) or a prebuilt object file (`.tpo`, possibly
/// instrumented by `teeperf compile`).
fn load_program(path: &str, instrument_sources: bool) -> Result<mcvm::CompiledProgram, CliError> {
    if path.ends_with(".tpo") {
        let bytes = std::fs::read(path).map_err(|e| path_err(path, e))?;
        return mcvm::objfile::from_bytes(&bytes).map_err(|e| path_err(path, e));
    }
    let source = std::fs::read_to_string(path).map_err(|e| path_err(path, e))?;
    if instrument_sources {
        compile_instrumented(&source, &InstrumentOptions::default()).map_err(|e| err(e.to_string()))
    } else {
        mcvm::compile(&source).map_err(|e| err(e.to_string()))
    }
}

fn cmd_compile(args: &Args<'_>) -> Result<String, CliError> {
    let (path, source) = read_source(args)?;
    let instrument = args.flag("instrument").unwrap_or("yes") == "yes";
    let program = if instrument {
        let options = match args.flag("only") {
            Some(names) => InstrumentOptions {
                filter: Some(teeperf_compiler::NameFilter::include(names.split(','))),
            },
            None => InstrumentOptions::default(),
        };
        compile_instrumented(&source, &options).map_err(|e| err(e.to_string()))?
    } else {
        mcvm::compile(&source).map_err(|e| err(e.to_string()))?
    };
    let out = args
        .flag("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.tpo", path.trim_end_matches(".mc")));
    std::fs::write(&out, mcvm::objfile::to_bytes(&program))
        .map_err(|e| err(format!("{out}: {e}")))?;
    let hooks = program
        .functions
        .iter()
        .flat_map(|f| &f.code)
        .filter(|i| i.is_hook())
        .count();
    Ok(format!(
        "compiled {} functions ({} instructions, {hooks} hooks) -> {out}\n",
        program.functions.len(),
        program.instruction_count(),
    ))
}

fn cmd_run(args: &Args<'_>) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing program path\n\n{USAGE}")))?;
    let cost = args.arch()?;
    let kind = cost.kind;
    let program = load_program(path, false)?;
    let run = run_native(program, cost, RunConfig::default(), |_| Ok(()))
        .map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    for line in &run.output {
        writeln!(out, "{line}").expect("writing to string");
    }
    writeln!(out, "exit code: {}", run.exit_code).expect("writing to string");
    writeln!(
        out,
        "{} cycles on {kind} ({} instructions)",
        run.cycles, run.instructions
    )
    .expect("writing to string");
    Ok(out)
}

fn cmd_record(args: &Args<'_>) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing program path\n\n{USAGE}")))?
        .to_string();
    let cost = args.arch()?;
    let kind = cost.kind;
    let base = args.flag("out").map(str::to_string).unwrap_or_else(|| {
        path.trim_end_matches(".mc")
            .trim_end_matches(".tpo")
            .to_string()
    });
    let max_entries: u64 = match args.flag("max-entries") {
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad --max-entries `{v}`")))?,
        None => 1 << 20,
    };
    // The header is stamped with the recording process's real pid unless
    // overridden (simulated multi-process recordings need distinct pids).
    let pid: u64 = match args.flag("pid") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|p| *p != 0)
            .ok_or_else(|| err(format!("bad --pid `{v}` (want a nonzero integer)")))?,
        None => RecorderConfig::default().pid,
    };
    let program = load_program(&path, true)?;
    let run = profile_program(
        program,
        cost,
        RunConfig::default(),
        &RecorderConfig {
            max_entries,
            pid,
            batch_slots: args.batch_slots()?,
            ..RecorderConfig::default()
        },
        |_| Ok(()),
    )
    .map_err(|e| err(e.to_string()))?;

    let log_path = format!("{base}.tpf");
    let sym_path = format!("{base}.sym");
    run.log
        .save(&log_path)
        .map_err(|e| err(format!("{log_path}: {e}")))?;
    std::fs::write(&sym_path, run.debug.to_text()).map_err(|e| err(format!("{sym_path}: {e}")))?;

    let mut out = String::new();
    for line in &run.output {
        writeln!(out, "{line}").expect("writing to string");
    }
    writeln!(out, "exit code: {}", run.exit_code).expect("writing to string");
    writeln!(
        out,
        "recorded {} events in {} cycles on {kind}",
        run.log.entries.len(),
        run.cycles
    )
    .expect("writing to string");
    writeln!(out, "log:     {log_path}").expect("writing to string");
    writeln!(out, "symbols: {sym_path}").expect("writing to string");
    Ok(out)
}

/// `--max-entries` for live sessions. Live mode exists to run unbounded
/// sessions over a *small* log, so the default capacity is three orders of
/// magnitude below `record`'s.
fn live_max_entries(args: &Args<'_>) -> Result<u64, CliError> {
    match args.flag("max-entries") {
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad --max-entries `{v}`"))),
        None => Ok(1 << 10),
    }
}

fn live_watermark(args: &Args<'_>) -> Result<u8, CliError> {
    match args.flag("watermark") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|p| (1..=99).contains(p))
            .ok_or_else(|| err(format!("bad --watermark `{v}` (want 1..=99)"))),
        None => Ok(DrainPolicy::default().watermark_pct),
    }
}

/// `--window-interval` / `--retain` / `--max-width`: windowed retention for
/// live sessions. `None` (no flag given) keeps the all-time view only.
fn live_retention(args: &Args<'_>) -> Result<Option<RingConfig>, CliError> {
    let mut ring: Option<RingConfig> = None;
    if let Some(v) = args.flag("window-interval") {
        let ticks: u64 = v
            .parse()
            .ok()
            .filter(|t| *t >= 1)
            .ok_or_else(|| err(format!("bad --window-interval `{v}` (want ticks >= 1)")))?;
        ring.get_or_insert_with(RingConfig::default).interval = ticks;
    }
    if let Some(v) = args.flag("retain") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| err(format!("bad --retain `{v}` (want >= 1)")))?;
        ring.get_or_insert_with(RingConfig::default).capacity = n;
    }
    if let Some(v) = args.flag("max-width") {
        let n: u64 = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| err(format!("bad --max-width `{v}` (want >= 1)")))?;
        ring.get_or_insert_with(RingConfig::default).max_width = n;
    }
    Ok(ring)
}

/// `--overhead-budget`: tolerated stream loss in percent; arms the
/// per-session fidelity controller. `None` (no flag) pins full fidelity.
fn live_budget(args: &Args<'_>) -> Result<Option<teeperf_live::OverheadBudget>, CliError> {
    match args.flag("overhead-budget") {
        None => Ok(None),
        Some(v) => {
            let pct: u8 = v
                .parse()
                .ok()
                .filter(|p| (1..=100).contains(p))
                .ok_or_else(|| err(format!("bad --overhead-budget `{v}` (want 1..=100)")))?;
            Ok(Some(teeperf_live::OverheadBudget { pct }))
        }
    }
}

fn cmd_live(args: &Args<'_>) -> Result<String, CliError> {
    if let Some(logs) = args.flag("logs") {
        return cmd_live_logs(args, logs);
    }
    if let Some(n) = args.flag("follow-pids") {
        return cmd_live_follow(args, n);
    }
    let path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing program path\n\n{USAGE}")))?;
    let cost = args.arch()?;
    let kind = cost.kind;
    let max_entries = live_max_entries(args)?;
    let watermark_pct = live_watermark(args)?;
    let refresh_events: u64 = match args.flag("refresh") {
        Some(v) => v.parse().map_err(|_| err(format!("bad --refresh `{v}`")))?,
        None => 2_000,
    };
    let show_frames = args.flag("frames").unwrap_or("no") == "yes";

    let program = load_program(path, true)?;
    let run = teeperf_live::live_profile_program(
        program,
        cost,
        RunConfig::default(),
        &RecorderConfig {
            max_entries,
            batch_slots: args.batch_slots()?,
            ..RecorderConfig::default()
        },
        &teeperf_live::LiveRunConfig {
            live: teeperf_live::LiveConfig {
                policy: DrainPolicy { watermark_pct },
                refresh_events,
                // 0 keeps the session default (sequential epoch merging;
                // pumps are frequent and batches small).
                analyzer_shards: args.analyzer_threads()?.max(1),
                retention: live_retention(args)?,
                budget: live_budget(args)?,
                ..teeperf_live::LiveConfig::default()
            },
            ..teeperf_live::LiveRunConfig::default()
        },
        |_| Ok(()),
    )
    .map_err(|e| err(e.to_string()))?;

    let mut out = String::new();
    if show_frames {
        for (i, frame) in run.frames.iter().enumerate() {
            writeln!(out, "--- refresh {} ---", i + 1).expect("writing to string");
            out.push_str(frame);
            out.push('\n');
        }
    }
    for line in &run.output {
        writeln!(out, "{line}").expect("writing to string");
    }
    writeln!(out, "exit code: {}", run.exit_code).expect("writing to string");
    writeln!(
        out,
        "live session on {kind}: {} events over {} epochs ({} entries/epoch), {} dropped, {} cycles",
        run.events, run.epochs, max_entries, run.dropped, run.cycles
    )
    .expect("writing to string");
    out.push_str(&run.snapshot.status.banner());
    out.push('\n');
    let fg = FlameGraph::from_folded_ids(
        &run.snapshot.profile.symbols,
        &run.snapshot.profile.folded_ids,
    );
    out.push_str(&fg.to_ascii(60));
    if let Some(svg_path) = args.flag("svg") {
        let svg = teeperf_flamegraph::live::render_svg(
            &run.snapshot.profile.folded,
            &run.snapshot.status,
            &SvgOptions::default().with_title("TEE-Perf live session"),
        );
        std::fs::write(svg_path, svg).map_err(|e| err(format!("{svg_path}: {e}")))?;
        writeln!(out, "wrote {svg_path}").expect("writing to string");
    }
    if let Some(base) = args.flag("out") {
        let snap_path = format!("{base}.live");
        std::fs::write(&snap_path, run.snapshot.to_text())
            .map_err(|e| err(format!("{snap_path}: {e}")))?;
        writeln!(out, "wrote {snap_path}").expect("writing to string");
    }
    Ok(out)
}

/// Shared tail of the multi-process live commands: per-pid banners, the
/// merged per-process flame view, and the optional `--svg` / `--out` files
/// (the `.live` file carries the *merged* snapshot, `[processes]` section
/// included).
fn multi_session_output(
    out: &mut String,
    per_pid: &std::collections::BTreeMap<u64, Snapshot>,
    merged: &Snapshot,
    args: &Args<'_>,
) -> Result<(), CliError> {
    for (pid, snap) in per_pid {
        writeln!(out, "pid {pid}: {}", snap.status.banner()).expect("writing to string");
    }
    let parts: Vec<teeperf_flamegraph::PidFolded> = per_pid
        .iter()
        .map(|(pid, s)| (*pid, s.profile.folded.as_slice()))
        .collect();
    out.push_str(&teeperf_flamegraph::live::render_ascii_multi(
        &parts,
        &merged.status,
        60,
    ));
    if let Some(svg_path) = args.flag("svg") {
        let svg = teeperf_flamegraph::live::render_svg_multi(
            &parts,
            &merged.status,
            &SvgOptions::default().with_title("TEE-Perf multi-process live session"),
        );
        std::fs::write(svg_path, svg).map_err(|e| err(format!("{svg_path}: {e}")))?;
        writeln!(out, "wrote {svg_path}").expect("writing to string");
    }
    if let Some(base) = args.flag("out") {
        let snap_path = format!("{base}.live");
        std::fs::write(&snap_path, merged.to_text())
            .map_err(|e| err(format!("{snap_path}: {e}")))?;
        writeln!(out, "wrote {snap_path}").expect("writing to string");
    }
    Ok(())
}

/// `teeperf live <prog> --follow-pids <n>`: run the program as `n`
/// simulated processes (pids from the real host pid upward) under one
/// session registry.
fn cmd_live_follow(args: &Args<'_>, count: &str) -> Result<String, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing program path\n\n{USAGE}")))?;
    let count: u64 = count
        .parse()
        .ok()
        .filter(|c| (1..=64).contains(c))
        .ok_or_else(|| err(format!("bad --follow-pids `{count}` (want 1..=64)")))?;
    let cost = args.arch()?;
    let kind = cost.kind;
    let max_entries = live_max_entries(args)?;
    let watermark_pct = live_watermark(args)?;
    let program = load_program(path, true)?;
    let base_pid = u64::from(std::process::id());
    let pids: Vec<u64> = (0..count).map(|i| base_pid + i).collect();
    let run = teeperf_live::live_profile_processes(
        &program,
        &cost,
        &RunConfig::default(),
        &RecorderConfig {
            max_entries,
            batch_slots: args.batch_slots()?,
            ..RecorderConfig::default()
        },
        &teeperf_live::LiveRunConfig {
            live: LiveConfig {
                policy: DrainPolicy { watermark_pct },
                refresh_events: 0,
                analyzer_shards: args.analyzer_threads()?.max(1),
                retention: live_retention(args)?,
                budget: live_budget(args)?,
                ..LiveConfig::default()
            },
            ..teeperf_live::LiveRunConfig::default()
        },
        &pids,
    )
    .map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    writeln!(
        out,
        "{count} simulated processes on {kind} (pids {base_pid}..={}): {} events, {} dropped",
        base_pid + count - 1,
        run.events,
        run.dropped
    )
    .expect("writing to string");
    multi_session_output(&mut out, &run.per_pid, &run.merged, args)?;
    Ok(out)
}

/// `teeperf live --logs a,b,c`: replay recorded logs (each `<base>.tpf`
/// with its `<base>.sym`) through the live pipeline as one multi-process
/// session, keyed by the pids in the log headers.
///
/// Every unreadable or malformed path is reported (one message per path)
/// before the command gives up with exit code 2 — a typo in one of ten
/// bases names the typo instead of panicking on the first open.
fn cmd_live_logs(args: &Args<'_>, logs: &str) -> Result<String, CliError> {
    let watermark_pct = live_watermark(args)?;
    let mut registry = SessionRegistry::new(LiveConfig {
        policy: DrainPolicy { watermark_pct },
        refresh_events: 0,
        analyzer_shards: args.analyzer_threads()?.max(1),
        retention: live_retention(args)?,
        ..LiveConfig::default()
    });
    if let Some(v) = args.flag("watchdog-timeout") {
        let timeout_pumps: u64 = v
            .parse()
            .ok()
            .filter(|t| *t > 0)
            .ok_or_else(|| err(format!("bad --watchdog-timeout `{v}` (want pumps >= 1)")))?;
        registry = registry.with_watchdog(teeperf_live::WatchdogConfig {
            timeout_pumps,
            ..teeperf_live::WatchdogConfig::default()
        });
    }
    let bases: Vec<&str> = logs
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if bases.is_empty() {
        return Err(err(format!("--logs needs at least one <base>\n\n{USAGE}")));
    }
    // Validate every path before attaching anything: all failures are
    // reported together, each on its own line.
    let mut loaded = Vec::new();
    let mut bad: Vec<String> = Vec::new();
    for base in &bases {
        let base = base.trim_end_matches(".tpf");
        let log_path = format!("{base}.tpf");
        let sym_path = format!("{base}.sym");
        let log = match LogFile::load(&log_path) {
            Ok(log) => Some(log),
            Err(e) => {
                bad.push(format!("{log_path}: {e}"));
                None
            }
        };
        let debug = match std::fs::read_to_string(&sym_path) {
            Ok(text) => match DebugInfo::from_text(&text) {
                Some(debug) => Some(debug),
                None => {
                    bad.push(format!("{sym_path}: malformed symbol file"));
                    None
                }
            },
            Err(e) => {
                bad.push(format!("{sym_path}: {e}"));
                None
            }
        };
        if let (Some(log), Some(debug)) = (log, debug) {
            loaded.push((log_path, log, debug));
        }
    }
    if !bad.is_empty() {
        return Err(CliError {
            message: bad.join("\n"),
            code: 2,
        });
    }
    let mut out = String::new();
    for (log_path, log, debug) in loaded {
        let symbolizer = Symbolizer::new(debug, &log.header);
        let mut source = FileReplaySource::new(&log);
        // Several files recorded by the same process collide on the header
        // pid; remap to the next free pid and say so rather than refusing.
        let original = source.pid();
        let taken = registry.pids();
        let mut pid = original.max(1);
        while taken.contains(&pid) {
            pid += 1;
        }
        if pid != original {
            source = source.with_pid(pid);
            writeln!(
                out,
                "note: {log_path} reports pid {original}; replaying as pid {pid}"
            )
            .expect("writing to string");
        }
        registry
            .attach(Box::new(source), symbolizer)
            .map_err(|e| err(e.to_string()))?;
    }
    while registry.pump() > 0 {}
    for w in registry.windows() {
        writeln!(
            out,
            "pid {}: retained {} windows of {} ticks ({} evicted)",
            w.pid,
            w.windows.len(),
            w.interval,
            w.evicted_windows
        )
        .expect("writing to string");
    }
    let salvage = registry.salvage();
    let run = registry.finish();
    writeln!(
        out,
        "replayed {} logs: {} events, {} dropped",
        bases.len(),
        run.merged.status.events,
        run.merged.status.dropped
    )
    .expect("writing to string");
    if !salvage.is_clean() {
        writeln!(out, "{}", salvage.to_line()).expect("writing to string");
    }
    multi_session_output(&mut out, &run.per_pid, &run.merged, args)?;
    Ok(out)
}

/// Load `<base.tpf> <base.sym>` for the offline commands. With
/// `--salvage yes` a torn or truncated log is read through the salvage
/// path instead of rejected, and the accounting report is returned for the
/// caller to print.
fn load_log_and_symbols(
    args: &Args<'_>,
) -> Result<(LogFile, DebugInfo, Option<teeperf_core::SalvageReport>), CliError> {
    let log_path = args
        .positional
        .first()
        .ok_or_else(|| err(format!("missing log path\n\n{USAGE}")))?;
    let sym_path = args
        .positional
        .get(1)
        .ok_or_else(|| err(format!("missing symbol path\n\n{USAGE}")))?;
    let salvage = args.flag("salvage").unwrap_or("no") == "yes";
    let (log, report) = if salvage {
        let (log, report) = LogFile::load_salvage(log_path).map_err(|e| path_err(log_path, e))?;
        (log, Some(report))
    } else {
        (
            LogFile::load(log_path).map_err(|e| path_err(log_path, e))?,
            None,
        )
    };
    let sym_text = std::fs::read_to_string(sym_path).map_err(|e| path_err(sym_path, e))?;
    let debug = DebugInfo::from_text(&sym_text)
        .ok_or_else(|| path_err(sym_path, "malformed symbol file"))?;
    Ok((log, debug, report))
}

fn cmd_analyze(args: &Args<'_>) -> Result<String, CliError> {
    let (log, debug, salvage) = load_log_and_symbols(args)?;
    let analyzer = Analyzer::new(log, debug)
        .map_err(|e| err(e.to_string()))?
        .with_analyzer_threads(args.analyzer_threads()?);
    let mut out = String::new();
    if let Some(report) = salvage {
        writeln!(out, "{}", report.to_line()).expect("writing to string");
    }
    out.push_str(&analyzer.report());
    Ok(out)
}

/// `teeperf query --connect <addr> [clauses...]`: time-travel queries
/// against a running daemon's retention rings. Clause tokens are joined
/// with `&` into the `/query` query string — the spec grammar is the same
/// word on the shell and on the wire — and the single word `windows`
/// fetches the `/windows` listing instead.
fn cmd_query_connect(args: &Args<'_>, addr: &str) -> Result<String, CliError> {
    let path = if args.positional.is_empty() || args.positional == ["windows"] {
        "/windows".to_string()
    } else {
        format!("/query?{}", args.positional.join("&"))
    };
    let (status, body) = teeperf_daemon::http::get(addr, &path, std::time::Duration::from_secs(5))
        .map_err(|e| err(format!("{addr}: {e}")))?;
    if status != 200 {
        return Err(err(format!(
            "{addr}: {path} returned {status}: {}",
            body.trim()
        )));
    }
    Ok(body)
}

fn cmd_query(args: &Args<'_>) -> Result<String, CliError> {
    if let Some(addr) = args.flag("connect") {
        return cmd_query_connect(args, addr);
    }
    let (log, debug, _) = load_log_and_symbols(args)?;
    let query = args
        .positional
        .get(2)
        .ok_or_else(|| err(format!("missing query string\n\n{USAGE}")))?;
    let analyzer = Analyzer::new(log, debug)
        .map_err(|e| err(e.to_string()))?
        .with_analyzer_threads(args.analyzer_threads()?);
    // Queries mentioning per-event columns go to the event frame; method
    // queries to the method frame.
    let frame = if query.contains("kind")
        || query.contains("counter")
        || query.contains("seq")
        || query.contains("tid")
    {
        analyzer.events_frame()
    } else {
        analyzer.methods_frame()
    };
    let result = teeperf_analyzer::run_query(&frame, query).map_err(|e| err(e.to_string()))?;
    Ok(result.to_table())
}

fn cmd_flamegraph(args: &Args<'_>) -> Result<String, CliError> {
    let (log, debug, _) = load_log_and_symbols(args)?;
    let analyzer = Analyzer::new(log, debug)
        .map_err(|e| err(e.to_string()))?
        .with_analyzer_threads(args.analyzer_threads()?);
    let profile = analyzer.profile();
    let fg = FlameGraph::from_folded_ids(&profile.symbols, &profile.folded_ids);
    let mut out = String::new();
    if let Some(svg_path) = args.flag("svg") {
        let title = args.flag("title").unwrap_or("TEE-Perf Flame Graph");
        let svg = fg.to_svg(&SvgOptions::default().with_title(title));
        std::fs::write(svg_path, svg).map_err(|e| err(format!("{svg_path}: {e}")))?;
        writeln!(out, "wrote {svg_path}").expect("writing to string");
    } else {
        out.push_str(&fg.to_ascii(60));
    }
    Ok(out)
}

fn cmd_diff(args: &Args<'_>) -> Result<String, CliError> {
    if args.positional.len() != 4 {
        return Err(err(format!(
            "diff needs <a.tpf> <a.sym> <b.tpf> <b.sym>\n\n{USAGE}"
        )));
    }
    let threads = args.analyzer_threads()?;
    let load = |log_path: &str, sym_path: &str| -> Result<Analyzer, CliError> {
        let log = LogFile::load(log_path).map_err(|e| path_err(log_path, e))?;
        let sym_text = std::fs::read_to_string(sym_path).map_err(|e| path_err(sym_path, e))?;
        let debug = DebugInfo::from_text(&sym_text)
            .ok_or_else(|| path_err(sym_path, "malformed symbol file"))?;
        Ok(Analyzer::new(log, debug)
            .map_err(|e| err(e.to_string()))?
            .with_analyzer_threads(threads))
    };
    let a = load(args.positional[0], args.positional[1])?.profile();
    let b = load(args.positional[2], args.positional[3])?.profile();
    let d = teeperf_analyzer::diff(&a, &b);
    let mut out = String::from(
        "profile diff (delta_pct = b - a in exclusive-time share; negative = improved)\n\n",
    );
    out.push_str(&d.to_table());
    if let Some(svg_path) = args.flag("svg") {
        let before = FlameGraph::from_folded_ids(&a.symbols, &a.folded_ids);
        let after = FlameGraph::from_folded_ids(&b.symbols, &b.folded_ids);
        let svg = after.to_diff_svg(
            &before,
            &SvgOptions::default()
                .with_title("Differential flame graph (b vs a)")
                .with_subtitle("red = share grew, blue = share shrank"),
        );
        std::fs::write(svg_path, svg).map_err(|e| err(format!("{svg_path}: {e}")))?;
        out.push_str(&format!("\nwrote differential flame graph: {svg_path}\n"));
    }
    Ok(out)
}

fn cmd_phoenix(args: &Args<'_>) -> Result<String, CliError> {
    let cost = args.arch()?;
    let kind = cost.kind;
    let only = args.flag("bench");
    let mut out = format!("phoenix suite on {kind} (small scale)\n");
    let mut matched = false;
    for b in phoenix::suite(phoenix::Scale::Small, 42) {
        if let Some(name) = only {
            if b.name() != name {
                continue;
            }
        }
        matched = true;
        let vm = phoenix::run_and_verify(b.as_ref(), cost.clone()).map_err(err)?;
        writeln!(
            out,
            "{:20} ok   {:>12} cycles  {:>10} instructions",
            b.name(),
            vm.machine().clock().now(),
            vm.executed_instructions()
        )
        .expect("writing to string");
    }
    if !matched {
        return Err(err(format!(
            "no benchmark named `{}`",
            only.unwrap_or_default()
        )));
    }
    Ok(out)
}

/// `teeperf daemon`: run a fleet profiling daemon in the foreground (the
/// same engine as the `teeperfd` binary). Blocks until `GET /shutdown` or
/// stdin EOF, then returns the closing report.
fn cmd_daemon(args: &Args<'_>) -> Result<String, CliError> {
    let mut config = teeperf_daemon::DaemonConfig::default();
    if let Some(dir) = args.flag("dir") {
        config.dir = std::path::PathBuf::from(dir);
    }
    if let Some(listen) = args.flag("listen") {
        config.listen = listen.to_string();
    }
    if let Some(out) = args.flag("snapshot-out") {
        config.snapshot_out = Some(std::path::PathBuf::from(out));
    }
    if let Some(v) = args.flag("pump-ms") {
        let ms: u64 = v.parse().map_err(|_| err(format!("bad --pump-ms `{v}`")))?;
        config.pump_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = args.flag("scan-every") {
        config.scan_every = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| err(format!("bad --scan-every `{v}` (want >= 1)")))?;
    }
    if let Some(v) = args.flag("max-loops") {
        config.max_loops = Some(
            v.parse()
                .map_err(|_| err(format!("bad --max-loops `{v}`")))?,
        );
    }
    config.retention = live_retention(args)?;
    config.budget = live_budget(args)?;
    let daemon = teeperf_daemon::Daemon::new(config.clone())
        .map_err(|e| err(format!("failed to start daemon: {e}")))?;
    let daemon = if args.flag("liveness").unwrap_or("yes") == "yes" {
        daemon
    } else {
        daemon.without_liveness_probe()
    };
    // The daemon blocks; announce the bound address before entering the
    // loop so callers can connect (the one place a command prints early).
    println!("teeperf daemon listening on {}", daemon.addr());
    println!("teeperf daemon watching {}", config.dir.display());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match std::io::Read::read(&mut stdin, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => continue,
            }
        }
        let _ = tx.send("stdin closed".to_string());
    });
    let report = daemon.run(&rx).map_err(|e| err(format!("daemon: {e}")))?;
    Ok(report.summary())
}

/// A parsed `[methods]` row: name, calls, inclusive ticks, exclusive ticks.
type MethodRow = (String, u64, u64, u64);

/// One rendered `teeperf top` frame: the live counters plus the method
/// table sorted by exclusive ticks, each row diffed against the previous
/// poll. Pure — the wire text in, the frame text out — so the rendering is
/// unit-testable without a daemon.
fn top_frame(
    poll: u64,
    text: &str,
    prev: &[MethodRow],
) -> Result<(String, Vec<MethodRow>), String> {
    let status = Snapshot::summary_from_text(text)?;
    let rows = sorted_method_rows(text)?;
    // Degraded fidelity is never silent: a daemon running under an
    // overhead budget reports its regime, and the badge carries it into
    // every frame header next to the counters it qualifies.
    let badge = match Snapshot::regime_from_text(text)? {
        None => String::new(),
        Some(info) => format!(" [{} \u{00b7} {}]", info.regime, info.confidence()),
    };
    let mut out = format!("--- poll {poll}: {}{badge}\n", status.banner());
    out.push_str(&method_table(&rows, prev));
    Ok((out, rows))
}

/// One rendered `teeperf top --window <n>` frame: a `/query` body for the
/// newest `n` windows re-rendered as the same rolling table. The `[methods]`
/// rows of a query response share the snapshot wire shape, so the windowed
/// frame reuses the snapshot parser; the banner is the span lines the
/// daemon reported instead of the whole-session counters.
fn top_window_frame(
    poll: u64,
    window: u64,
    text: &str,
    prev: &[MethodRow],
) -> Result<(String, Vec<MethodRow>), String> {
    let rows = sorted_method_rows(text)?;
    let spans: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("pid ") && l.contains(" span "))
        .collect();
    let mut out = format!(
        "--- poll {poll}: last {window} windows ({})\n",
        if spans.is_empty() {
            "no spans".to_string()
        } else {
            spans.join("; ")
        }
    );
    out.push_str(&method_table(&rows, prev));
    Ok((out, rows))
}

fn sorted_method_rows(text: &str) -> Result<Vec<MethodRow>, String> {
    let mut rows = Snapshot::methods_from_text(text)?;
    rows.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
    Ok(rows)
}

/// The shared table body of both `top` frame renderers: rows sorted by
/// exclusive ticks, each diffed against the previous poll's rows.
fn method_table(rows: &[MethodRow], prev: &[MethodRow]) -> String {
    let mut out = format!(
        "{:<24} {:>8} {:>10} {:>10} {:>10}\n",
        "method", "calls", "incl", "excl", "excl+"
    );
    for (name, calls, incl, excl) in rows {
        let before = prev
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map_or(0, |(_, _, _, e)| *e);
        let delta = excl.saturating_sub(before);
        out.push_str(&format!(
            "{name:<24} {calls:>8} {incl:>10} {excl:>10} {:>10}\n",
            if delta > 0 {
                format!("+{delta}")
            } else {
                "·".to_string()
            }
        ));
    }
    out
}

/// `teeperf top --connect <addr>`: poll a running daemon's `/snapshot` and
/// render it as a rolling method table. The client consumes nothing but
/// the stable snapshot text format — the same bytes a human can curl — so
/// the text format is the wire contract, not an implementation detail.
fn cmd_top(args: &Args<'_>) -> Result<String, CliError> {
    let addr = args
        .flag("connect")
        .ok_or_else(|| err(format!("top needs --connect <addr>\n\n{USAGE}")))?;
    let iterations: u64 = match args.flag("iterations") {
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad --iterations `{v}`")))?,
        None => 0, // forever
    };
    let interval = match args.flag("interval-ms") {
        Some(v) => std::time::Duration::from_millis(
            v.parse()
                .map_err(|_| err(format!("bad --interval-ms `{v}`")))?,
        ),
        None => std::time::Duration::from_millis(1_000),
    };
    let window: Option<u64> = match args.flag("window") {
        Some(v) => Some(
            v.parse()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| err(format!("bad --window `{v}` (want >= 1)")))?,
        ),
        None => None,
    };
    let path = match window {
        Some(w) => format!("/query?windows=last:{w}"),
        None => "/snapshot".to_string(),
    };
    let mut prev: Vec<(String, u64, u64, u64)> = Vec::new();
    let mut poll = 0u64;
    loop {
        poll += 1;
        let (status, body) =
            teeperf_daemon::http::get(addr, &path, std::time::Duration::from_secs(5))
                .map_err(|e| err(format!("{addr}: {e}")))?;
        if status != 200 {
            return Err(err(format!(
                "{addr}: {path} returned {status}: {}",
                body.trim()
            )));
        }
        let (frame, rows) = match window {
            Some(w) => top_window_frame(poll, w, &body, &prev),
            None => top_frame(poll, &body, &prev),
        }
        .map_err(|e| err(format!("{addr}: {e}")))?;
        print!("{frame}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        prev = rows;
        if iterations > 0 && poll >= iterations {
            return Ok(format!("teeperf top: {poll} polls of {addr}\n"));
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("teeperf-cli-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn no_args_prints_usage() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("usage:"));
    }

    #[test]
    fn top_frame_diffs_against_the_previous_poll() {
        let text = "[live]\nepoch 0\nevents 8\ndropped 0\nthreads 1\nopen 0\ntotal_ticks 100\n\
                    [methods]\nwork 2 80 60\nmain 1 100 40\n[folded]\nmain;work 60\n";
        let (frame, rows) = top_frame(1, text, &[]).unwrap();
        assert!(frame.contains("--- poll 1:"), "{frame}");
        // Sorted by exclusive ticks, first poll shows the full count as new.
        let work_line = frame.lines().find(|l| l.starts_with("work")).unwrap();
        assert!(work_line.ends_with("+60"), "{work_line}");
        assert_eq!(rows[0].0, "work");

        // Second poll: only the growth since the previous rows is marked.
        let text2 = text.replace("work 2 80 60", "work 3 95 75");
        let (frame2, _) = top_frame(2, &text2, &rows).unwrap();
        let work_line = frame2.lines().find(|l| l.starts_with("work")).unwrap();
        assert!(work_line.ends_with("+15"), "{work_line}");
        let main_line = frame2.lines().find(|l| l.starts_with("main")).unwrap();
        assert!(
            main_line.ends_with('·'),
            "unchanged rows show a dot: {main_line}"
        );
    }

    #[test]
    fn top_frame_rejects_unparseable_snapshots() {
        assert!(top_frame(1, "not a snapshot", &[]).is_err());
        assert!(top_frame(1, "[live]\nepoch 0\n", &[]).is_err());
    }

    #[test]
    fn top_frame_badges_a_degraded_regime() {
        let text = "[live]\nepoch 0\nevents 8\ndropped 4\nthreads 1\nopen 0\ntotal_ticks 100\n\
                    [regime]\nmode sampled 1/4\nbudget 5\ntransitions 1\nestimated_events 32\n\
                    faults 0\nconfidence estimated\n\
                    [methods]\nwork 2 80 60\n[folded]\nwork 60\n";
        let (frame, _) = top_frame(1, text, &[]).unwrap();
        let header = frame.lines().next().unwrap();
        assert!(
            header.contains("[sampled(1/4) \u{00b7} estimated]"),
            "{header}"
        );
        // No [regime] section, no badge — full-fidelity output is unchanged.
        let plain = "[live]\nepoch 0\nevents 8\ndropped 0\nthreads 1\nopen 0\ntotal_ticks 100\n\
                     [methods]\nwork 2 80 60\n[folded]\nwork 60\n";
        let (frame, _) = top_frame(1, plain, &[]).unwrap();
        let header = frame.lines().next().unwrap();
        assert!(!header.contains('['), "{header}");
    }

    #[test]
    fn top_polls_a_live_daemon_over_tcp() {
        use teeperf_core::layout::{EventKind, LogEntry};
        use teeperf_core::log::make_header;
        use teeperf_core::shm_file::{publish_sidecar, FileShmWriter};

        let dir = std::env::temp_dir().join(format!("teeperf-cli-top-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let debug = mcvm::DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5)]);
        publish_sidecar(&dir, 41, "sym", &debug.to_text()).unwrap();
        let mut w = FileShmWriter::create(&dir, &make_header(41, 64, true, 0, 0)).unwrap();
        let (a0, a1) = (debug.entry_addr(0), debug.entry_addr(1));
        let e = |kind, counter, addr| LogEntry {
            kind,
            counter,
            addr,
            tid: 0,
        };
        w.write(&e(EventKind::Call, 1, a0)).unwrap();
        w.write(&e(EventKind::Call, 10, a1)).unwrap();
        w.write(&e(EventKind::Return, 60, a1)).unwrap();
        w.write(&e(EventKind::Return, 101, a0)).unwrap();
        w.finish().unwrap();

        let daemon = teeperf_daemon::Daemon::new(teeperf_daemon::DaemonConfig {
            dir: dir.clone(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: std::time::Duration::from_millis(1),
            scan_every: 1,
            ..teeperf_daemon::DaemonConfig::default()
        })
        .unwrap()
        .without_liveness_probe();
        let addr = daemon.addr().to_string();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || daemon.run(&rx));

        let out = dispatch(&strs(&[
            "top",
            "--connect",
            &addr,
            "--iterations",
            "2",
            "--interval-ms",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("2 polls"), "{out}");

        tx.send("test done".to_string()).unwrap();
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.attached, vec![41]);
        let _ = std::fs::remove_dir_all(&dir);

        // Usage errors: missing --connect, unreachable daemon.
        assert!(dispatch(&strs(&["top"])).is_err());
        let e = dispatch(&strs(&[
            "top",
            "--connect",
            "127.0.0.1:1",
            "--iterations",
            "1",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("127.0.0.1:1"));
    }

    #[test]
    fn top_window_frame_renders_query_bodies() {
        let text = "[query]\nspec windows=last:2&top=0\n\
                    pid 41 span 3..=6 ticks 48..=111 calls 2\n\
                    [methods]\nwork 1 50 50\nmain 1 100 40\n";
        let (frame, rows) = top_window_frame(1, 2, text, &[]).unwrap();
        assert!(
            frame.contains("--- poll 1: last 2 windows (pid 41 span 3..=6"),
            "{frame}"
        );
        assert_eq!(rows[0].0, "work", "sorted by exclusive ticks");
        let work_line = frame.lines().find(|l| l.starts_with("work")).unwrap();
        assert!(work_line.ends_with("+50"), "{work_line}");

        // A span-less body still renders (empty table, honest banner).
        let (frame, rows) = top_window_frame(2, 2, "[query]\nspec x\n[methods]\n", &rows).unwrap();
        assert!(frame.contains("(no spans)"), "{frame}");
        assert!(rows.is_empty());

        assert!(top_window_frame(1, 2, "not a query body", &[]).is_err());
    }

    #[test]
    fn query_connect_and_windowed_top_against_a_retaining_daemon() {
        use teeperf_core::layout::{EventKind, LogEntry};
        use teeperf_core::log::make_header;
        use teeperf_core::shm_file::{publish_sidecar, FileShmWriter};

        let dir = std::env::temp_dir().join(format!("teeperf-cli-query-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let debug = mcvm::DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5)]);
        publish_sidecar(&dir, 41, "sym", &debug.to_text()).unwrap();
        let mut w = FileShmWriter::create(&dir, &make_header(41, 64, true, 0, 0)).unwrap();
        let (a0, a1) = (debug.entry_addr(0), debug.entry_addr(1));
        let e = |kind, counter, addr| LogEntry {
            kind,
            counter,
            addr,
            tid: 0,
        };
        w.write(&e(EventKind::Call, 1, a0)).unwrap();
        w.write(&e(EventKind::Call, 10, a1)).unwrap();
        w.write(&e(EventKind::Return, 60, a1)).unwrap();
        w.write(&e(EventKind::Return, 101, a0)).unwrap();
        w.finish().unwrap();

        let daemon = teeperf_daemon::Daemon::new(teeperf_daemon::DaemonConfig {
            dir: dir.clone(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: std::time::Duration::from_millis(1),
            scan_every: 1,
            retention: Some(RingConfig {
                interval: 16,
                ..RingConfig::default()
            }),
            ..teeperf_daemon::DaemonConfig::default()
        })
        .unwrap()
        .without_liveness_probe();
        let addr = daemon.addr().to_string();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || daemon.run(&rx));

        // The daemon attaches the writer asynchronously: poll until the
        // retention ring answers.
        let mut listing = String::new();
        for _ in 0..2_000 {
            let out = dispatch(&strs(&["query", "--connect", &addr, "windows"])).unwrap();
            if out.contains("window 6..=6") {
                listing = out;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // work exits at tick 60 -> window 3; main at 101 -> window 6.
        assert!(listing.contains("pid 41 interval 16"), "{listing}");
        assert!(listing.contains("window 3..=3"), "{listing}");
        assert!(listing.contains("window 6..=6"), "{listing}");

        // Spec clauses are positional tokens, joined with `&` on the wire.
        let out = dispatch(&strs(&[
            "query",
            "--connect",
            &addr,
            "windows=3..=3",
            "pid=41",
        ]))
        .unwrap();
        assert!(out.contains("pid 41 span 3..=3"), "{out}");
        assert!(out.contains("work 1 50 50"), "{out}");
        assert!(!out.contains("main"), "main exits outside window 3: {out}");

        let out = dispatch(&strs(&[
            "query",
            "--connect",
            &addr,
            "windows=all",
            "top=5",
        ]))
        .unwrap();
        assert!(out.contains("work"), "{out}");
        assert!(out.contains("main"), "{out}");

        // A malformed clause surfaces the daemon's 400 with the offender.
        let e = dispatch(&strs(&["query", "--connect", &addr, "windows=sideways"])).unwrap_err();
        assert!(e.to_string().contains("400"), "{e}");
        assert!(e.to_string().contains("sideways"), "{e}");

        // An out-of-range window is a 404, not an empty table.
        let e = dispatch(&strs(&["query", "--connect", &addr, "windows=9..=9"])).unwrap_err();
        assert!(e.to_string().contains("404"), "{e}");

        // top --window renders frames from the same /query endpoint.
        let out = dispatch(&strs(&[
            "top",
            "--connect",
            &addr,
            "--window",
            "8",
            "--iterations",
            "2",
            "--interval-ms",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("2 polls"), "{out}");
        assert!(dispatch(&strs(&["top", "--connect", &addr, "--window", "0"])).is_err());

        tx.send("test done".to_string()).unwrap();
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_command_rejects_bad_flags() {
        for bad in [
            &["daemon", "--scan-every", "0"][..],
            &["daemon", "--pump-ms", "x"],
            &["daemon", "--max-loops", "x"],
        ] {
            assert!(dispatch(&strs(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn daemon_command_runs_to_its_loop_limit() {
        let dir = std::env::temp_dir().join(format!("teeperf-cli-daemon-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dispatch(&strs(&[
            "daemon",
            "--dir",
            dir.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--pump-ms",
            "1",
            "--max-loops",
            "3",
            "--liveness",
            "no",
        ]))
        .unwrap();
        // Under the test harness stdin is already at EOF, so the run may
        // shut down via the stdin watcher before the loop limit: either
        // way the command returns a clean closing report.
        assert!(out.contains("teeperfd: shut down"), "{out}");
        assert!(out.contains("attached pids: -"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn archs_lists_all() {
        let out = dispatch(&strs(&["archs"])).unwrap();
        for k in ["native", "sgx-v1", "trustzone"] {
            assert!(out.contains(k));
        }
    }

    #[test]
    fn run_record_analyze_query_flamegraph_pipeline() {
        let dir = tmpdir();
        let prog = dir.join("demo.mc");
        std::fs::write(
            &prog,
            "fn work(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }
             fn main() -> int { print_int(work(100)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("demo").to_str().unwrap().to_string();

        let out = dispatch(&strs(&["run", &prog, "--arch", "native"])).unwrap();
        assert!(out.contains("4950"));
        assert!(out.contains("exit code: 0"));

        let out = dispatch(&strs(&[
            "record", &prog, "--arch", "sgx-v1", "--out", &base,
        ]))
        .unwrap();
        assert!(out.contains("recorded 4 events"), "{out}");

        let tpf = format!("{base}.tpf");
        let sym = format!("{base}.sym");
        let out = dispatch(&strs(&["analyze", &tpf, &sym])).unwrap();
        assert!(out.contains("work"));
        assert!(out.contains("main"));

        // The sharded analyzer must render the identical report.
        let sharded = dispatch(&strs(&["analyze", &tpf, &sym, "--analyzer-threads", "4"])).unwrap();
        assert_eq!(sharded, out);
        let e = dispatch(&strs(&["analyze", &tpf, &sym, "--analyzer-threads", "x"])).unwrap_err();
        assert!(e.to_string().contains("analyzer-threads"));

        let out = dispatch(&strs(&[
            "query",
            &tpf,
            &sym,
            "select method, calls sort calls desc limit 1",
        ]))
        .unwrap();
        assert!(out.contains("method"));

        let out = dispatch(&strs(&["flamegraph", &tpf, &sym])).unwrap();
        assert!(out.contains("work"));

        let svg = dir.join("demo.svg").to_str().unwrap().to_string();
        dispatch(&strs(&["flamegraph", &tpf, &sym, "--svg", &svg])).unwrap();
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
    }

    #[test]
    fn compile_then_run_and_record_object_file() {
        let dir = tmpdir();
        let prog = dir.join("obj.mc");
        std::fs::write(
            &prog,
            "fn f(x: int) -> int { return x * 2; }
             fn main() -> int { print_int(f(21)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let tpo = dir.join("obj.tpo").to_str().unwrap().to_string();

        let out = dispatch(&strs(&["compile", &prog, "--out", &tpo])).unwrap();
        assert!(out.contains("hooks"), "{out}");
        assert!(out.contains(&tpo));

        // Run the prebuilt object directly.
        let out = dispatch(&strs(&["run", &tpo, "--arch", "native"])).unwrap();
        assert!(out.contains("42"));

        // Record it: the hooks baked into the object fire.
        let base = dir.join("obj").to_str().unwrap().to_string();
        let out = dispatch(&strs(&["record", &tpo, "--arch", "sgx-v1", "--out", &base])).unwrap();
        assert!(out.contains("recorded 4 events"), "{out}");

        // Selective compile-time instrumentation via --only.
        let tpo2 = dir.join("obj_only.tpo").to_str().unwrap().to_string();
        dispatch(&strs(&["compile", &prog, "--out", &tpo2, "--only", "f"])).unwrap();
        let out = dispatch(&strs(&[
            "record", &tpo2, "--arch", "sgx-v1", "--out", &base,
        ]))
        .unwrap();
        assert!(out.contains("recorded 2 events"), "{out}");
    }

    #[test]
    fn diff_compares_two_recordings() {
        let dir = tmpdir();
        let write_prog = |name: &str, body: &str| -> String {
            let p = dir.join(name);
            std::fs::write(&p, body).unwrap();
            p.to_str().unwrap().to_string()
        };
        let a = write_prog(
            "before.mc",
            "fn hot() -> int { let s: int = 0; for (let i: int = 0; i < 500; i = i + 1) { s = s + i; } return s; }
             fn main() -> int { hot(); return 0; }",
        );
        let b = write_prog(
            "after.mc",
            "fn hot() -> int { return 124750; }
             fn main() -> int { hot(); return 0; }",
        );
        let base_a = dir.join("before").to_str().unwrap().to_string();
        let base_b = dir.join("after").to_str().unwrap().to_string();
        dispatch(&strs(&["record", &a, "--out", &base_a])).unwrap();
        dispatch(&strs(&["record", &b, "--out", &base_b])).unwrap();
        let svg = dir.join("diff.svg").to_str().unwrap().to_string();
        let out = dispatch(&strs(&[
            "diff",
            &format!("{base_a}.tpf"),
            &format!("{base_a}.sym"),
            &format!("{base_b}.tpf"),
            &format!("{base_b}.sym"),
            "--svg",
            &svg,
        ]))
        .unwrap();
        assert!(out.contains("hot"));
        assert!(out.contains("delta_pct"));
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.contains("Differential"));
    }

    #[test]
    fn live_session_over_a_tiny_log() {
        let dir = tmpdir();
        let prog = dir.join("live.mc");
        std::fs::write(
            &prog,
            "fn work(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }
             fn main() -> int { let acc: int = 0; for (let r: int = 0; r < 20; r = r + 1) { acc = acc + work(10); } print_int(acc); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let svg = dir.join("live.svg").to_str().unwrap().to_string();
        let base = dir.join("live").to_str().unwrap().to_string();

        // 42 events through an 8-entry log: the session must rotate.
        let out = dispatch(&strs(&[
            "live",
            &prog,
            "--max-entries",
            "8",
            "--refresh",
            "10",
            "--frames",
            "yes",
            "--svg",
            &svg,
            "--out",
            &base,
        ]))
        .unwrap();
        assert!(out.contains("exit code: 0"), "{out}");
        assert!(out.contains("42 events"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");
        assert!(out.contains("--- refresh 1 ---"), "{out}");
        assert!(out.contains("work"), "{out}");

        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        let snap_text = std::fs::read_to_string(format!("{base}.live")).unwrap();
        assert!(snap_text.contains("[live]"));
        assert!(snap_text.contains("dropped 0"));

        assert!(dispatch(&strs(&["live", &prog, "--watermark", "0"])).is_err());
        assert!(dispatch(&strs(&["live", &prog, "--max-entries", "x"])).is_err());
    }

    #[test]
    fn follow_pids_runs_a_multi_process_session() {
        let dir = tmpdir();
        let prog = dir.join("multi.mc");
        std::fs::write(
            &prog,
            "fn work(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }
             fn main() -> int { let acc: int = 0; for (let r: int = 0; r < 20; r = r + 1) { acc = acc + work(10); } print_int(acc); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("multi").to_str().unwrap().to_string();

        // 42 events per process × 3 processes through 8-entry logs.
        let out = dispatch(&strs(&[
            "live",
            &prog,
            "--follow-pids",
            "3",
            "--max-entries",
            "8",
            "--out",
            &base,
        ]))
        .unwrap();
        assert!(out.contains("3 simulated processes"), "{out}");
        assert!(out.contains("126 events, 0 dropped"), "{out}");
        let host = u64::from(std::process::id());
        for pid in host..host + 3 {
            assert!(out.contains(&format!("pid {pid}")), "{out}");
        }
        let snap_text = std::fs::read_to_string(format!("{base}.live")).unwrap();
        assert!(snap_text.contains("[processes]"), "{snap_text}");
        assert!(snap_text.contains(&format!("pid {host}\n")), "{snap_text}");

        assert!(dispatch(&strs(&["live", &prog, "--follow-pids", "0"])).is_err());
        assert!(dispatch(&strs(&["live", &prog, "--follow-pids", "x"])).is_err());
    }

    #[test]
    fn logs_replay_merges_recordings_as_processes() {
        let dir = tmpdir();
        let prog = dir.join("replay.mc");
        std::fs::write(
            &prog,
            "fn f(x: int) -> int { return x * 2; }
             fn main() -> int { print_int(f(21)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base_a = dir.join("proc_a").to_str().unwrap().to_string();
        let base_b = dir.join("proc_b").to_str().unwrap().to_string();
        dispatch(&strs(&["record", &prog, "--out", &base_a, "--pid", "71"])).unwrap();
        dispatch(&strs(&["record", &prog, "--out", &base_b, "--pid", "72"])).unwrap();
        assert!(dispatch(&strs(&["record", &prog, "--pid", "0"])).is_err());

        let merged = dir.join("replay").to_str().unwrap().to_string();
        let out = dispatch(&strs(&[
            "live",
            "--logs",
            &format!("{base_a},{base_b}"),
            "--out",
            &merged,
        ]))
        .unwrap();
        assert!(
            out.contains("replayed 2 logs: 8 events, 0 dropped"),
            "{out}"
        );
        assert!(out.contains("pid 71"), "{out}");
        assert!(out.contains("pid 72"), "{out}");
        let snap_text = std::fs::read_to_string(format!("{merged}.live")).unwrap();
        assert!(
            snap_text.contains("[processes]\npid 71\npid 72\n"),
            "{snap_text}"
        );

        // Colliding pids are remapped, not refused.
        let out = dispatch(&strs(&["live", "--logs", &format!("{base_a},{base_a}")])).unwrap();
        assert!(out.contains("replaying as pid 72"), "{out}");
        assert!(dispatch(&strs(&["live", "--logs", " , "])).is_err());
    }

    #[test]
    fn missing_input_paths_exit_with_code_2() {
        let e = dispatch(&strs(&["analyze", "/no/such/log.tpf", "/no/such/log.sym"])).unwrap_err();
        assert_eq!(e.code, 2, "missing log path is a path error: {e}");
        assert!(e.to_string().starts_with("/no/such/log.tpf:"), "{e}");

        let e = dispatch(&strs(&["live", "--logs", "/no/such/a,/no/such/b"])).unwrap_err();
        assert_eq!(e.code, 2);
        let msg = e.to_string();
        // Every bad path gets its own message, not just the first.
        assert!(msg.contains("/no/such/a.tpf:"), "{msg}");
        assert!(msg.contains("/no/such/b.tpf:"), "{msg}");

        // Usage errors stay exit code 1.
        let e = dispatch(&strs(&["analyze"])).unwrap_err();
        assert_eq!(e.code, 1);
    }

    #[test]
    fn analyze_salvages_a_truncated_log() {
        let dir = tmpdir();
        let prog = dir.join("salv.mc");
        std::fs::write(
            &prog,
            "fn f(x: int) -> int { return x * 2; }
             fn main() -> int { print_int(f(21)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("salv").to_str().unwrap().to_string();
        dispatch(&strs(&["record", &prog, "--out", &base])).unwrap();

        // Tear the tail off the recording, as a crash mid-save would.
        let tpf = format!("{base}.tpf");
        let sym = format!("{base}.sym");
        let bytes = std::fs::read(&tpf).unwrap();
        std::fs::write(&tpf, &bytes[..bytes.len() - 10]).unwrap();

        let e = dispatch(&strs(&["analyze", &tpf, &sym])).unwrap_err();
        assert_eq!(e.code, 2, "a torn log is rejected by default: {e}");

        let out = dispatch(&strs(&["analyze", &tpf, &sym, "--salvage", "yes"])).unwrap();
        assert!(out.starts_with("salvage: kept 3 dropped 1"), "{out}");
        assert!(out.contains("truncated-file: 1"), "{out}");
        assert!(out.contains("main"), "the surviving records still analyze");
    }

    #[test]
    fn logs_replay_accepts_a_watchdog_timeout() {
        let dir = tmpdir();
        let prog = dir.join("dog.mc");
        std::fs::write(
            &prog,
            "fn f(x: int) -> int { return x * 2; }
             fn main() -> int { print_int(f(21)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("dog").to_str().unwrap().to_string();
        dispatch(&strs(&["record", &prog, "--out", &base, "--pid", "81"])).unwrap();

        // Replay sources finish; the watchdog must not quarantine them.
        let out = dispatch(&strs(&["live", "--logs", &base, "--watchdog-timeout", "4"])).unwrap();
        assert!(
            out.contains("replayed 1 logs: 4 events, 0 dropped"),
            "{out}"
        );
        assert!(!out.contains("quarantined"), "{out}");

        let e = dispatch(&strs(&["live", "--logs", &base, "--watchdog-timeout", "0"])).unwrap_err();
        assert!(e.to_string().contains("watchdog-timeout"), "{e}");
    }

    #[test]
    fn retention_flags_thread_through_live_and_logs_replay() {
        let dir = tmpdir();
        let prog = dir.join("ring.mc");
        std::fs::write(
            &prog,
            "fn work(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }
             fn main() -> int { let acc: int = 0; for (let r: int = 0; r < 20; r = r + 1) { acc = acc + work(10); } print_int(acc); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("ring").to_str().unwrap().to_string();

        // A tiny ring over a long run must evict, and the transitions land
        // in the snapshot's [events] section.
        let out = dispatch(&strs(&[
            "live",
            &prog,
            "--window-interval",
            "50",
            "--retain",
            "1",
            "--max-width",
            "1",
            "--out",
            &base,
        ]))
        .unwrap();
        assert!(out.contains("exit code: 0"), "{out}");
        let snap_text = std::fs::read_to_string(format!("{base}.live")).unwrap();
        assert!(snap_text.contains("evicted windows"), "{snap_text}");

        // Logs replay reports what each pid retained.
        let rec = dir.join("ring_rec").to_str().unwrap().to_string();
        dispatch(&strs(&["record", &prog, "--out", &rec, "--pid", "91"])).unwrap();
        let out = dispatch(&strs(&[
            "live",
            "--logs",
            &rec,
            "--window-interval",
            "100000",
            "--retain",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("pid 91: retained"), "{out}");
        assert!(out.contains("windows of 100000 ticks (0 evicted)"), "{out}");

        for bad in [
            &["live", &prog, "--window-interval", "0"][..],
            &["live", &prog, "--retain", "x"],
            &["live", &prog, "--max-width", "0"],
        ] {
            assert!(dispatch(&strs(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn batch_slots_and_transition_mode_thread_through_record_and_live() {
        let dir = tmpdir();
        let prog = dir.join("knobs.mc");
        std::fs::write(
            &prog,
            "fn f(x: int) -> int { return x * 2; }
             fn main() -> int { print_int(f(21)); return 0; }",
        )
        .unwrap();
        let prog = prog.to_str().unwrap().to_string();
        let base = dir.join("knobs").to_str().unwrap().to_string();

        // Both knobs are performance knobs: they reshape the timeline (the
        // counter is the cycle clock, and switchless transitions are
        // cheaper) but must not change *what* was recorded — same events,
        // same methods, same call counts.
        let calls_query = "select method, calls sort method asc";
        let classic = dispatch(&strs(&["record", &prog, "--out", &base])).unwrap();
        assert!(classic.contains("recorded 4 events"), "{classic}");
        let tpf = format!("{base}.tpf");
        let sym = format!("{base}.sym");
        let classic_calls = dispatch(&strs(&["query", &tpf, &sym, calls_query])).unwrap();

        let tuned = dispatch(&strs(&[
            "record",
            &prog,
            "--out",
            &base,
            "--batch-slots",
            "8",
            "--transition-mode",
            "switchless",
        ]))
        .unwrap();
        assert!(tuned.contains("recorded 4 events"), "{tuned}");
        let tuned_calls = dispatch(&strs(&["query", &tpf, &sym, calls_query])).unwrap();
        assert_eq!(
            classic_calls, tuned_calls,
            "knobs must not change what was recorded"
        );

        // Live sessions accept both knobs too.
        let out = dispatch(&strs(&[
            "live",
            &prog,
            "--max-entries",
            "8",
            "--batch-slots",
            "2",
            "--transition-mode",
            "switchless",
        ]))
        .unwrap();
        assert!(out.contains("exit code: 0"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");

        for bad in [
            &["record", &prog, "--batch-slots", "0"][..],
            &["record", &prog, "--batch-slots", "x"],
            &["record", &prog, "--transition-mode", "teleport"],
            &["live", &prog, "--batch-slots", "0"],
        ] {
            assert!(dispatch(&strs(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn bad_arch_rejected() {
        let dir = tmpdir();
        let prog = dir.join("p.mc");
        std::fs::write(&prog, "fn main() -> int { return 0; }").unwrap();
        let e = dispatch(&strs(&["run", prog.to_str().unwrap(), "--arch", "sgx-v9"])).unwrap_err();
        assert!(e.to_string().contains("unknown architecture"));
    }

    #[test]
    fn phoenix_single_bench_runs() {
        let out = dispatch(&strs(&[
            "phoenix",
            "--bench",
            "linear_regression",
            "--arch",
            "native",
        ]))
        .unwrap();
        assert!(out.contains("linear_regression"));
        assert!(out.contains("ok"));
        assert!(dispatch(&strs(&["phoenix", "--bench", "nope"])).is_err());
    }

    #[test]
    fn missing_flag_value_rejected() {
        assert!(dispatch(&strs(&["run", "--arch"])).is_err());
    }
}
