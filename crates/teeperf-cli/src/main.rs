//! `teeperf` — the command-line face of the TEE-Perf pipeline.
//!
//! ```text
//! teeperf run <prog.mc> [--arch sgx-v1]                  # plain execution
//! teeperf record <prog.mc> [--arch sgx-v1] [--out base]  # stages 1+2
//! teeperf analyze <base.tpf> <base.sym>                  # stage 3 report
//! teeperf query <base.tpf> <base.sym> "<query>"          # declarative queries
//! teeperf flamegraph <base.tpf> <base.sym> [--svg f]     # stage 4
//! teeperf phoenix [--bench name] [--arch sgx-v1]         # run the suite
//! ```

#![forbid(unsafe_code)]

mod cli;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("teeperf: {e}");
            // Code 2 = a named input path was missing or unreadable; 1 =
            // everything else (see `cli::CliError`).
            ExitCode::from(e.code)
        }
    }
}
