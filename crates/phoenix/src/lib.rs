//! # phoenix — the Phoenix 2.0 multithreaded benchmark suite in Mini-C
//!
//! The paper's overhead evaluation (Figure 4) runs the Phoenix 2.0 suite
//! (Ranger et al., HPCA'07) inside an SGX enclave. This crate ports the
//! seven workloads to Mini-C so they can pass through TEE-Perf's
//! instrumentation pass unmodified, exactly as the C originals pass through
//! `gcc -finstrument-functions`:
//!
//! | benchmark | kernel | call density |
//! |---|---|---|
//! | `histogram` | per-pixel RGB binning with atomic merges | medium |
//! | `linear_regression` | one fused accumulation loop | lowest (the paper's best case: TEE-Perf beats `perf`) |
//! | `string_match` | per-word key comparison via tiny functions | highest (the paper's 5.7× worst case) |
//! | `word_count` | open-addressing hash table of words | high |
//! | `matrix_mult` | blocked row×column products | medium |
//! | `kmeans` | distance function per point×cluster×iteration | high |
//! | `pca` | mean + covariance dot products | medium |
//!
//! Every workload is multithreaded (`spawn`/`join` with atomic work
//! distribution), generated from a seeded RNG, and *verified* against a
//! straightforward Rust reference implementation, so the profiling
//! experiments measure correct computations.

#![forbid(unsafe_code)]

pub mod generators;
pub mod workloads;

use mcvm::{McError, Vm};

/// Workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests (≈100 k VM instructions).
    Small,
    /// The figure-generation size (≈1–3 M VM instructions per run).
    Full,
}

/// One Phoenix benchmark: Mini-C source + input injection + verification.
pub trait Benchmark {
    /// Benchmark name as it appears in Figure 4.
    fn name(&self) -> &'static str;

    /// The Mini-C program.
    fn source(&self) -> &'static str;

    /// Inject the generated inputs into the VM's globals.
    ///
    /// # Errors
    /// Fails only if the program's globals don't match the workload (a bug).
    fn setup(&self, vm: &mut Vm) -> Result<(), McError>;

    /// Check the outputs left in the VM against the Rust reference.
    ///
    /// # Errors
    /// Returns a human-readable description of the first mismatch.
    fn verify(&self, vm: &Vm) -> Result<(), String>;
}

/// Number of worker threads used by every workload (the paper's testbed
/// has 4 cores).
pub const NTHREADS: i64 = 4;

/// Instantiate the full suite in Figure-4 order.
pub fn suite(scale: Scale, seed: u64) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(workloads::histogram::Histogram::new(scale, seed)),
        Box::new(workloads::kmeans::KMeans::new(scale, seed)),
        Box::new(workloads::linear_regression::LinearRegression::new(
            scale, seed,
        )),
        Box::new(workloads::matrix_mult::MatrixMult::new(scale, seed)),
        Box::new(workloads::pca::Pca::new(scale, seed)),
        Box::new(workloads::string_match::StringMatch::new(scale, seed)),
        Box::new(workloads::word_count::WordCount::new(scale, seed)),
    ]
}

/// Compile and run one benchmark uninstrumented on the given cost model;
/// returns the VM after a verified run.
///
/// # Errors
/// Returns the VM error or the verification failure as a string.
pub fn run_and_verify(bench: &dyn Benchmark, cost: tee_sim::CostModel) -> Result<Vm, String> {
    let program = mcvm::compile(bench.source())
        .map_err(|e| format!("{}: compile error: {e}", bench.name()))?;
    let mut vm = Vm::new(program, tee_sim::Machine::new(cost));
    bench
        .setup(&mut vm)
        .map_err(|e| format!("{}: setup error: {e}", bench.name()))?;
    vm.run()
        .map_err(|e| format!("{}: runtime error: {e}", bench.name()))?;
    bench
        .verify(&vm)
        .map_err(|e| format!("{}: {e}", bench.name()))?;
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_sim::CostModel;

    #[test]
    fn suite_has_seven_benchmarks_in_order() {
        let s = suite(Scale::Small, 1);
        let names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "histogram",
                "kmeans",
                "linear_regression",
                "matrix_mult",
                "pca",
                "string_match",
                "word_count"
            ]
        );
    }

    #[test]
    fn all_benchmarks_run_and_verify_native_small() {
        for b in suite(Scale::Small, 42) {
            run_and_verify(b.as_ref(), CostModel::native()).unwrap();
        }
    }

    #[test]
    fn all_benchmarks_verify_under_instrumentation() {
        // The instrumented binary must compute the same results, and the
        // recorded log must balance.
        for b in suite(Scale::Small, 7) {
            let program = teeperf_compiler::compile_instrumented(
                b.source(),
                &teeperf_compiler::InstrumentOptions::default(),
            )
            .unwrap();
            let run = teeperf_compiler::profile_program(
                program,
                CostModel::sgx_v1(),
                mcvm::RunConfig::default(),
                &teeperf_core::RecorderConfig::default(),
                |vm| b.setup(vm),
            )
            .unwrap();
            assert_eq!(run.exit_code, 0, "{} nonzero exit", b.name());
            let calls = run.log.entries.iter().filter(|e| e.kind.is_call()).count();
            let rets = run.log.entries.len() - calls;
            assert_eq!(calls, rets, "{} unbalanced log", b.name());
            // linear_regression is deliberately call-sparse (main + workers
            // only); everything else records far more.
            assert!(calls >= 5, "{} suspiciously few calls", b.name());
        }
    }

    #[test]
    fn different_seeds_give_different_inputs_same_correctness() {
        for seed in [1, 99] {
            let b = workloads::histogram::Histogram::new(Scale::Small, seed);
            run_and_verify(&b, CostModel::native()).unwrap();
        }
    }
}
