//! Phoenix `linear_regression`: least-squares fit over a point cloud.
//!
//! Deliberately the most call-sparse workload: each worker runs **one**
//! fused accumulation loop and issues a handful of atomic merges. The paper
//! observes TEE-Perf is ~8 % *faster* than `perf` here — almost no hooks
//! execute, while `perf` keeps paying periodic AEX interrupts.

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix linear_regression, Mini-C port.
global xs: [int];
global ys: [int];
global n: int;
global nthreads: int;
global sums: [int];   // sx, sy, sxx, syy, sxy

fn worker(id: int) -> int {
    let per: int = (n + nthreads - 1) / nthreads;
    let start: int = id * per;
    let end: int = start + per;
    if (end > n) { end = n; }
    let sx: int = 0;
    let sy: int = 0;
    let sxx: int = 0;
    let syy: int = 0;
    let sxy: int = 0;
    for (let i: int = start; i < end; i = i + 1) {
        let x: int = xs[i];
        let y: int = ys[i];
        sx = sx + x;
        sy = sy + y;
        sxx = sxx + x * x;
        syy = syy + y * y;
        sxy = sxy + x * y;
    }
    atomic_add(sums, 0, sx);
    atomic_add(sums, 1, sy);
    atomic_add(sums, 2, sxx);
    atomic_add(sums, 3, syy);
    atomic_add(sums, 4, sxy);
    return end - start;
}

fn main() -> int {
    sums = alloc(5);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == n);
    return 0;
}
";

/// The linear-regression benchmark instance.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    xs: Vec<i64>,
    ys: Vec<i64>,
    n: i64,
}

impl LinearRegression {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> LinearRegression {
        let n = match scale {
            Scale::Small => 4_000,
            Scale::Full => 60_000,
        };
        // y ≈ 3x + noise, values kept small so i64 sums cannot overflow.
        let xs = generators::ints(seed, n, 1_000);
        let noise = generators::ints(seed ^ 0xdead, n, 100);
        let ys: Vec<i64> = xs.iter().zip(&noise).map(|(x, e)| 3 * x + e).collect();
        LinearRegression {
            xs,
            ys,
            n: n as i64,
        }
    }

    fn expected_sums(&self) -> [i64; 5] {
        let mut s = [0i64; 5];
        for (x, y) in self.xs.iter().zip(&self.ys) {
            s[0] += x;
            s[1] += y;
            s[2] += x * x;
            s[3] += y * y;
            s[4] += x * y;
        }
        s
    }
}

impl Benchmark for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_int_array("xs", &self.xs)?;
        vm.set_global_int_array("ys", &self.ys)?;
        vm.set_global_int("n", self.n)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let sums = vm
            .read_global_int_array("sums")
            .map_err(|e| e.to_string())?;
        let expected = self.expected_sums();
        if sums != expected {
            return Err(format!("sums {sums:?} != expected {expected:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn linear_regression_verifies() {
        let b = LinearRegression::new(Scale::Small, 2);
        run_and_verify(&b, CostModel::native()).unwrap();
    }

    #[test]
    fn slope_recovers_the_generating_model() {
        let b = LinearRegression::new(Scale::Small, 2);
        let [sx, sy, sxx, _syy, sxy] = b.expected_sums();
        let n = b.n as f64;
        let slope =
            (n * sxy as f64 - sx as f64 * sy as f64) / (n * sxx as f64 - (sx as f64).powi(2));
        assert!((slope - 3.0).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn is_call_sparse() {
        // The property Figure 4 depends on: very few instrumentable calls.
        let b = LinearRegression::new(Scale::Small, 2);
        let program = teeperf_compiler::compile_instrumented(
            b.source(),
            &teeperf_compiler::InstrumentOptions::default(),
        )
        .unwrap();
        let run = teeperf_compiler::profile_program(
            program,
            CostModel::sgx_v1(),
            mcvm::RunConfig::default(),
            &teeperf_core::RecorderConfig::default(),
            |vm| b.setup(vm),
        )
        .unwrap();
        // main + nthreads workers, ×2 events each.
        assert_eq!(run.log.entries.len() as i64, 2 * (1 + NTHREADS));
    }
}
