//! Phoenix `histogram`: bin the R, G and B channels of an image into
//! 3 × 256 buckets. Workers claim pixel chunks with an atomic cursor and
//! merge into the shared bins with atomic adds.

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix histogram, Mini-C port.
global data: [int];      // 3*n interleaved r,g,b values in 0..255
global n: int;           // number of pixels
global nthreads: int;
global bins: [int];      // 768 buckets: r 0..255, g 256..511, b 512..767
global cursor: [int];    // shared work cursor

fn bin_pixel(i: int) -> int {
    let off: int = i * 3;
    atomic_add(bins, data[off], 1);
    atomic_add(bins, 256 + data[off + 1], 1);
    atomic_add(bins, 512 + data[off + 2], 1);
    return 3;
}

fn process_chunk(start: int, end: int) -> int {
    let done: int = 0;
    for (let i: int = start; i < end; i = i + 1) {
        done = done + bin_pixel(i);
    }
    return done;
}

fn worker(id: int) -> int {
    let chunk: int = 64;
    let done: int = 0;
    while (1) {
        let start: int = atomic_add(cursor, 0, chunk);
        if (start >= n) { break; }
        let end: int = start + chunk;
        if (end > n) { end = n; }
        done = done + process_chunk(start, end);
    }
    return done;
}

fn main() -> int {
    bins = alloc(768);
    cursor = alloc(1);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == n * 3);
    return 0;
}
";

/// The histogram benchmark instance.
#[derive(Debug, Clone)]
pub struct Histogram {
    data: Vec<i64>,
    n: i64,
}

impl Histogram {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Histogram {
        let n = match scale {
            Scale::Small => 1_500,
            Scale::Full => 30_000,
        };
        Histogram {
            data: generators::ints(seed, n * 3, 256),
            n: n as i64,
        }
    }

    fn expected_bins(&self) -> Vec<i64> {
        let mut bins = vec![0i64; 768];
        for p in 0..self.n as usize {
            bins[self.data[p * 3] as usize] += 1;
            bins[256 + self.data[p * 3 + 1] as usize] += 1;
            bins[512 + self.data[p * 3 + 2] as usize] += 1;
        }
        bins
    }
}

impl Benchmark for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_int_array("data", &self.data)?;
        vm.set_global_int("n", self.n)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let bins = vm
            .read_global_int_array("bins")
            .map_err(|e| e.to_string())?;
        let expected = self.expected_bins();
        if bins != expected {
            let bad = bins
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .expect("some bin differs");
            return Err(format!(
                "bin {bad}: got {}, expected {}",
                bins[bad], expected[bad]
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn histogram_verifies_on_native_and_sgx() {
        let b = Histogram::new(Scale::Small, 11);
        run_and_verify(&b, CostModel::native()).unwrap();
        run_and_verify(&b, CostModel::sgx_v1()).unwrap();
    }

    #[test]
    fn bins_sum_to_pixel_count() {
        let b = Histogram::new(Scale::Small, 3);
        let vm = run_and_verify(&b, CostModel::native()).unwrap();
        let bins = vm.read_global_int_array("bins").unwrap();
        assert_eq!(bins.iter().sum::<i64>(), b.n * 3);
        assert_eq!(bins[..256].iter().sum::<i64>(), b.n);
    }
}
