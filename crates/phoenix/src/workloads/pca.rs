//! Phoenix `pca`: mean vector and covariance matrix of a data matrix
//! (rows = variables, columns = observations). Workers compute row means
//! in a first wave, then covariance entries (upper triangle) in a second —
//! the two-pass structure of the original benchmark.

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix pca, Mini-C port.
global mat: [float];    // r*c, row-major
global r: int;
global c: int;
global nthreads: int;
global means: [float];  // r
global cov: [float];    // r*r (upper triangle filled)
global cursor: [int];   // work cursor over covariance pairs

fn row_mean(i: int) -> float {
    let s: float = 0.0;
    let off: int = i * c;
    for (let j: int = 0; j < c; j = j + 1) { s = s + mat[off + j]; }
    return s / itof(c);
}

fn mean_worker(id: int) -> int {
    for (let i: int = id; i < r; i = i + nthreads) {
        means[i] = row_mean(i);
    }
    return 0;
}

fn cov_pair(i: int, j: int) -> float {
    let s: float = 0.0;
    let oi: int = i * c;
    let oj: int = j * c;
    let mi: float = means[i];
    let mj: float = means[j];
    for (let t: int = 0; t < c; t = t + 1) {
        s = s + (mat[oi + t] - mi) * (mat[oj + t] - mj);
    }
    return s / itof(c - 1);
}

fn pair_index(p: int) -> int {
    // Row of the p-th upper-triangle pair, solving p against the triangle.
    let i: int = 0;
    let consumed: int = 0;
    while (consumed + (r - i) <= p) {
        consumed = consumed + (r - i);
        i = i + 1;
    }
    return i * r + (i + (p - consumed));  // encode (i, j)
}

fn cov_worker(id: int) -> int {
    let npairs: int = r * (r + 1) / 2;
    let done: int = 0;
    while (1) {
        let p: int = atomic_add(cursor, 0, 1);
        if (p >= npairs) { break; }
        let enc: int = pair_index(p);
        let i: int = enc / r;
        let j: int = enc % r;
        cov[i * r + j] = cov_pair(i, j);
        done = done + 1;
    }
    return done;
}

fn main() -> int {
    means = alloc(r);
    cov = alloc(r * r);
    cursor = alloc(1);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(mean_worker, t); }
    for (let t: int = 0; t < nthreads; t = t + 1) { join(tids[t]); }
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(cov_worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == r * (r + 1) / 2);
    return 0;
}
";

/// The PCA benchmark instance.
#[derive(Debug, Clone)]
pub struct Pca {
    mat: Vec<f64>,
    r: i64,
    c: i64,
}

impl Pca {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Pca {
        let (r, c) = match scale {
            Scale::Small => (10, 200),
            Scale::Full => (24, 1_200),
        };
        Pca {
            mat: generators::floats(seed, (r * c) as usize, -10.0, 10.0),
            r: r as i64,
            c: c as i64,
        }
    }

    #[allow(clippy::needless_range_loop)] // mirrors the Mini-C loops 1:1
    fn reference(&self) -> (Vec<f64>, Vec<f64>) {
        let (r, c) = (self.r as usize, self.c as usize);
        let mut means = vec![0.0f64; r];
        for i in 0..r {
            let mut s = 0.0;
            for j in 0..c {
                s += self.mat[i * c + j];
            }
            means[i] = s / c as f64;
        }
        let mut cov = vec![0.0f64; r * r];
        for i in 0..r {
            for j in i..r {
                let mut s = 0.0;
                for t in 0..c {
                    s += (self.mat[i * c + t] - means[i]) * (self.mat[j * c + t] - means[j]);
                }
                cov[i * r + j] = s / (c as f64 - 1.0);
            }
        }
        (means, cov)
    }
}

impl Benchmark for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_float_array("mat", &self.mat)?;
        vm.set_global_int("r", self.r)?;
        vm.set_global_int("c", self.c)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let (ref_means, ref_cov) = self.reference();
        let means = vm
            .read_global_float_array("means")
            .map_err(|e| e.to_string())?;
        for (i, (a, b)) in means.iter().zip(&ref_means).enumerate() {
            if (a - b).abs() > 1e-9 {
                return Err(format!("mean {i}: got {a}, expected {b}"));
            }
        }
        let cov = vm
            .read_global_float_array("cov")
            .map_err(|e| e.to_string())?;
        for (i, (a, b)) in cov.iter().zip(&ref_cov).enumerate() {
            if (a - b).abs() > 1e-9 * b.abs().max(1.0) {
                return Err(format!("cov {i}: got {a}, expected {b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn pca_verifies() {
        let b = Pca::new(Scale::Small, 21);
        run_and_verify(&b, CostModel::native()).unwrap();
    }

    #[test]
    fn diagonal_is_variance_and_positive() {
        let b = Pca::new(Scale::Small, 21);
        let (_, cov) = b.reference();
        let r = b.r as usize;
        for i in 0..r {
            assert!(cov[i * r + i] > 0.0, "variance must be positive");
        }
    }

    #[test]
    fn pair_enumeration_covers_upper_triangle() {
        // Mirror the Mini-C pair_index logic and check it hits each (i,j),
        // i <= j, exactly once.
        let r = 7i64;
        let mut seen = std::collections::HashSet::new();
        let npairs = r * (r + 1) / 2;
        for p in 0..npairs {
            let mut i = 0;
            let mut consumed = 0;
            while consumed + (r - i) <= p {
                consumed += r - i;
                i += 1;
            }
            let j = i + (p - consumed);
            assert!(i <= j && j < r);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len() as i64, npairs);
    }
}
