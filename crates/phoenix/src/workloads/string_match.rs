//! Phoenix `string_match`: compare every word of a corpus against four
//! search keys.
//!
//! Deliberately the most call-dense workload — one `match_word` plus four
//! `str_eq` calls per word, each tiny. This is the paper's worst case for
//! instrumentation overhead (5.7× vs `perf` in Figure 4).

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix string_match, Mini-C port.
global text: [int];      // concatenated word bytes
global offs: [int];      // n_words+1 offsets into text
global n_words: int;
global keys: [int];      // concatenated key bytes
global key_offs: [int];  // 5 offsets into keys
global nthreads: int;
global found: [int];     // per-key hit counters
global cursor: [int];

fn str_eq(a_off: int, a_len: int, k_off: int, k_len: int) -> int {
    if (a_len != k_len) { return 0; }
    for (let i: int = 0; i < a_len; i = i + 1) {
        if (text[a_off + i] != keys[k_off + i]) { return 0; }
    }
    return 1;
}

fn match_word(w: int) -> int {
    let hits: int = 0;
    let a_off: int = offs[w];
    let a_len: int = offs[w + 1] - a_off;
    for (let k: int = 0; k < 4; k = k + 1) {
        if (str_eq(a_off, a_len, key_offs[k], key_offs[k + 1] - key_offs[k])) {
            atomic_add(found, k, 1);
            hits = hits + 1;
        }
    }
    return hits;
}

fn worker(id: int) -> int {
    let chunk: int = 32;
    let done: int = 0;
    while (1) {
        let start: int = atomic_add(cursor, 0, chunk);
        if (start >= n_words) { break; }
        let end: int = start + chunk;
        if (end > n_words) { end = n_words; }
        for (let w: int = start; w < end; w = w + 1) {
            match_word(w);
            done = done + 1;
        }
    }
    return done;
}

fn main() -> int {
    found = alloc(4);
    cursor = alloc(1);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == n_words);
    return 0;
}
";

/// The string-match benchmark instance.
#[derive(Debug, Clone)]
pub struct StringMatch {
    text: Vec<i64>,
    offs: Vec<i64>,
    n_words: i64,
    keys: Vec<i64>,
    key_offs: Vec<i64>,
}

impl StringMatch {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> StringMatch {
        let n_words = match scale {
            Scale::Small => 600,
            Scale::Full => 9_000,
        };
        let (text, offs) = generators::words(seed, n_words, 3, 10);
        // Two keys taken from the corpus (guaranteed hits), two synthetic.
        let mut keys = Vec::new();
        let mut key_offs = vec![0i64];
        let w0 = generators::word_at(&text, &offs, 0);
        let w1 = generators::word_at(&text, &offs, n_words / 2);
        for key in [
            w0,
            w1,
            b"qzqzqz".iter().map(|b| i64::from(*b)).collect(),
            b"needle".iter().map(|b| i64::from(*b)).collect(),
        ] {
            keys.extend_from_slice(&key);
            key_offs.push(keys.len() as i64);
        }
        StringMatch {
            text,
            offs,
            n_words: n_words as i64,
            keys,
            key_offs,
        }
    }

    #[allow(clippy::needless_range_loop)] // mirrors the Mini-C loops 1:1
    fn expected_found(&self) -> Vec<i64> {
        let mut found = vec![0i64; 4];
        for w in 0..self.n_words as usize {
            let word = generators::word_at(&self.text, &self.offs, w);
            for k in 0..4 {
                let key = &self.keys[self.key_offs[k] as usize..self.key_offs[k + 1] as usize];
                if word == key {
                    found[k] += 1;
                }
            }
        }
        found
    }
}

impl Benchmark for StringMatch {
    fn name(&self) -> &'static str {
        "string_match"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_int_array("text", &self.text)?;
        vm.set_global_int_array("offs", &self.offs)?;
        vm.set_global_int("n_words", self.n_words)?;
        vm.set_global_int_array("keys", &self.keys)?;
        vm.set_global_int_array("key_offs", &self.key_offs)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let found = vm
            .read_global_int_array("found")
            .map_err(|e| e.to_string())?;
        let expected = self.expected_found();
        if found != expected {
            return Err(format!("found {found:?} != expected {expected:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn string_match_verifies() {
        let b = StringMatch::new(Scale::Small, 5);
        let vm = run_and_verify(&b, CostModel::native()).unwrap();
        let found = vm.read_global_int_array("found").unwrap();
        // The corpus-drawn keys must be found; the synthetic key "qzqzqz"
        // is outside the generator's alphabet distribution with ~certainty.
        assert!(found[0] >= 1);
        assert!(found[1] >= 1);
    }

    #[test]
    fn is_call_dense() {
        let b = StringMatch::new(Scale::Small, 5);
        let program = teeperf_compiler::compile_instrumented(
            b.source(),
            &teeperf_compiler::InstrumentOptions::default(),
        )
        .unwrap();
        let run = teeperf_compiler::profile_program(
            program,
            CostModel::sgx_v1(),
            mcvm::RunConfig::default(),
            &teeperf_core::RecorderConfig::default(),
            |vm| b.setup(vm),
        )
        .unwrap();
        // ≥ 5 calls per word (match_word + 4 str_eq), ×2 events.
        assert!(
            run.log.entries.len() as i64 >= b.n_words * 10,
            "expected ≥{} events, got {}",
            b.n_words * 10,
            run.log.entries.len()
        );
    }
}
