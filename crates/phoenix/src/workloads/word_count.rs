//! Phoenix `word_count`: count word occurrences with per-thread
//! open-addressing hash tables merged by the main thread — the classic
//! map-reduce shape of the original benchmark.

use std::collections::HashMap;

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix word_count, Mini-C port.
// Each worker fills its own open-addressing table (keys = word index + 1,
// so 0 means empty); main merges the per-thread tables into a final one.
global text: [int];
global offs: [int];
global n_words: int;
global nthreads: int;
global cap: int;           // table capacity (power of two)
global tkeys: [[int]];     // per-thread key tables
global tcounts: [[int]];   // per-thread count tables
global fkeys: [int];       // final merged table
global fcounts: [int];
global distinct: [int];    // [0] = number of distinct words

fn hash_word(w: int) -> int {
    let h: int = 5381;
    let start: int = offs[w];
    let end: int = offs[w + 1];
    for (let i: int = start; i < end; i = i + 1) {
        h = (h * 33 + text[i]) & 0xffffff;
    }
    return h;
}

fn words_equal(a: int, b: int) -> int {
    let a_off: int = offs[a];
    let b_off: int = offs[b];
    let a_len: int = offs[a + 1] - a_off;
    if (a_len != offs[b + 1] - b_off) { return 0; }
    for (let i: int = 0; i < a_len; i = i + 1) {
        if (text[a_off + i] != text[b_off + i]) { return 0; }
    }
    return 1;
}

// Insert word w with the given count into (keys, counts); returns 1 when a
// new slot was claimed, 0 when an existing entry was bumped.
fn table_add(keys: [int], counts: [int], w: int, count: int) -> int {
    let slot: int = hash_word(w) & (cap - 1);
    while (1) {
        let k: int = keys[slot];
        if (k == 0) {
            keys[slot] = w + 1;
            counts[slot] = count;
            return 1;
        }
        if (words_equal(k - 1, w)) {
            counts[slot] = counts[slot] + count;
            return 0;
        }
        slot = (slot + 1) & (cap - 1);
    }
    return 0;
}

fn worker(id: int) -> int {
    let per: int = (n_words + nthreads - 1) / nthreads;
    let start: int = id * per;
    let end: int = start + per;
    if (end > n_words) { end = n_words; }
    let keys: [int] = tkeys[id];
    let counts: [int] = tcounts[id];
    for (let w: int = start; w < end; w = w + 1) {
        table_add(keys, counts, w, 1);
    }
    return end - start;
}

fn merge_tables() -> int {
    let uniq: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) {
        let keys: [int] = tkeys[t];
        let counts: [int] = tcounts[t];
        for (let s: int = 0; s < cap; s = s + 1) {
            if (keys[s] != 0) {
                uniq = uniq + table_add(fkeys, fcounts, keys[s] - 1, counts[s]);
            }
        }
    }
    return uniq;
}

fn main() -> int {
    tkeys = alloc(nthreads);
    tcounts = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) {
        tkeys[t] = alloc(cap);
        tcounts[t] = alloc(cap);
    }
    fkeys = alloc(cap);
    fcounts = alloc(cap);
    distinct = alloc(1);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == n_words);
    distinct[0] = merge_tables();
    return 0;
}
";

/// The word-count benchmark instance.
#[derive(Debug, Clone)]
pub struct WordCount {
    text: Vec<i64>,
    offs: Vec<i64>,
    n_words: i64,
    cap: i64,
}

impl WordCount {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> WordCount {
        let n_words = match scale {
            Scale::Small => 800,
            Scale::Full => 12_000,
        };
        let (text, offs) = generators::words(seed, n_words, 2, 9);
        // Capacity: next power of two ≥ 4×words (load factor ≤ 0.25 so
        // probing stays shallow even in the merged table).
        let cap = (n_words * 4).next_power_of_two() as i64;
        WordCount {
            text,
            offs,
            n_words: n_words as i64,
            cap,
        }
    }

    fn reference_counts(&self) -> HashMap<Vec<i64>, i64> {
        let mut m = HashMap::new();
        for w in 0..self.n_words as usize {
            *m.entry(generators::word_at(&self.text, &self.offs, w))
                .or_insert(0) += 1;
        }
        m
    }
}

impl Benchmark for WordCount {
    fn name(&self) -> &'static str {
        "word_count"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_int_array("text", &self.text)?;
        vm.set_global_int_array("offs", &self.offs)?;
        vm.set_global_int("n_words", self.n_words)?;
        vm.set_global_int("cap", self.cap)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let reference = self.reference_counts();
        let distinct = vm
            .read_global_int_array("distinct")
            .map_err(|e| e.to_string())?[0];
        if distinct != reference.len() as i64 {
            return Err(format!(
                "distinct words: got {distinct}, expected {}",
                reference.len()
            ));
        }
        // Rebuild the merged table host-side and compare every count.
        let fkeys = vm
            .read_global_int_array("fkeys")
            .map_err(|e| e.to_string())?;
        let fcounts = vm
            .read_global_int_array("fcounts")
            .map_err(|e| e.to_string())?;
        let mut total = 0i64;
        for (slot, &k) in fkeys.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let word = generators::word_at(&self.text, &self.offs, (k - 1) as usize);
            let expected = reference.get(&word).copied().unwrap_or(0);
            if fcounts[slot] != expected {
                return Err(format!(
                    "word {:?}: got {}, expected {expected}",
                    String::from_utf8_lossy(&word.iter().map(|b| *b as u8).collect::<Vec<_>>()),
                    fcounts[slot]
                ));
            }
            total += fcounts[slot];
        }
        if total != self.n_words {
            return Err(format!("counts sum to {total}, expected {}", self.n_words));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn word_count_verifies() {
        let b = WordCount::new(Scale::Small, 8);
        run_and_verify(&b, CostModel::native()).unwrap();
    }

    #[test]
    fn reference_has_duplicates_to_exercise_bumping() {
        let b = WordCount::new(Scale::Small, 8);
        let reference = b.reference_counts();
        assert!(
            (reference.len() as i64) < b.n_words,
            "corpus must contain duplicates"
        );
        assert!(reference.values().any(|&c| c > 1));
    }
}
