//! Phoenix `kmeans`: iterative k-means clustering. Each iteration spawns
//! workers for the assignment phase (distance function per point×cluster —
//! call-dense), then the main thread reduces the per-thread partial sums
//! into new centroids, exactly like the original's map-reduce rounds.

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix kmeans, Mini-C port.
global px: [float];        // n*d point coordinates
global n: int;
global d: int;
global k: int;
global iters: int;
global nthreads: int;
global centroids: [float]; // k*d
global assign: [int];      // n
global psums: [[float]];   // per-thread k*d partial sums
global pcounts: [[int]];   // per-thread k counts

fn dist2(p: int, c: int) -> float {
    let s: float = 0.0;
    let po: int = p * d;
    let co: int = c * d;
    for (let i: int = 0; i < d; i = i + 1) {
        let diff: float = px[po + i] - centroids[co + i];
        s = s + diff * diff;
    }
    return s;
}

fn best_cluster(p: int) -> int {
    let best: int = 0;
    let bestd: float = dist2(p, 0);
    for (let c: int = 1; c < k; c = c + 1) {
        let dd: float = dist2(p, c);
        if (dd < bestd) { bestd = dd; best = c; }
    }
    return best;
}

fn assign_worker(id: int) -> int {
    let per: int = (n + nthreads - 1) / nthreads;
    let start: int = id * per;
    let end: int = start + per;
    if (end > n) { end = n; }
    let sums: [float] = psums[id];
    let counts: [int] = pcounts[id];
    let moved: int = 0;
    for (let p: int = start; p < end; p = p + 1) {
        let c: int = best_cluster(p);
        if (c != assign[p]) { moved = moved + 1; }
        assign[p] = c;
        counts[c] = counts[c] + 1;
        for (let i: int = 0; i < d; i = i + 1) {
            sums[c * d + i] = sums[c * d + i] + px[p * d + i];
        }
    }
    return moved;
}

fn update_centroids() -> int {
    for (let c: int = 0; c < k; c = c + 1) {
        let count: int = 0;
        for (let t: int = 0; t < nthreads; t = t + 1) {
            count = count + pcounts[t][c];
        }
        if (count > 0) {
            for (let i: int = 0; i < d; i = i + 1) {
                let s: float = 0.0;
                for (let t: int = 0; t < nthreads; t = t + 1) {
                    s = s + psums[t][c * d + i];
                }
                centroids[c * d + i] = s / itof(count);
            }
        }
    }
    return 0;
}

fn clear_partials() -> int {
    for (let t: int = 0; t < nthreads; t = t + 1) {
        let sums: [float] = psums[t];
        let counts: [int] = pcounts[t];
        for (let i: int = 0; i < k * d; i = i + 1) { sums[i] = 0.0; }
        for (let c: int = 0; c < k; c = c + 1) { counts[c] = 0; }
    }
    return 0;
}

fn main() -> int {
    assign = alloc(n);
    for (let p: int = 0; p < n; p = p + 1) { assign[p] = -1; }
    psums = alloc(nthreads);
    pcounts = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) {
        psums[t] = alloc(k * d);
        pcounts[t] = alloc(k);
    }
    let tids: [int] = alloc(nthreads);
    for (let it: int = 0; it < iters; it = it + 1) {
        clear_partials();
        for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(assign_worker, t); }
        let moved: int = 0;
        for (let t: int = 0; t < nthreads; t = t + 1) { moved = moved + join(tids[t]); }
        update_centroids();
        if (moved == 0) { break; }
    }
    return 0;
}
";

/// The k-means benchmark instance.
#[derive(Debug, Clone)]
pub struct KMeans {
    px: Vec<f64>,
    n: i64,
    d: i64,
    k: i64,
    iters: i64,
    init_centroids: Vec<f64>,
}

impl KMeans {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> KMeans {
        let (n, d, k, iters) = match scale {
            Scale::Small => (300, 3, 4, 4),
            Scale::Full => (2_200, 4, 5, 8),
        };
        let px = generators::floats(seed, (n * d) as usize, 0.0, 100.0);
        // Initial centroids: the first k points (deterministic).
        let init_centroids = px[..(k * d) as usize].to_vec();
        KMeans {
            px,
            n,
            d,
            k,
            iters,
            init_centroids,
        }
    }

    /// Rust reference implementation mirroring the Mini-C algorithm
    /// (same arithmetic order per thread chunk, so results match exactly up
    /// to f64 associativity which we avoid by chunking identically).
    #[allow(clippy::needless_range_loop)] // mirrors the Mini-C loops 1:1
    fn reference(&self) -> (Vec<i64>, Vec<f64>) {
        let (n, d, k) = (self.n as usize, self.d as usize, self.k as usize);
        let nthreads = NTHREADS as usize;
        let mut centroids = self.init_centroids.clone();
        let mut assign = vec![-1i64; n];
        for _ in 0..self.iters {
            let mut psums = vec![vec![0.0f64; k * d]; nthreads];
            let mut pcounts = vec![vec![0i64; k]; nthreads];
            let mut moved = 0;
            let per = n.div_ceil(nthreads);
            for t in 0..nthreads {
                let start = t * per;
                let end = (start + per).min(n);
                for p in start..end {
                    let mut best = 0usize;
                    let mut bestd = f64::INFINITY;
                    for c in 0..k {
                        let mut s = 0.0;
                        for i in 0..d {
                            let diff = self.px[p * d + i] - centroids[c * d + i];
                            s += diff * diff;
                        }
                        if s < bestd {
                            bestd = s;
                            best = c;
                        }
                    }
                    if best as i64 != assign[p] {
                        moved += 1;
                    }
                    assign[p] = best as i64;
                    pcounts[t][best] += 1;
                    for i in 0..d {
                        psums[t][best * d + i] += self.px[p * d + i];
                    }
                }
            }
            for c in 0..k {
                let count: i64 = (0..nthreads).map(|t| pcounts[t][c]).sum();
                if count > 0 {
                    for i in 0..d {
                        let s: f64 = (0..nthreads).map(|t| psums[t][c * d + i]).sum();
                        centroids[c * d + i] = s / count as f64;
                    }
                }
            }
            if moved == 0 {
                break;
            }
        }
        (assign, centroids)
    }
}

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_float_array("px", &self.px)?;
        vm.set_global_float_array("centroids", &self.init_centroids)?;
        vm.set_global_int("n", self.n)?;
        vm.set_global_int("d", self.d)?;
        vm.set_global_int("k", self.k)?;
        vm.set_global_int("iters", self.iters)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let (ref_assign, ref_centroids) = self.reference();
        let assign = vm
            .read_global_int_array("assign")
            .map_err(|e| e.to_string())?;
        if assign != ref_assign {
            let bad = assign
                .iter()
                .zip(&ref_assign)
                .position(|(a, b)| a != b)
                .expect("some assignment differs");
            return Err(format!(
                "assignment of point {bad}: got {}, expected {}",
                assign[bad], ref_assign[bad]
            ));
        }
        let centroids = vm
            .read_global_float_array("centroids")
            .map_err(|e| e.to_string())?;
        for (i, (a, b)) in centroids.iter().zip(&ref_centroids).enumerate() {
            if (a - b).abs() > 1e-9 * b.abs().max(1.0) {
                return Err(format!("centroid coord {i}: got {a}, expected {b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn kmeans_verifies() {
        let b = KMeans::new(Scale::Small, 13);
        run_and_verify(&b, CostModel::native()).unwrap();
    }

    #[test]
    fn clustering_uses_every_cluster() {
        let b = KMeans::new(Scale::Small, 13);
        let (assign, _) = b.reference();
        let mut used = vec![false; b.k as usize];
        for a in assign {
            used[a as usize] = true;
        }
        assert!(used.iter().all(|u| *u), "degenerate clustering");
    }
}
