//! The seven Phoenix workloads.

pub mod histogram;
pub mod kmeans;
pub mod linear_regression;
pub mod matrix_mult;
pub mod pca;
pub mod string_match;
pub mod word_count;
