//! Phoenix `matrix_mult`: dense n×n integer matrix product, rows
//! distributed across workers, inner product in a helper function.

use crate::generators;
use crate::{Benchmark, Scale, NTHREADS};
use mcvm::{McError, Vm};

const SOURCE: &str = "
// Phoenix matrix_mult, Mini-C port.
global a: [int];
global b: [int];
global out: [int];
global n: int;
global nthreads: int;

fn dot(i: int, j: int) -> int {
    let s: int = 0;
    let row: int = i * n;
    for (let k: int = 0; k < n; k = k + 1) {
        s = s + a[row + k] * b[k * n + j];
    }
    return s;
}

fn do_row(i: int) -> int {
    let row: int = i * n;
    for (let j: int = 0; j < n; j = j + 1) {
        out[row + j] = dot(i, j);
    }
    return n;
}

fn worker(id: int) -> int {
    let done: int = 0;
    for (let i: int = id; i < n; i = i + nthreads) {
        done = done + do_row(i);
    }
    return done;
}

fn main() -> int {
    out = alloc(n * n);
    let tids: [int] = alloc(nthreads);
    for (let t: int = 0; t < nthreads; t = t + 1) { tids[t] = spawn(worker, t); }
    let total: int = 0;
    for (let t: int = 0; t < nthreads; t = t + 1) { total = total + join(tids[t]); }
    assert(total == n * n);
    return 0;
}
";

/// The matrix-multiply benchmark instance.
#[derive(Debug, Clone)]
pub struct MatrixMult {
    a: Vec<i64>,
    b: Vec<i64>,
    n: i64,
}

impl MatrixMult {
    /// Generate inputs for the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> MatrixMult {
        let n = match scale {
            Scale::Small => 16,
            Scale::Full => 48,
        };
        MatrixMult {
            a: generators::ints(seed, n * n, 100),
            b: generators::ints(seed ^ 0xbeef, n * n, 100),
            n: n as i64,
        }
    }

    fn expected(&self) -> Vec<i64> {
        let n = self.n as usize;
        let mut out = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0;
                for k in 0..n {
                    s += self.a[i * n + k] * self.b[k * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }
}

impl Benchmark for MatrixMult {
    fn name(&self) -> &'static str {
        "matrix_mult"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn setup(&self, vm: &mut Vm) -> Result<(), McError> {
        vm.set_global_int_array("a", &self.a)?;
        vm.set_global_int_array("b", &self.b)?;
        vm.set_global_int("n", self.n)?;
        vm.set_global_int("nthreads", NTHREADS)
    }

    fn verify(&self, vm: &Vm) -> Result<(), String> {
        let out = vm.read_global_int_array("out").map_err(|e| e.to_string())?;
        let expected = self.expected();
        if out != expected {
            let bad = out
                .iter()
                .zip(&expected)
                .position(|(x, y)| x != y)
                .expect("some cell differs");
            return Err(format!(
                "cell {bad}: got {}, expected {}",
                out[bad], expected[bad]
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use tee_sim::CostModel;

    #[test]
    fn matrix_mult_verifies() {
        let b = MatrixMult::new(Scale::Small, 4);
        run_and_verify(&b, CostModel::native()).unwrap();
    }

    #[test]
    fn identity_multiplication_sanity() {
        // Hand-check one cell of the reference implementation.
        let m = MatrixMult {
            a: vec![1, 2, 3, 4],
            b: vec![5, 6, 7, 8],
            n: 2,
        };
        assert_eq!(m.expected(), vec![19, 22, 43, 50]);
    }
}
