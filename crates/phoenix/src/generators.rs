//! Seeded input generators shared by the workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform integers in `[0, bound)`.
pub fn ints(seed: u64, n: usize, bound: i64) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// Uniform floats in `[lo, hi)`.
pub fn floats(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// A corpus of lowercase words with the given count and length range,
/// returned as (concatenated bytes, offsets with a final sentinel).
///
/// A fraction of the words is drawn from a small repeated vocabulary so
/// hash tables see realistic collision/duplication behaviour.
pub fn words(seed: u64, count: usize, min_len: usize, max_len: usize) -> (Vec<i64>, Vec<i64>) {
    let mut r = rng(seed);
    let vocab: Vec<Vec<u8>> = (0..32)
        .map(|_| random_word(&mut r, min_len, max_len))
        .collect();
    let mut bytes = Vec::new();
    let mut offs = Vec::with_capacity(count + 1);
    for _ in 0..count {
        offs.push(bytes.len() as i64);
        if r.gen_bool(0.5) {
            let w = &vocab[r.gen_range(0..vocab.len())];
            bytes.extend(w.iter().map(|b| i64::from(*b)));
        } else {
            let w = random_word(&mut r, min_len, max_len);
            bytes.extend(w.iter().map(|b| i64::from(*b)));
        }
    }
    offs.push(bytes.len() as i64);
    (bytes, offs)
}

fn random_word(r: &mut StdRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = r.gen_range(min_len..=max_len);
    (0..len).map(|_| r.gen_range(b'a'..=b'z')).collect()
}

/// Slice word `i` out of a `(bytes, offs)` corpus.
pub fn word_at(bytes: &[i64], offs: &[i64], i: usize) -> Vec<i64> {
    bytes[offs[i] as usize..offs[i + 1] as usize].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(ints(5, 10, 100), ints(5, 10, 100));
        assert_ne!(ints(5, 10, 100), ints(6, 10, 100));
        assert_eq!(floats(5, 4, 0.0, 1.0), floats(5, 4, 0.0, 1.0));
    }

    #[test]
    fn ints_respect_bound() {
        assert!(ints(1, 1000, 256).iter().all(|v| (0..256).contains(v)));
    }

    #[test]
    fn words_have_consistent_offsets() {
        let (bytes, offs) = words(3, 100, 2, 8);
        assert_eq!(offs.len(), 101);
        assert_eq!(*offs.last().unwrap(), bytes.len() as i64);
        for i in 0..100 {
            let w = word_at(&bytes, &offs, i);
            assert!((2..=8).contains(&w.len()));
            assert!(w.iter().all(|b| (97..=122).contains(b)));
        }
    }

    #[test]
    fn vocabulary_produces_duplicates() {
        let (bytes, offs) = words(3, 500, 2, 8);
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for i in 0..500 {
            if !seen.insert(word_at(&bytes, &offs, i)) {
                dups += 1;
            }
        }
        assert!(dups > 50, "expected many duplicate words, got {dups}");
    }
}
