//! Selective code profiling (paper §II-C).
//!
//! By restricting which functions the hooks record, the developer reduces
//! both the log size and the probe overhead. The filter operates on
//! call/return target addresses, so it costs one hash lookup on the hot
//! path and nothing when absent.

use std::collections::HashSet;

use mcvm::DebugInfo;

/// Whether the address set is a whitelist or a blacklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterMode {
    Include,
    Exclude,
}

/// A selective-profiling filter over function entry addresses.
#[derive(Debug, Clone)]
pub struct SelectiveFilter {
    mode: FilterMode,
    addrs: HashSet<u64>,
}

impl SelectiveFilter {
    /// Record only events whose target is in `addrs`.
    pub fn include<I: IntoIterator<Item = u64>>(addrs: I) -> SelectiveFilter {
        SelectiveFilter {
            mode: FilterMode::Include,
            addrs: addrs.into_iter().collect(),
        }
    }

    /// Record everything except events whose target is in `addrs` — the
    /// `no_instrument`-at-runtime variant.
    pub fn exclude<I: IntoIterator<Item = u64>>(addrs: I) -> SelectiveFilter {
        SelectiveFilter {
            mode: FilterMode::Exclude,
            addrs: addrs.into_iter().collect(),
        }
    }

    /// Build an include filter from function names, resolved against the
    /// program's debug info. Unknown names are ignored.
    pub fn include_names(debug: &DebugInfo, names: &[&str]) -> SelectiveFilter {
        SelectiveFilter::include(
            debug
                .functions()
                .iter()
                .filter(|f| names.contains(&f.name.as_str()))
                .map(|f| f.base_addr),
        )
    }

    /// Build an exclude filter from function names.
    pub fn exclude_names(debug: &DebugInfo, names: &[&str]) -> SelectiveFilter {
        SelectiveFilter::exclude(
            debug
                .functions()
                .iter()
                .filter(|f| names.contains(&f.name.as_str()))
                .map(|f| f.base_addr),
        )
    }

    /// Whether an event targeting `addr` should be recorded.
    pub fn allows(&self, addr: u64) -> bool {
        match self.mode {
            FilterMode::Include => self.addrs.contains(&addr),
            FilterMode::Exclude => !self.addrs.contains(&addr),
        }
    }

    /// Number of addresses in the filter set.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the filter set is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn include_allows_only_listed() {
        let f = SelectiveFilter::include([10, 20]);
        assert!(f.allows(10));
        assert!(f.allows(20));
        assert!(!f.allows(30));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn exclude_allows_everything_else() {
        let f = SelectiveFilter::exclude([10]);
        assert!(!f.allows(10));
        assert!(f.allows(11));
    }

    #[test]
    fn name_resolution_against_debug_info() {
        let debug = DebugInfo::from_functions([("main", 4, 1), ("hot", 4, 5), ("cold", 4, 9)]);
        let f = SelectiveFilter::include_names(&debug, &["hot", "missing"]);
        assert_eq!(f.len(), 1);
        assert!(f.allows(debug.entry_addr(1)));
        assert!(!f.allows(debug.entry_addr(0)));
        let g = SelectiveFilter::exclude_names(&debug, &["cold"]);
        assert!(g.allows(debug.entry_addr(0)));
        assert!(!g.allows(debug.entry_addr(2)));
    }

    #[test]
    fn empty_include_records_nothing() {
        let f = SelectiveFilter::include([]);
        assert!(f.is_empty());
        assert!(!f.allows(1));
    }
}
