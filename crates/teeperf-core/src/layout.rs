//! The shared-memory log format of TEE-Perf (paper Figure 2), extended
//! with the continuous-profiling words used by `teeperf-live`.
//!
//! ## Header (104 bytes, thirteen 64-bit words)
//!
//! | word | offset | contents |
//! |------|--------|----------|
//! | 0 | 0  | control: bits 0–15 flags (bit 0 = active, bit 1 = trace calls, bit 2 = trace returns, bit 3 = epoch rotation in progress), bit 16 = multithread, bits 17–31 = version, bits 32–55 = writers in flight |
//! | 1 | 8  | process id |
//! | 2 | 16 | log size (maximum number of entries) |
//! | 3 | 24 | tail: index of the next entry to write (fetch-and-add) |
//! | 4 | 32 | address of the profiler anchor function (relocation offset) |
//! | 5 | 40 | shared-memory mapping address inside the enclave |
//! | 6 | 48 | the software counter word (incremented by the host thread) |
//! | 7 | 56 | epoch: number of completed drain rotations |
//! | 8 | 64 | entries dropped in completed epochs (cumulative) |
//! | 9 | 72 | integrity magic ([`LOG_MAGIC`], written once at init) |
//! | 10 | 80 | batch-abandoned slots in completed epochs (cumulative) |
//! | 11 | 88 | current-epoch over-capacity batch hand-backs (reset each rotation) |
//! | 12 | 96 | fidelity regime word (see [`crate::fidelity`]): lo32 = regime epoch, hi32 = tag + log2(N) + check byte; written only by the drainer, read by writers |
//!
//! The control word is the only mutable-while-running word besides the
//! tail, the counter, and the two live words; it is read and written
//! atomically so tracing can be toggled mid-run without a critical section
//! (§II-B). The version is written once and never changes. Words 7–8 stay
//! zero in batch mode; a live drainer uses them to rotate the log under
//! concurrent writers. The rotation handshake (flag bit 3 + the
//! writers-in-flight count) lives entirely in the control word on purpose:
//! read-modify-writes on a single atomic word have one total modification
//! order, so a writer that announced itself before the drainer set the
//! rotating bit is always observed by the drainer's quiesce loop — a
//! two-word handshake would allow the classic store-buffering reordering
//! where each side misses the other's update. Word 8 accumulates overflow
//! drops across rotations so nothing is lost silently.
//!
//! ## Entry (24 bytes, three words)
//!
//! | word | contents |
//! |------|----------|
//! | 0 | bit 63 = call(1)/return(0), bits 0–62 = counter value |
//! | 1 | call/return target instruction address |
//! | 2 | thread id |

/// Current version of the log structure. Version 2 grew the header from 64
/// to 96 bytes (epoch, writers-in-flight, and cumulative-dropped words);
/// version 3 grew it to 104 bytes (the fidelity regime word).
pub const LOG_VERSION: u16 = 3;

/// Header size in bytes.
pub const HEADER_BYTES: u64 = 104;
/// Entry size in bytes.
pub const ENTRY_BYTES: u64 = 24;

/// Byte offset of the control word.
pub const OFF_CONTROL: u64 = 0;
/// Byte offset of the process-id word.
pub const OFF_PID: u64 = 8;
/// Byte offset of the log-size word.
pub const OFF_SIZE: u64 = 16;
/// Byte offset of the tail-index word.
pub const OFF_TAIL: u64 = 24;
/// Byte offset of the profiler-anchor word.
pub const OFF_ANCHOR: u64 = 32;
/// Byte offset of the shared-memory address word.
pub const OFF_SHM_ADDR: u64 = 40;
/// Byte offset of the software-counter word.
pub const OFF_COUNTER: u64 = 48;
/// Byte offset of the epoch word (completed drain rotations).
pub const OFF_EPOCH: u64 = 56;
/// Byte offset of the cumulative-dropped word (overflow across epochs).
pub const OFF_DROPPED: u64 = 64;
/// Byte offset of the integrity-magic word.
pub const OFF_MAGIC: u64 = 72;
/// Byte offset of the cumulative-abandoned word: batch-reserved slots that
/// were never published (in-capacity holes skipped by the drain, plus
/// over-capacity hand-backs), accumulated across completed epochs. These
/// are *not* drops — the events were never attempted into those slots.
pub const OFF_ABANDONED: u64 = 80;
/// Byte offset of the current-epoch hand-back word: over-capacity slots a
/// batch reservation claimed past the end of the log and immediately gave
/// back (only one drop ticket per failing append is kept in the tail
/// overflow). Rotation folds this into [`OFF_ABANDONED`] and resets it.
pub const OFF_ABANDONED_EPOCH: u64 = 88;
/// Byte offset of the fidelity regime word. The drainer is the sole writer
/// (one new value per publication, always a single atomic store); writers
/// read it to learn the current admission regime. The all-zero word is the
/// valid encoding of `Full` at regime epoch 0, so freshly zeroed regions
/// and version-2 logs decode as full fidelity. See [`crate::fidelity`].
pub const OFF_REGIME: u64 = 96;

/// The header integrity word: `"TPERFLOG"` as a little-endian u64. Written
/// once at init and never changed; a reader that finds anything else knows
/// the header was corrupted (or the region was never initialized) and must
/// not trust any other header word.
pub const LOG_MAGIC: u64 = u64::from_le_bytes(*b"TPERFLOG");

/// Control-word bit: measurement is active.
pub const FLAG_ACTIVE: u64 = 1 << 0;
/// Control-word bit: record call events.
pub const FLAG_TRACE_CALLS: u64 = 1 << 1;
/// Control-word bit: record return events.
pub const FLAG_TRACE_RETURNS: u64 = 1 << 2;
/// Control-word bit: an epoch rotation is in progress; writers must back
/// off until the drainer clears it (never set in batch mode).
pub const FLAG_ROTATING: u64 = 1 << 3;
/// Control word: one writer in flight (added/subtracted to announce).
pub const WRITER_ONE: u64 = 1 << 32;
/// Control word: mask of the writers-in-flight count (bits 32–55).
pub const WRITERS_MASK: u64 = 0xff_ffff << 32;
/// Control-word bit: log contains entries from multiple threads.
pub const FLAG_MULTITHREAD: u64 = 1 << 16;
const VERSION_SHIFT: u32 = 17;
const VERSION_MASK: u64 = 0x7fff;

/// The reserved "no process" pid. A correctly initialized log always
/// stamps the recording process's real id into the pid word; a session
/// registry keys its sources by that word and rejects `PID_UNSET` (a zero
/// pid means the header was never initialized, and two such logs would
/// collide on the registry key).
pub const PID_UNSET: u64 = 0;

/// Entry word 0: the call/return discriminator bit.
pub const ENTRY_KIND_BIT: u64 = 1 << 63;
/// Entry word 0: mask of the counter-value bits.
pub const ENTRY_COUNTER_MASK: u64 = ENTRY_KIND_BIT - 1;

/// Whether a log entry records a call (function entry) or a return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A function was entered.
    Call,
    /// A function returned.
    Return,
}

impl EventKind {
    /// `true` for [`EventKind::Call`].
    pub fn is_call(self) -> bool {
        self == EventKind::Call
    }
}

/// A decoded log header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeader {
    /// Measurement active bit.
    pub active: bool,
    /// Record call events.
    pub trace_calls: bool,
    /// Record return events.
    pub trace_returns: bool,
    /// Multithreaded-log bit.
    pub multithread: bool,
    /// Log structure version.
    pub version: u16,
    /// Process id of the profiled application.
    pub pid: u64,
    /// Maximum number of entries.
    pub size: u64,
    /// Next-write index (may exceed `size` if entries were dropped).
    pub tail: u64,
    /// Address of the profiler anchor function.
    pub anchor: u64,
    /// Shared-memory mapping address inside the enclave.
    pub shm_addr: u64,
}

impl LogHeader {
    /// Pack the control fields into the control word.
    pub fn pack_control(&self) -> u64 {
        let mut w = 0u64;
        if self.active {
            w |= FLAG_ACTIVE;
        }
        if self.trace_calls {
            w |= FLAG_TRACE_CALLS;
        }
        if self.trace_returns {
            w |= FLAG_TRACE_RETURNS;
        }
        if self.multithread {
            w |= FLAG_MULTITHREAD;
        }
        w |= (u64::from(self.version) & VERSION_MASK) << VERSION_SHIFT;
        w
    }

    /// Decode the control word into flag fields (pid/size/tail/anchor/
    /// shm_addr are separate words and must be filled by the caller).
    pub fn unpack_control(word: u64) -> (bool, bool, bool, bool, u16) {
        (
            word & FLAG_ACTIVE != 0,
            word & FLAG_TRACE_CALLS != 0,
            word & FLAG_TRACE_RETURNS != 0,
            word & FLAG_MULTITHREAD != 0,
            ((word >> VERSION_SHIFT) & VERSION_MASK) as u16,
        )
    }

    /// Number of entries actually present given the size bound.
    pub fn stored_entries(&self) -> u64 {
        self.tail.min(self.size)
    }

    /// Entries lost because the log filled up.
    pub fn dropped_entries(&self) -> u64 {
        self.tail.saturating_sub(self.size)
    }

    /// Whether the pid word carries a real process id (see [`PID_UNSET`]).
    pub fn has_valid_pid(&self) -> bool {
        self.pid != PID_UNSET
    }
}

/// A decoded log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogEntry {
    /// Call or return.
    pub kind: EventKind,
    /// Software-counter value at the event (63 bits).
    pub counter: u64,
    /// Call/return target instruction address.
    pub addr: u64,
    /// Id of the thread that executed the call/return.
    pub tid: u64,
}

/// What a per-entry validity check concluded about a stored record.
///
/// The live write protocol publishes word 0 (kind+counter) last, so a
/// crash-free log only ever contains `Valid` entries and `Unpublished`
/// holes (a slot reserved by a writer that died or was preempted before
/// publishing word 0 — the other words may hold the hole's own half-write
/// *or* stale data from a previous epoch, since rotation clears only the
/// publication word). A `Torn` record — word 0 published but the address
/// word still zero — can only come from a writer that violated the
/// publication order or from memory corruption; no real function lives at
/// address zero, so such records are detectable and salvageable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryValidity {
    /// A complete, plausible record.
    Valid,
    /// Word 0 zero: reserved but never published.
    Unpublished,
    /// Partially written: published-looking but with an impossible zero
    /// target address.
    Torn,
}

impl LogEntry {
    /// Classify this stored record (see [`EntryValidity`]). Consumers that
    /// salvage hostile or crashed logs skip everything non-[`EntryValidity::Valid`]
    /// and account for it instead of aborting the analysis.
    pub fn validity(&self) -> EntryValidity {
        // Word 0 packs the kind bit and the counter; the writer publishes
        // it last, so word 0 == 0 means "never published" no matter what
        // the other words hold — a slot reused after rotation keeps its
        // stale addr/tid, and trusting them would resurrect a dead record.
        if self.counter == 0 && self.kind == EventKind::Return {
            EntryValidity::Unpublished
        } else if self.addr == 0 {
            EntryValidity::Torn
        } else {
            EntryValidity::Valid
        }
    }

    /// Pack into the three words of the on-log representation.
    pub fn pack(&self) -> [u64; 3] {
        let mut w0 = self.counter & ENTRY_COUNTER_MASK;
        if self.kind == EventKind::Call {
            w0 |= ENTRY_KIND_BIT;
        }
        [w0, self.addr, self.tid]
    }

    /// Decode from the three on-log words.
    pub fn unpack(words: [u64; 3]) -> LogEntry {
        LogEntry {
            kind: if words[0] & ENTRY_KIND_BIT != 0 {
                EventKind::Call
            } else {
                EventKind::Return
            },
            counter: words[0] & ENTRY_COUNTER_MASK,
            addr: words[1],
            tid: words[2],
        }
    }

    /// Byte offset of entry `index` within the shared region.
    pub fn offset_of(index: u64) -> u64 {
        HEADER_BYTES + index * ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entry_pack_unpack_basic() {
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 123_456,
            addr: 0x40_0040,
            tid: 3,
        };
        assert_eq!(LogEntry::unpack(e.pack()), e);
        let r = LogEntry {
            kind: EventKind::Return,
            ..e
        };
        assert_eq!(LogEntry::unpack(r.pack()), r);
        assert_ne!(e.pack()[0], r.pack()[0]);
    }

    #[test]
    fn counter_top_bit_does_not_leak_into_kind() {
        let e = LogEntry {
            kind: EventKind::Return,
            counter: u64::MAX, // will be masked to 63 bits
            addr: 1,
            tid: 0,
        };
        let d = LogEntry::unpack(e.pack());
        assert_eq!(d.kind, EventKind::Return);
        assert_eq!(d.counter, ENTRY_COUNTER_MASK);
    }

    #[test]
    fn header_control_round_trip() {
        let h = LogHeader {
            active: true,
            trace_calls: true,
            trace_returns: false,
            multithread: true,
            version: 7,
            pid: 0,
            size: 0,
            tail: 0,
            anchor: 0,
            shm_addr: 0,
        };
        let (a, c, r, m, v) = LogHeader::unpack_control(h.pack_control());
        assert!(a && c && !r && m);
        assert_eq!(v, 7);
    }

    #[test]
    fn stored_and_dropped_entries() {
        let mut h = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 1,
            size: 100,
            tail: 42,
            anchor: 0,
            shm_addr: 0,
        };
        assert_eq!(h.stored_entries(), 42);
        assert_eq!(h.dropped_entries(), 0);
        h.tail = 130;
        assert_eq!(h.stored_entries(), 100);
        assert_eq!(h.dropped_entries(), 30);
    }

    #[test]
    fn validity_classifies_torn_and_unpublished_records() {
        let valid = LogEntry {
            kind: EventKind::Call,
            counter: 5,
            addr: 0x40_0000,
            tid: 0,
        };
        assert_eq!(valid.validity(), EntryValidity::Valid);
        let unpublished = LogEntry::unpack([0, 0, 0]);
        assert_eq!(unpublished.validity(), EntryValidity::Unpublished);
        // Published-looking (nonzero word 0) but address zero: torn.
        let torn = LogEntry {
            kind: EventKind::Call,
            counter: 9,
            addr: 0,
            tid: 3,
        };
        assert_eq!(torn.validity(), EntryValidity::Torn);
        // Even a Return with a counter is torn if the address is zero.
        let torn2 = LogEntry {
            kind: EventKind::Return,
            counter: 1,
            addr: 0,
            tid: 0,
        };
        assert_eq!(torn2.validity(), EntryValidity::Torn);
        // A hole in a slot reused after rotation: word 0 zero but stale
        // addr/tid from the previous epoch. Still never published.
        let stale_hole = LogEntry {
            kind: EventKind::Return,
            counter: 0,
            addr: 0x40_1234,
            tid: 7,
        };
        assert_eq!(stale_hole.validity(), EntryValidity::Unpublished);
    }

    #[test]
    fn magic_word_is_stable() {
        assert_eq!(LOG_MAGIC.to_le_bytes(), *b"TPERFLOG");
        assert_eq!(OFF_MAGIC % 8, 0);
        const { assert!(OFF_MAGIC < HEADER_BYTES) };
    }

    #[test]
    fn offsets_are_disjoint_words() {
        let offs = [
            OFF_CONTROL,
            OFF_PID,
            OFF_SIZE,
            OFF_TAIL,
            OFF_ANCHOR,
            OFF_SHM_ADDR,
            OFF_COUNTER,
            OFF_EPOCH,
            OFF_DROPPED,
            OFF_MAGIC,
            OFF_ABANDONED,
            OFF_ABANDONED_EPOCH,
            OFF_REGIME,
        ];
        for (i, a) in offs.iter().enumerate() {
            assert_eq!(a % 8, 0);
            assert!(*a < HEADER_BYTES);
            for b in &offs[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(LogEntry::offset_of(0), HEADER_BYTES);
        assert_eq!(LogEntry::offset_of(2), HEADER_BYTES + 2 * ENTRY_BYTES);
    }

    proptest! {
        #[test]
        fn prop_entry_round_trips(counter in 0u64..=ENTRY_COUNTER_MASK, addr: u64, tid: u64, call: bool) {
            let e = LogEntry {
                kind: if call { EventKind::Call } else { EventKind::Return },
                counter,
                addr,
                tid,
            };
            prop_assert_eq!(LogEntry::unpack(e.pack()), e);
        }

        #[test]
        fn prop_control_round_trips(active: bool, calls: bool, rets: bool, multi: bool, version in 0u16..0x7fff) {
            let h = LogHeader {
                active, trace_calls: calls, trace_returns: rets, multithread: multi, version,
                pid: 0, size: 0, tail: 0, anchor: 0, shm_addr: 0,
            };
            let (a, c, r, m, v) = LogHeader::unpack_control(h.pack_control());
            prop_assert_eq!((a, c, r, m, v), (active, calls, rets, multi, version));
        }
    }
}
