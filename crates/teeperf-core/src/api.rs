//! Native-Rust profiling API for workloads written in Rust.
//!
//! The paper profiles C/C++ applications by recompiling them; our RocksDB
//! and SPDK substrates are Rust crates, so they cannot pass through the
//! Mini-C instrumentation pass. This module plays the role of "compile with
//! `--include profiler.h` and link `-lprofiler`": a [`Profiler`] registers
//! function names, assigns them virtual addresses **identical to the
//! scheme the Mini-C debug info uses**, and routes enter/exit events
//! through the very same [`TeePerfHooks`] hot path — so the analyzer and
//! flame-graph stages downstream cannot tell the difference.

use std::collections::HashMap;

use mcvm::debuginfo::DebugInfo;
use tee_sim::Machine;

use crate::hooks::TeePerfHooks;
use crate::layout::EventKind;

/// Identifier of a registered function: its virtual entry address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(u64);

impl FunctionId {
    /// The function's virtual entry address.
    pub fn addr(self) -> u64 {
        self.0
    }
}

/// Virtual address of the `i`-th registered native function. Matches
/// [`DebugInfo::from_functions`] with one-instruction functions, so
/// [`Profiler::debug_info`] reproduces exactly these addresses.
fn native_addr(index: usize) -> u64 {
    tee_sim::ENCLAVE_TEXT_BASE + (index as u64) * 64
}

/// A method-level profiler for native Rust workloads.
pub struct Profiler {
    hooks: TeePerfHooks,
    names: Vec<String>,
    ids: HashMap<String, FunctionId>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("functions", &self.names.len())
            .field("hooks", &self.hooks)
            .finish()
    }
}

impl Profiler {
    /// Wrap recording hooks into a name-registering profiler.
    pub fn new(hooks: TeePerfHooks) -> Profiler {
        Profiler {
            hooks,
            names: Vec::new(),
            ids: HashMap::new(),
        }
    }

    /// Register (or look up) a function by name and get its id.
    pub fn register(&mut self, name: &str) -> FunctionId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = FunctionId(native_addr(self.names.len()));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Record a function entry.
    pub fn enter(&mut self, machine: &mut Machine, id: FunctionId, tid: u64) {
        self.hooks.record(machine, EventKind::Call, id.addr(), tid);
    }

    /// Record a function exit.
    pub fn exit(&mut self, machine: &mut Machine, id: FunctionId, tid: u64) {
        self.hooks
            .record(machine, EventKind::Return, id.addr(), tid);
    }

    /// Profile a scope: records entry, runs `body`, records exit.
    ///
    /// The body receives the profiler and machine back, so nested profiled
    /// scopes compose:
    ///
    /// ```
    /// use teeperf_core::{Profiler, Recorder, RecorderConfig};
    /// use tee_sim::{CostModel, Machine};
    ///
    /// let recorder = Recorder::new(&RecorderConfig::default());
    /// let mut machine = Machine::new(CostModel::native());
    /// recorder.attach(&mut machine);
    /// let mut profiler = Profiler::new(recorder.sim_hooks(machine.clock().clone()));
    /// let outer = profiler.register("outer");
    /// let inner = profiler.register("inner");
    /// let result = profiler.profile(&mut machine, outer, 0, |p, m| {
    ///     p.profile(m, inner, 0, |_, m| { m.compute(100); 7 })
    /// });
    /// assert_eq!(result, 7);
    /// assert_eq!(recorder.finish().entries.len(), 4);
    /// ```
    pub fn profile<R>(
        &mut self,
        machine: &mut Machine,
        id: FunctionId,
        tid: u64,
        body: impl FnOnce(&mut Profiler, &mut Machine) -> R,
    ) -> R {
        self.enter(machine, id, tid);
        let r = body(self, machine);
        self.exit(machine, id, tid);
        r
    }

    /// Synthesize debug info for the registered functions; addresses agree
    /// with the ids handed out by [`Profiler::register`].
    pub fn debug_info(&self) -> DebugInfo {
        DebugInfo::from_functions(self.names.iter().map(|n| (n.as_str(), 1, 0)))
    }

    /// The underlying hooks (e.g. to inspect recording statistics).
    pub fn hooks(&self) -> &TeePerfHooks {
        &self.hooks
    }
}

/// A cheaply clonable, optional probe over a shared [`Profiler`] — the
/// native-Rust stand-in for compiling a workload with
/// `-finstrument-functions`. Substrate crates wrap their method bodies in
/// [`Probe::scope`]; a disabled probe costs nothing.
#[derive(Clone, Default)]
pub struct Probe {
    profiler: Option<std::rc::Rc<std::cell::RefCell<Profiler>>>,
    tid: u64,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.profiler.is_some())
            .field("tid", &self.tid)
            .finish()
    }
}

impl Probe {
    /// A disabled probe: all scopes are free.
    pub fn disabled() -> Probe {
        Probe::default()
    }

    /// A probe feeding the given shared profiler, attributed to `tid`.
    pub fn new(profiler: std::rc::Rc<std::cell::RefCell<Profiler>>, tid: u64) -> Probe {
        Probe {
            profiler: Some(profiler),
            tid,
        }
    }

    /// The same profiler viewed as a different thread.
    pub fn for_thread(&self, tid: u64) -> Probe {
        Probe {
            profiler: self.profiler.clone(),
            tid,
        }
    }

    /// Whether profiling is live.
    pub fn enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The underlying shared profiler, if any.
    pub fn profiler(&self) -> Option<&std::rc::Rc<std::cell::RefCell<Profiler>>> {
        self.profiler.as_ref()
    }

    /// Record a function-entry event for `name`.
    pub fn enter(&self, machine: &mut Machine, name: &str) {
        if let Some(p) = &self.profiler {
            let mut p = p.borrow_mut();
            let id = p.register(name);
            p.enter(machine, id, self.tid);
        }
    }

    /// Record a function-exit event for `name`.
    pub fn exit(&self, machine: &mut Machine, name: &str) {
        if let Some(p) = &self.profiler {
            let mut p = p.borrow_mut();
            let id = p.register(name);
            p.exit(machine, id, self.tid);
        }
    }

    /// Run `body` inside an enter/exit pair for `name`.
    pub fn scope<R>(
        &self,
        machine: &mut Machine,
        name: &str,
        body: impl FnOnce(&mut Machine) -> R,
    ) -> R {
        self.enter(machine, name);
        let r = body(machine);
        self.exit(machine, name);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};
    use tee_sim::CostModel;

    fn setup() -> (Recorder, Machine, Profiler) {
        let r = Recorder::new(&RecorderConfig {
            max_entries: 64,
            ..RecorderConfig::default()
        });
        let mut machine = Machine::new(CostModel::sgx_v1());
        r.attach(&mut machine);
        machine.ecall();
        let p = Profiler::new(r.sim_hooks(machine.clock().clone()));
        (r, machine, p)
    }

    #[test]
    fn register_is_idempotent_and_ordered() {
        let (_r, _m, mut p) = setup();
        let a = p.register("alpha");
        let b = p.register("beta");
        assert_ne!(a, b);
        assert_eq!(p.register("alpha"), a);
        assert_eq!(a.addr(), tee_sim::ENCLAVE_TEXT_BASE);
        assert_eq!(b.addr(), tee_sim::ENCLAVE_TEXT_BASE + 64);
    }

    #[test]
    fn ids_agree_with_generated_debug_info() {
        let (_r, _m, mut p) = setup();
        let ids = ["f", "g", "h"].map(|n| p.register(n));
        let debug = p.debug_info();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(debug.entry_addr(i as u16), id.addr());
            assert_eq!(
                debug.function_at(id.addr()).unwrap().name,
                ["f", "g", "h"][i]
            );
        }
    }

    #[test]
    fn profile_scope_emits_balanced_events() {
        let (r, mut m, mut p) = setup();
        let f = p.register("work");
        let out = p.profile(&mut m, f, 3, |_, m| {
            m.compute(500);
            "done"
        });
        assert_eq!(out, "done");
        let log = r.finish();
        assert_eq!(log.entries.len(), 2);
        assert!(log.entries[0].kind.is_call());
        assert!(!log.entries[1].kind.is_call());
        assert_eq!(log.entries[0].addr, f.addr());
        assert_eq!(log.entries[0].tid, 3);
        assert!(log.entries[1].counter - log.entries[0].counter >= 500 / 4);
    }

    #[test]
    fn nested_scopes_preserve_ordering() {
        let (r, mut m, mut p) = setup();
        let outer = p.register("outer");
        let inner = p.register("inner");
        p.profile(&mut m, outer, 0, |p, m| {
            p.profile(m, inner, 0, |_, m| m.compute(10));
        });
        let log = r.finish();
        let seq: Vec<(bool, u64)> = log
            .entries
            .iter()
            .map(|e| (e.kind.is_call(), e.addr))
            .collect();
        assert_eq!(
            seq,
            vec![
                (true, outer.addr()),
                (true, inner.addr()),
                (false, inner.addr()),
                (false, outer.addr()),
            ]
        );
    }
}
