//! The recorder wrapper (paper Figure 3): the host-side process that sets
//! up the shared memory, initializes the log, provides the counter, and
//! drains the log to persistent storage after measurement.

use std::sync::Arc;

use tee_sim::{Clock, Machine, SharedMem, SHM_BASE};

use crate::counter::{CounterSource, SimCounter, SpinCounter};
use crate::file::LogFile;
use crate::hooks::TeePerfHooks;
use crate::log::{make_header, region_bytes, SharedLog};
use crate::select::SelectiveFilter;

/// Configuration of one recording session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Log capacity in entries (each 24 bytes of untrusted memory).
    pub max_entries: u64,
    /// Process id stamped into the header (defaults to the recording
    /// process's real id; a session registry keys its sources by this
    /// word, so simulated multi-process runs override it per "process").
    pub pid: u64,
    /// Whether the application is multithreaded (sets the header bit).
    pub multithread: bool,
    /// Address of the profiler anchor function (from debug info), used by
    /// the analyzer to compute the relocation offset.
    pub anchor: u64,
    /// Log slots claimed per shared tail fetch-and-add in the hooks this
    /// recorder builds (see [`crate::batch`]); `1` is the classic
    /// one-RMW-per-event path.
    pub batch_slots: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            max_entries: 1 << 20,
            pid: u64::from(std::process::id()),
            multithread: true,
            anchor: tee_sim::ENCLAVE_TEXT_BASE,
            batch_slots: 1,
        }
    }
}

/// A live recording session.
///
/// ```
/// use teeperf_core::{Recorder, RecorderConfig};
/// use tee_sim::{CostModel, Machine};
///
/// let recorder = Recorder::new(&RecorderConfig::default());
/// let mut machine = Machine::new(CostModel::sgx_v1());
/// recorder.attach(&mut machine);
/// let hooks = recorder.sim_hooks(machine.clock().clone());
/// // ... install `hooks` into the instrumented application, run it ...
/// let log_file = recorder.finish();
/// assert_eq!(log_file.entries.len(), 0);
/// ```
#[derive(Debug)]
pub struct Recorder {
    log: SharedLog,
    batch_slots: u64,
}

impl Recorder {
    /// Allocate the shared region and initialize the log to a known state.
    pub fn new(config: &RecorderConfig) -> Recorder {
        let shm = Arc::new(SharedMem::new(region_bytes(config.max_entries)));
        let log = SharedLog::init(
            shm,
            &make_header(
                config.pid,
                config.max_entries,
                config.multithread,
                config.anchor,
                SHM_BASE,
            ),
        );
        Recorder {
            log,
            batch_slots: config.batch_slots.max(1),
        }
    }

    /// The shared log (both sides of the mapping use the same handle).
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// Map the shared region into the measured application's machine — the
    /// paper's "the library maps the shared memory region into the measured
    /// application's address space".
    pub fn attach(&self, machine: &mut Machine) {
        machine.map_shared(Arc::clone(self.log.shm()));
    }

    /// Hooks timestamped by the deterministic simulated software counter
    /// (used for all figures).
    pub fn sim_hooks(&self, clock: Clock) -> TeePerfHooks {
        TeePerfHooks::new(self.log.clone(), Box::new(SimCounter::standard(clock)))
            .with_batch_slots(self.batch_slots)
    }

    /// Hooks with an explicit counter source and optional filter.
    pub fn hooks_with(
        &self,
        counter: Box<dyn CounterSource>,
        filter: Option<SelectiveFilter>,
    ) -> TeePerfHooks {
        let hooks = TeePerfHooks::new(self.log.clone(), counter).with_batch_slots(self.batch_slots);
        match filter {
            Some(f) => hooks.with_filter(f),
            None => hooks,
        }
    }

    /// Start a real spin-thread software counter over this log (sacrifices
    /// a host core until dropped). Non-deterministic; not used by figures.
    pub fn start_spin_counter(&self) -> SpinCounter {
        SpinCounter::start(self.log.clone())
    }

    /// Dynamically pause recording.
    pub fn pause(&self) {
        self.log.set_active(false);
    }

    /// Dynamically resume recording.
    pub fn resume(&self) {
        self.log.set_active(true);
    }

    /// Stop measurement and drain the log to a persistent [`LogFile`].
    ///
    /// In batched mode the stored range may end in unpublished holes (the
    /// remainder of each writer's last reserved run); those carry no event,
    /// so they are squeezed out and the header rewritten to the published
    /// count — the drop accounting is preserved in the rewritten tail.
    pub fn finish(&self) -> LogFile {
        self.log.set_active(false);
        if self.batch_slots <= 1 {
            return LogFile::new(self.log.header(), self.log.drain_entries());
        }
        let entries: Vec<_> = self
            .log
            .drain_entries()
            .into_iter()
            .filter(|e| e.validity() == crate::layout::EntryValidity::Valid)
            .collect();
        let mut h = self.log.header();
        let dropped = self.log.dropped_total();
        h.size = (entries.len() as u64).max(1);
        h.tail = entries.len() as u64 + dropped;
        LogFile::new(h, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EventKind;
    use tee_sim::CostModel;

    #[test]
    fn fresh_recorder_yields_empty_log() {
        let r = Recorder::new(&RecorderConfig::default());
        let f = r.finish();
        assert!(f.entries.is_empty());
        assert_eq!(f.header.pid, u64::from(std::process::id()));
        assert!(f.header.has_valid_pid(), "real pid must be stamped");
        assert!(!f.header.active, "finish must deactivate");
    }

    #[test]
    fn end_to_end_record_and_drain() {
        let config = RecorderConfig {
            max_entries: 16,
            pid: 9,
            ..RecorderConfig::default()
        };
        let r = Recorder::new(&config);
        let mut machine = Machine::new(CostModel::sgx_v1());
        r.attach(&mut machine);
        machine.ecall();
        let mut hooks = r.sim_hooks(machine.clock().clone());
        hooks.record(&mut machine, EventKind::Call, 0x40_0000, 0);
        machine.compute(1_000);
        hooks.record(&mut machine, EventKind::Return, 0x40_0000, 0);
        let f = r.finish();
        assert_eq!(f.entries.len(), 2);
        assert!(f.entries[1].counter > f.entries[0].counter);
        assert_eq!(f.header.pid, 9);
    }

    #[test]
    fn pause_resume_controls_recording() {
        let r = Recorder::new(&RecorderConfig {
            max_entries: 16,
            ..RecorderConfig::default()
        });
        let mut machine = Machine::new(CostModel::sgx_v1());
        r.attach(&mut machine);
        machine.ecall();
        let mut hooks = r.sim_hooks(machine.clock().clone());
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        r.pause();
        hooks.record(&mut machine, EventKind::Call, 2, 0);
        r.resume();
        hooks.record(&mut machine, EventKind::Call, 3, 0);
        let f = r.finish();
        let addrs: Vec<u64> = f.entries.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![1, 3]);
    }

    #[test]
    fn batched_finish_squeezes_out_the_run_remainder() {
        let config = RecorderConfig {
            max_entries: 64,
            pid: 9,
            batch_slots: 8,
            ..RecorderConfig::default()
        };
        let r = Recorder::new(&config);
        let mut machine = Machine::new(CostModel::sgx_v1());
        r.attach(&mut machine);
        machine.ecall();
        let mut hooks = r.sim_hooks(machine.clock().clone());
        // 5 events into an 8-slot run: 3 reserved slots stay unpublished.
        for i in 0..5 {
            machine.compute(200);
            hooks.record(&mut machine, EventKind::Call, 0x40_0000 + i, 0);
        }
        let f = r.finish();
        assert_eq!(f.entries.len(), 5, "holes must not leak into the file");
        assert!(f
            .entries
            .iter()
            .all(|e| e.validity() == crate::layout::EntryValidity::Valid));
        assert_eq!(f.header.stored_entries(), 5);
        assert_eq!(f.header.dropped_entries(), 0);
    }

    #[test]
    fn spin_counter_feeds_hooks() {
        let r = Recorder::new(&RecorderConfig {
            max_entries: 8,
            ..RecorderConfig::default()
        });
        let mut machine = Machine::new(CostModel::native());
        r.attach(&mut machine);
        let counter = r.start_spin_counter();
        // Wait for the counter to move.
        while counter.read() < 100 {
            std::thread::yield_now();
        }
        let mut hooks = r.hooks_with(Box::new(counter), None);
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        let f = r.finish();
        assert_eq!(f.entries.len(), 1);
        assert!(f.entries[0].counter >= 100);
    }
}
