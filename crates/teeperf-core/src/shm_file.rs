//! File-backed shared-log transport: the cross-process form of the shared
//! log, written through ordinary file I/O.
//!
//! The in-process [`crate::log::SharedLog`] lives in a [`tee_sim::SharedMem`]
//! region that only threads of one process can share. To profile genuinely
//! separate OS processes without `unsafe` (no `mmap`), each writer process
//! materializes the *exact same* log layout — the 104-byte header of
//! [`crate::layout`] followed by 24-byte slots — in a regular file under
//! `/dev/shm` (tmpfs, so "file I/O" is still memory traffic) or any other
//! registration directory, and a [`FileShmSource`] in the daemon process
//! polls it through the standard [`EventSource`] contract.
//!
//! The publication discipline is the live protocol's, translated to
//! positioned writes:
//!
//! 1. **reserve** — bump the header tail word *first* (the on-disk
//!    equivalent of the fetch-add; persisted before any slot byte so a
//!    writer crash leaves an [`EntryValidity::Unpublished`] hole, never a
//!    phantom record);
//! 2. **write** — store the addr and tid words of the slot;
//! 3. **publish** — store word 0 (kind + counter) last.
//!
//! A reader therefore classifies slots with the same
//! [`EntryValidity`] rules as the live drain, and the salvage
//! accounting ([`SalvageReport`]) carries over unchanged: torn entries are
//! dropped and counted, holes are closed after a stall deadline, truncated
//! files are clamped and accounted, corrupt headers kill the source
//! instead of the daemon.
//!
//! Simplifications relative to the in-memory log, both forced by the
//! transport: there is exactly **one writer per file** (each process
//! registers its own log, keyed by pid — no cross-process tail CAS), and
//! there is **no epoch rotation** (rotation needs the writers-in-flight
//! handshake on the control word, which file I/O cannot do atomically;
//! instead the file is sized for the session and overflow is accounted via
//! the tail, exactly like a batch log). The fidelity regime word is also
//! not carried over this transport: the consumer opens the file read-only,
//! so [`FileShmSource`] keeps the [`EventSource`] regime defaults and a
//! file-backed session is always pinned to `Full` (zero-filled regions
//! decode as `Full` at regime epoch 0 by construction).
//!
//! # Registration protocol
//!
//! Writers never expose a half-initialized header: the log is created
//! under a dot-prefixed temporary name, fully initialized, then renamed to
//! `<pid>.tplog` — the rename is the registration. An optional `<pid>.sym`
//! sidecar (mcvm `DebugInfo` text) published the same way gives the
//! daemon symbol names; without it, addresses render as raw hex. A writer
//! that finishes cleanly clears the header's ACTIVE flag; one that is
//! killed leaves it set, which the consumer surfaces as a stalled source
//! for the registry watchdog to quarantine.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::faults::{SalvageReason, SalvageReport};
use crate::layout::{
    EntryValidity, LogEntry, LogHeader, ENTRY_BYTES, FLAG_ACTIVE, HEADER_BYTES, LOG_MAGIC,
    LOG_VERSION, OFF_CONTROL, OFF_DROPPED, OFF_MAGIC, OFF_PID, OFF_SIZE, OFF_TAIL, PID_UNSET,
};
use crate::source::{EventSource, SourceBatch};

/// File extension of a registered log (`<pid>.tplog`).
pub const LOG_EXT: &str = "tplog";
/// File extension of the optional debug-info sidecar (`<pid>.sym`).
pub const SYM_EXT: &str = "sym";

/// The preferred registration directory: tmpfs when the platform has it
/// mounted (so the "file" I/O is shared-memory traffic), else the system
/// temp dir.
pub fn default_shm_dir() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

/// Path of pid's registered log inside `dir`.
pub fn log_path(dir: &Path, pid: u64) -> PathBuf {
    dir.join(format!("{pid}.{LOG_EXT}"))
}

/// Path of pid's debug-info sidecar inside `dir`.
pub fn sym_path(dir: &Path, pid: u64) -> PathBuf {
    dir.join(format!("{pid}.{SYM_EXT}"))
}

/// Publish `contents` at `dir/<pid>.<ext>` atomically (temp name + rename),
/// so a scanner never observes a half-written file.
pub fn publish_sidecar(dir: &Path, pid: u64, ext: &str, contents: &str) -> io::Result<PathBuf> {
    let tmp = dir.join(format!(".{pid}.{ext}.tmp"));
    std::fs::write(&tmp, contents)?;
    let dest = dir.join(format!("{pid}.{ext}"));
    std::fs::rename(&tmp, &dest)?;
    Ok(dest)
}

fn read_word(file: &File, off: u64) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    file.read_exact_at(&mut buf, off)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_word(file: &File, off: u64, word: u64) -> io::Result<()> {
    file.write_all_at(&word.to_le_bytes(), off)
}

/// Why a log file could not be opened (or stopped being trusted).
#[derive(Debug)]
pub enum ShmFileError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The magic word is not `TPERFLOG` — not a log, or a destroyed one.
    BadMagic(u64),
    /// The header's version field does not match [`LOG_VERSION`].
    BadVersion(u16),
    /// The pid word is [`PID_UNSET`]; a registered log must identify its
    /// writer.
    NoPid,
    /// The file is smaller than a log header.
    TooSmall(u64),
    /// The declared capacity is zero (an empty log can hold nothing).
    ZeroCapacity,
}

impl fmt::Display for ShmFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmFileError::Io(e) => write!(f, "log file I/O failed: {e}"),
            ShmFileError::BadMagic(w) => write!(f, "bad log magic {w:#018x}"),
            ShmFileError::BadVersion(v) => {
                write!(f, "log version {v} (this build speaks {LOG_VERSION})")
            }
            ShmFileError::NoPid => write!(f, "log header has no pid"),
            ShmFileError::TooSmall(n) => {
                write!(
                    f,
                    "file is {n} bytes, smaller than a {HEADER_BYTES}-byte header"
                )
            }
            ShmFileError::ZeroCapacity => write!(f, "log declares zero capacity"),
        }
    }
}

impl From<io::Error> for ShmFileError {
    fn from(e: io::Error) -> ShmFileError {
        ShmFileError::Io(e)
    }
}

/// The producer half: one process's log file, written with the
/// reserve → write → publish discipline (see the module docs).
#[derive(Debug)]
pub struct FileShmWriter {
    file: File,
    path: PathBuf,
    size: u64,
    tail: u64,
}

impl FileShmWriter {
    /// Create and register a log for `header.pid` inside `dir`: the file
    /// is fully initialized under a temporary name and only then renamed
    /// to `<pid>.tplog`, so a directory scanner never attaches to a
    /// half-built header.
    ///
    /// # Errors
    /// Propagates file-system failures; rejects a header without a pid or
    /// without capacity (such a log could never be registered or drained).
    pub fn create(dir: &Path, header: &LogHeader) -> Result<FileShmWriter, ShmFileError> {
        if header.pid == PID_UNSET {
            return Err(ShmFileError::NoPid);
        }
        if header.size == 0 {
            return Err(ShmFileError::ZeroCapacity);
        }
        let tmp = dir.join(format!(".{}.{LOG_EXT}.tmp", header.pid));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.set_len(HEADER_BYTES + header.size * ENTRY_BYTES)?;
        write_word(&file, OFF_CONTROL, header.pack_control() | FLAG_ACTIVE)?;
        write_word(&file, OFF_PID, header.pid)?;
        write_word(&file, OFF_SIZE, header.size)?;
        write_word(&file, OFF_TAIL, 0)?;
        write_word(&file, crate::layout::OFF_ANCHOR, header.anchor)?;
        write_word(&file, crate::layout::OFF_SHM_ADDR, header.shm_addr)?;
        write_word(&file, crate::layout::OFF_COUNTER, 0)?;
        write_word(&file, crate::layout::OFF_EPOCH, 0)?;
        write_word(&file, OFF_DROPPED, 0)?;
        write_word(&file, OFF_MAGIC, LOG_MAGIC)?;
        file.sync_all()?;
        let path = log_path(dir, header.pid);
        std::fs::rename(&tmp, &path)?;
        Ok(FileShmWriter {
            file,
            path,
            size: header.size,
            tail: 0,
        })
    }

    /// Where the registered log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> u64 {
        self.size
    }

    /// Next-write index (beyond `capacity` once entries have been dropped).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Entries dropped on overflow so far.
    pub fn dropped(&self) -> u64 {
        self.tail.saturating_sub(self.size)
    }

    /// Reserve the next slot: bump the tail *on disk* before any slot
    /// byte, so a crash right here leaves an unpublished hole (the state
    /// the salvage rules expect), never a phantom entry. Returns the
    /// reserved index, or `None` on overflow (the bump still happened —
    /// overflow is accounted, not silent).
    fn reserve(&mut self) -> io::Result<Option<u64>> {
        let index = self.tail;
        self.tail += 1;
        write_word(&self.file, OFF_TAIL, self.tail)?;
        Ok((index < self.size).then_some(index))
    }

    /// Append one entry through the full reserve → write → publish path.
    /// Returns the slot index, or `None` if the log is full (the drop is
    /// visible to the consumer via the tail).
    ///
    /// # Errors
    /// Propagates file-system failures (disk full, file deleted under us).
    pub fn write(&mut self, entry: &LogEntry) -> io::Result<Option<u64>> {
        let Some(index) = self.reserve()? else {
            return Ok(None);
        };
        let off = LogEntry::offset_of(index);
        let words = entry.pack();
        write_word(&self.file, off + 8, words[1])?;
        write_word(&self.file, off + 16, words[2])?;
        write_word(&self.file, off, words[0])?;
        Ok(Some(index))
    }

    /// Reserve a slot and abandon it — the on-disk state of a writer that
    /// died between reserve and publish. Fault-injection entry point for
    /// the matrix tests; a correct writer never calls this.
    ///
    /// # Errors
    /// Propagates file-system failures.
    pub fn crash_after_reserve(&mut self) -> io::Result<()> {
        self.reserve()?;
        Ok(())
    }

    /// Publish word 0 of a slot while leaving its address word zero — the
    /// forbidden write order that produces a torn record. Fault-injection
    /// entry point for the matrix tests.
    ///
    /// # Errors
    /// Propagates file-system failures.
    pub fn write_torn(&mut self, entry: &LogEntry) -> io::Result<()> {
        if let Some(index) = self.reserve()? {
            let off = LogEntry::offset_of(index);
            write_word(&self.file, off, entry.pack()[0].max(1))?;
        }
        Ok(())
    }

    /// Overwrite the magic word — the state of a log destroyed by a buggy
    /// or hostile writer. Fault-injection entry point for the matrix tests.
    ///
    /// # Errors
    /// Propagates file-system failures.
    pub fn corrupt_header(&mut self) -> io::Result<()> {
        write_word(&self.file, OFF_MAGIC, 0xbad0_bad0_bad0_bad0)
    }

    /// Finish the session cleanly: clear the header's ACTIVE flag so the
    /// consumer knows no further entry will ever be published and can
    /// report the source exhausted.
    ///
    /// # Errors
    /// Propagates file-system failures.
    pub fn finish(&mut self) -> io::Result<()> {
        let control = read_word(&self.file, OFF_CONTROL)?;
        write_word(&self.file, OFF_CONTROL, control & !FLAG_ACTIVE)?;
        self.file.sync_all()
    }
}

/// How many consecutive pumps an unpublished hole may block the cursor
/// before the consumer closes it (skips the slot and accounts the drop).
/// File writers are real OS processes that may be descheduled mid-write;
/// the default matches [`crate::SourceResilience`]'s patience.
pub const DEFAULT_HOLE_PUMPS: u64 = 64;

/// The consumer half: an [`EventSource`] polling one registered log file.
/// At most one source should drain a given file (the cursor is local).
#[derive(Debug)]
pub struct FileShmSource {
    file: File,
    path: PathBuf,
    pid: u64,
    size: u64,
    cursor: u64,
    hole_pumps: u64,
    stalled: u64,
    writer_done: bool,
    dead: bool,
    dropped_seen: u64,
    truncated_at: Option<u64>,
    salvage: SalvageReport,
}

impl FileShmSource {
    /// Attach to a registered log file, verifying the header the same way
    /// [`crate::log::SharedLog::verify_header`] does: magic first (is this
    /// a log at all?), then version, then the capacity and pid sanity
    /// checks.
    ///
    /// # Errors
    /// Returns the first failed check; an unreadable or alien file must be
    /// rejected at attach time, not quarantined later.
    pub fn open(path: &Path) -> Result<FileShmSource, ShmFileError> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_BYTES {
            return Err(ShmFileError::TooSmall(len));
        }
        let magic = read_word(&file, OFF_MAGIC)?;
        if magic != LOG_MAGIC {
            return Err(ShmFileError::BadMagic(magic));
        }
        let control = read_word(&file, OFF_CONTROL)?;
        let (_, _, _, _, version) = LogHeader::unpack_control(control);
        if version != LOG_VERSION {
            return Err(ShmFileError::BadVersion(version));
        }
        let pid = read_word(&file, OFF_PID)?;
        if pid == PID_UNSET {
            return Err(ShmFileError::NoPid);
        }
        let size = read_word(&file, OFF_SIZE)?;
        if size == 0 {
            return Err(ShmFileError::ZeroCapacity);
        }
        Ok(FileShmSource {
            file,
            path: path.to_path_buf(),
            pid,
            size,
            cursor: 0,
            hole_pumps: DEFAULT_HOLE_PUMPS,
            stalled: 0,
            writer_done: false,
            dead: false,
            dropped_seen: 0,
            truncated_at: None,
            salvage: SalvageReport::default(),
        })
    }

    /// Override the hole-closing patience (tests use small values to
    /// exercise the recovery path in a handful of pumps).
    #[must_use]
    pub fn with_hole_pumps(mut self, pumps: u64) -> FileShmSource {
        self.hole_pumps = pumps;
        self
    }

    /// The file this source drains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Declared capacity in entries.
    pub fn capacity(&self) -> u64 {
        self.size
    }

    /// Whether the writer has cleared the header's ACTIVE flag (observed
    /// as of the last pump). A liveness prober uses this to distinguish
    /// "finished cleanly" from "stopped publishing".
    pub fn writer_finished(&self) -> bool {
        self.writer_done
    }

    /// Re-read and distrust-check the header. Returns the tail, or `None`
    /// after marking the source dead (corrupt or vanished header).
    fn reread_header(&mut self) -> Option<u64> {
        let go_dead = |s: &mut FileShmSource, reason: SalvageReason| {
            s.salvage.incident(reason);
            s.dead = true;
            None
        };
        let len = match self.file.metadata() {
            Ok(m) => m.len(),
            Err(_) => return go_dead(self, SalvageReason::CorruptHeader),
        };
        if len < HEADER_BYTES {
            return go_dead(self, SalvageReason::TruncatedFile);
        }
        let Ok(magic) = read_word(&self.file, OFF_MAGIC) else {
            return go_dead(self, SalvageReason::CorruptHeader);
        };
        if magic != LOG_MAGIC {
            return go_dead(self, SalvageReason::CorruptHeader);
        }
        let Ok(control) = read_word(&self.file, OFF_CONTROL) else {
            return go_dead(self, SalvageReason::CorruptHeader);
        };
        let (active, _, _, _, version) = LogHeader::unpack_control(control);
        if version != LOG_VERSION {
            return go_dead(self, SalvageReason::CorruptHeader);
        }
        self.writer_done = !active;
        let Ok(tail) = read_word(&self.file, OFF_TAIL) else {
            return go_dead(self, SalvageReason::CorruptHeader);
        };
        // Entries actually backed by bytes on disk. A file cut below what
        // the tail promises lost records: clamp, account them exactly
        // once, and stop trusting the file to ever grow them back.
        let on_disk = (len - HEADER_BYTES) / ENTRY_BYTES;
        let avail = tail.min(self.size);
        if avail > on_disk && self.truncated_at.is_none() {
            self.truncated_at = Some(on_disk);
            self.salvage.drop_n(
                SalvageReason::TruncatedFile,
                avail.saturating_sub(on_disk.max(self.cursor)),
            );
        }
        Some(tail)
    }

    /// Drain published entries from the cursor up to `limit`, applying the
    /// validity rules per slot. `close_holes` short-circuits the stall
    /// deadline (the final drain: nothing will ever publish them).
    fn poll_published(&mut self, limit: u64, close_holes: bool) -> Vec<LogEntry> {
        let mut out = Vec::new();
        while self.cursor < limit {
            let off = LogEntry::offset_of(self.cursor);
            let mut buf = [0u8; ENTRY_BYTES as usize];
            if self.file.read_exact_at(&mut buf, off).is_err() {
                // Bytes vanished mid-drain; the header re-read accounted
                // the loss (or will on the next pump) — stop here.
                break;
            }
            let words = [
                u64::from_le_bytes(buf[0..8].try_into().expect("8-byte chunk")),
                u64::from_le_bytes(buf[8..16].try_into().expect("8-byte chunk")),
                u64::from_le_bytes(buf[16..24].try_into().expect("8-byte chunk")),
            ];
            let entry = LogEntry::unpack(words);
            match entry.validity() {
                EntryValidity::Valid => {
                    self.stalled = 0;
                    self.cursor += 1;
                    self.salvage.kept += 1;
                    out.push(entry);
                }
                EntryValidity::Torn => {
                    // Published-looking but impossible: skip and account.
                    self.stalled = 0;
                    self.cursor += 1;
                    self.salvage.drop_n(SalvageReason::TornEntry, 1);
                }
                EntryValidity::Unpublished => {
                    // A reserved slot nobody published yet. Wait for the
                    // writer (bounded), then close the hole and move on —
                    // a dead writer must not wedge the cursor forever.
                    if close_holes || self.writer_done || self.stalled >= self.hole_pumps {
                        self.stalled = 0;
                        self.cursor += 1;
                        self.salvage.drop_n(SalvageReason::UnpublishedSlot, 1);
                    } else {
                        self.stalled += 1;
                        break;
                    }
                }
            }
        }
        out
    }

    fn step(&mut self, close_holes: bool) -> SourceBatch {
        if self.dead {
            return SourceBatch::default();
        }
        let Some(tail) = self.reread_header() else {
            return SourceBatch::default();
        };
        let mut limit = tail.min(self.size);
        if let Some(cut) = self.truncated_at {
            limit = limit.min(cut);
        }
        let entries = self.poll_published(limit, close_holes);
        if self.truncated_at.is_some() {
            // Everything salvageable below the cut is out; the file is no
            // longer a faithful log.
            self.dead = true;
        }
        // Overflow accounting: report each newly-observed drop exactly
        // once, on the batch where it became visible.
        let overflowed = tail.saturating_sub(self.size);
        let newly_dropped = overflowed.saturating_sub(self.dropped_seen);
        self.dropped_seen = overflowed;
        SourceBatch {
            entries,
            rotated: false,
            dropped: newly_dropped,
            epoch: 0,
        }
    }
}

impl EventSource for FileShmSource {
    fn pid(&self) -> u64 {
        self.pid
    }

    fn pump(&mut self) -> SourceBatch {
        self.step(false)
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        self.step(true)
    }

    fn dropped_total(&self) -> u64 {
        self.dropped_seen
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn is_exhausted(&self) -> bool {
        // Exhausted only when the writer declared itself done AND the
        // cursor has consumed everything it promised. A dead source is
        // not exhausted — it is quarantined by the watchdog instead.
        !self.dead && self.writer_done && self.cursor >= self.size.min(self.tail_cache())
    }

    fn salvage(&self) -> SalvageReport {
        self.salvage.clone()
    }

    fn is_dead(&self) -> bool {
        self.dead
    }
}

impl FileShmSource {
    /// Best-effort tail read for the exhaustion check (no state change;
    /// a read failure just means "not provably exhausted").
    fn tail_cache(&self) -> u64 {
        read_word(&self.file, OFF_TAIL).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EventKind;
    use crate::log::make_header;

    /// A unique scratch registration dir per test (removed on drop).
    struct ScratchDir(PathBuf);

    fn scratch(label: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("teeperf-shmfile-{}-{label}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn entry(counter: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr: 0x40_0000 + counter,
            tid: 0,
        }
    }

    fn header(pid: u64, size: u64) -> LogHeader {
        make_header(pid, size, true, 0, 0)
    }

    #[test]
    fn round_trips_entries_through_a_file() {
        let dir = scratch("roundtrip");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 16)).unwrap();
        for k in 1..=5 {
            assert!(w.write(&entry(k)).unwrap().is_some());
        }
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        assert_eq!(src.pid(), 7);
        let b = src.pump();
        assert_eq!(b.entries.len(), 5);
        assert_eq!(b.entries[0], entry(1));
        assert_eq!(b.dropped, 0);
        assert!(src.pump().entries.is_empty(), "no re-reads");
        assert!(!src.is_exhausted(), "writer still active");
        assert!(src.salvage().is_clean());
    }

    #[test]
    fn finish_makes_the_source_exhausted() {
        let dir = scratch("finish");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        w.finish().unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        let b = src.pump();
        assert_eq!(b.entries.len(), 1);
        assert!(src.is_exhausted());
        assert!(!src.is_dead());
    }

    #[test]
    fn overflow_is_accounted_exactly_once() {
        let dir = scratch("overflow");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 4)).unwrap();
        for k in 1..=7 {
            w.write(&entry(k)).unwrap();
        }
        assert_eq!(w.dropped(), 3);
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        let b = src.pump();
        assert_eq!(b.entries.len(), 4);
        assert_eq!(b.dropped, 3);
        assert_eq!(src.pump().dropped, 0, "drops reported once");
        assert_eq!(src.dropped_total(), 3);
    }

    #[test]
    fn unpublished_hole_blocks_then_closes() {
        let dir = scratch("hole");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        w.crash_after_reserve().unwrap();
        w.write(&entry(3)).unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7))
            .unwrap()
            .with_hole_pumps(2);
        assert_eq!(src.pump().entries, vec![entry(1)], "stops at the hole");
        assert!(src.pump().entries.is_empty(), "still waiting");
        let b = src.pump();
        assert_eq!(
            b.entries,
            vec![entry(3)],
            "deadline hit: hole closed, drain resumes"
        );
        assert_eq!(src.salvage().count(SalvageReason::UnpublishedSlot), 1);
    }

    #[test]
    fn writer_done_closes_holes_immediately() {
        let dir = scratch("donehole");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        w.crash_after_reserve().unwrap();
        w.write(&entry(3)).unwrap();
        w.finish().unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        let b = src.pump();
        assert_eq!(b.entries, vec![entry(1), entry(3)]);
        assert!(src.is_exhausted());
        assert_eq!(src.salvage().count(SalvageReason::UnpublishedSlot), 1);
    }

    #[test]
    fn torn_entry_is_dropped_and_counted() {
        let dir = scratch("torn");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        w.write_torn(&entry(2)).unwrap();
        w.write(&entry(3)).unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        let b = src.pump();
        assert_eq!(b.entries, vec![entry(1), entry(3)]);
        let s = src.salvage();
        assert_eq!(s.count(SalvageReason::TornEntry), 1);
        assert_eq!(s.kept, 2);
    }

    #[test]
    fn corrupt_header_kills_the_source_not_the_process() {
        let dir = scratch("corrupt");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        assert_eq!(src.pump().entries.len(), 1);
        w.corrupt_header().unwrap();
        let b = src.pump();
        assert!(b.entries.is_empty());
        assert!(src.is_dead());
        assert!(!src.is_exhausted());
        assert_eq!(src.salvage().count(SalvageReason::CorruptHeader), 1);
        // Dead means dead: pumps stay empty, no panic, no hang.
        assert!(src.pump().entries.is_empty());
    }

    #[test]
    fn truncation_mid_drain_is_clamped_and_accounted() {
        let dir = scratch("truncate");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 16)).unwrap();
        for k in 1..=10 {
            w.write(&entry(k)).unwrap();
        }
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        // Cut the file to 4 entries' worth between pumps.
        let keep = HEADER_BYTES + 4 * ENTRY_BYTES;
        OpenOptions::new()
            .write(true)
            .open(log_path(&dir.0, 7))
            .unwrap()
            .set_len(keep)
            .unwrap();
        let b = src.pump();
        assert_eq!(b.entries.len(), 4, "salvages the readable prefix");
        assert!(src.is_dead(), "a cut file is no longer a faithful log");
        assert_eq!(src.salvage().count(SalvageReason::TruncatedFile), 6);
    }

    #[test]
    fn truncation_below_header_goes_dead() {
        let dir = scratch("beheaded");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        w.write(&entry(1)).unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        OpenOptions::new()
            .write(true)
            .open(log_path(&dir.0, 7))
            .unwrap()
            .set_len(10)
            .unwrap();
        let b = src.pump();
        assert!(b.entries.is_empty());
        assert!(src.is_dead());
        assert_eq!(src.salvage().count(SalvageReason::TruncatedFile), 1);
    }

    #[test]
    fn open_rejects_alien_and_broken_files() {
        let dir = scratch("reject");
        std::fs::write(dir.0.join("9.tplog"), b"not a log").unwrap();
        assert!(matches!(
            FileShmSource::open(&dir.0.join("9.tplog")),
            Err(ShmFileError::TooSmall(_))
        ));
        std::fs::write(dir.0.join("10.tplog"), vec![0u8; 200]).unwrap();
        assert!(matches!(
            FileShmSource::open(&dir.0.join("10.tplog")),
            Err(ShmFileError::BadMagic(0))
        ));
        assert!(matches!(
            FileShmSource::open(&dir.0.join("missing.tplog")),
            Err(ShmFileError::Io(_))
        ));
    }

    #[test]
    fn create_rejects_unkeyed_or_empty_logs() {
        let dir = scratch("badcreate");
        assert!(matches!(
            FileShmWriter::create(&dir.0, &header(PID_UNSET, 8)),
            Err(ShmFileError::NoPid)
        ));
        assert!(matches!(
            FileShmWriter::create(&dir.0, &header(7, 0)),
            Err(ShmFileError::ZeroCapacity)
        ));
    }

    #[test]
    fn registration_is_atomic_no_temp_name_visible() {
        let dir = scratch("atomic");
        let _w = FileShmWriter::create(&dir.0, &header(7, 8)).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["7.tplog".to_string()]);
    }

    #[test]
    fn sidecar_publish_is_atomic() {
        let dir = scratch("sidecar");
        let p = publish_sidecar(&dir.0, 7, SYM_EXT, "fn main 4 1\n").unwrap();
        assert_eq!(p, sym_path(&dir.0, 7));
        assert_eq!(std::fs::read_to_string(p).unwrap(), "fn main 4 1\n");
    }

    #[test]
    fn live_writes_are_visible_between_pumps() {
        let dir = scratch("live");
        let mut w = FileShmWriter::create(&dir.0, &header(7, 64)).unwrap();
        let mut src = FileShmSource::open(&log_path(&dir.0, 7)).unwrap();
        assert!(src.pump().entries.is_empty());
        w.write(&entry(1)).unwrap();
        assert_eq!(src.pump().entries.len(), 1);
        w.write(&entry(2)).unwrap();
        w.write(&entry(3)).unwrap();
        let b = src.drain_to_end();
        assert_eq!(b.entries.len(), 2);
    }
}
