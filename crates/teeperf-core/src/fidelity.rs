//! Fidelity regimes: the shared regime word and the writer-side gate.
//!
//! When the drain cannot keep up with the writers, dropping entries on the
//! floor silently corrupts the profile. Instead the live drainer publishes
//! a *fidelity regime* through a dedicated header word
//! ([`crate::layout::OFF_REGIME`]) and the writer-side [`FidelityGate`]
//! honours it: in `Sampled(N)` only one in `N` call/return *pairs* is
//! admitted (pair-coherent, so no unmatched events are fabricated), and in
//! `Quiescent` nothing is admitted at all. The drain-side profile scales
//! `Sampled` aggregates back up by `N` so windows report *estimated*
//! totals with a disclosed confidence tag instead of silently
//! undercounting.
//!
//! ## The regime word
//!
//! A single 64-bit header word, stored and loaded atomically. The drainer
//! is the only writer; each publication is one whole-word store, so a
//! reader can never observe a half-updated value through the protocol
//! itself — the check byte exists to salvage *corruption* (a hostile or
//! crashed producer scribbling on the header) and to make torn
//! lo32/hi32 recombination detectable to the model checker:
//!
//! ```text
//! bits  0..32   regime epoch (increments on every publication)
//! bits 32..40   tag: 0 = Full, 1 = Sampled, 2 = Quiescent
//! bits 40..48   log2(N) for Sampled (0 otherwise)
//! bits 48..56   reserved, must be zero
//! bits 56..64   check byte: XOR fold of the seven other bytes
//! ```
//!
//! The epoch lives in the opposite half from the tag + N on purpose: a
//! torn read that combines the low half of one publication with the high
//! half of another fabricates an `(N, epoch)` pair that was never
//! published, and the check byte (computed over the whole word) catches
//! the mix. The all-zero word is the *valid* encoding of `Full` at regime
//! epoch 0, so freshly zeroed regions and pre-regime logs decode as full
//! fidelity without a salvage event.
//!
//! Decoders never panic on a bad word: [`decode_or_full`] falls back to
//! `Full` and reports the fallback so the caller can surface an event.

use crate::layout::EventKind;
use std::collections::HashMap;

/// Largest supported `log2(N)` for `Sampled`: 1-in-65536 pairs.
pub const MAX_LOG2_N: u8 = 16;

const TAG_FULL: u8 = 0;
const TAG_SAMPLED: u8 = 1;
const TAG_QUIESCENT: u8 = 2;

/// The fidelity regime a session is operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regime {
    /// Every event is recorded; totals are exact.
    Full,
    /// One in `N` call/return pairs is recorded; totals are estimated by
    /// scaling admitted pairs up by `N`. `N` is always a power of two in
    /// `2..=2^MAX_LOG2_N`.
    Sampled(u32),
    /// Nothing is recorded; the session is alive but shedding all load.
    Quiescent,
}

impl Regime {
    /// The scale factor the estimator applies to admitted aggregates.
    pub fn scale(self) -> u64 {
        match self {
            Regime::Full => 1,
            Regime::Sampled(n) => u64::from(n),
            Regime::Quiescent => 1,
        }
    }

    /// The sampling divisor `N` (1 for `Full`, `u32::MAX` sentinel never
    /// used: `Quiescent` admits nothing regardless).
    pub fn divisor(self) -> u32 {
        match self {
            Regime::Full => 1,
            Regime::Sampled(n) => n,
            Regime::Quiescent => u32::MAX,
        }
    }

    /// `true` when totals derived under this regime are estimates.
    pub fn is_estimated(self) -> bool {
        matches!(self, Regime::Sampled(_))
    }

    /// Short lowercase label used on wire formats and badges.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Full => "full",
            Regime::Sampled(_) => "sampled",
            Regime::Quiescent => "quiescent",
        }
    }

    fn tag(self) -> u8 {
        match self {
            Regime::Full => TAG_FULL,
            Regime::Sampled(_) => TAG_SAMPLED,
            Regime::Quiescent => TAG_QUIESCENT,
        }
    }

    fn log2_n(self) -> u8 {
        match self {
            Regime::Sampled(n) => n.trailing_zeros() as u8,
            _ => 0,
        }
    }

    /// Clamp an arbitrary divisor to a legal `Sampled` regime: rounded up
    /// to a power of two in `2..=2^MAX_LOG2_N`.
    pub fn sampled(n: u32) -> Regime {
        let n = n.clamp(2, 1 << MAX_LOG2_N).next_power_of_two();
        Regime::Sampled(n)
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regime::Full => write!(f, "full"),
            Regime::Sampled(n) => write!(f, "sampled(1/{n})"),
            Regime::Quiescent => write!(f, "quiescent"),
        }
    }
}

fn check_byte(word: u64) -> u8 {
    // XOR-fold bytes 0..7 (everything except the check byte itself).
    let b = word.to_le_bytes();
    b[0] ^ b[1] ^ b[2] ^ b[3] ^ b[4] ^ b[5] ^ b[6]
}

/// Encode a regime + regime epoch into the shared header word.
pub fn encode_regime(regime: Regime, regime_epoch: u32) -> u64 {
    let mut word = u64::from(regime_epoch);
    word |= u64::from(regime.tag()) << 32;
    word |= u64::from(regime.log2_n()) << 40;
    word |= u64::from(check_byte(word)) << 56;
    word
}

/// Decode the shared header word. `None` means the word is not a valid
/// publication (corrupt, or a torn lo/hi recombination) and the caller
/// must fall back to `Full`.
pub fn decode_regime(word: u64) -> Option<(Regime, u32)> {
    let b = word.to_le_bytes();
    if b[7] != check_byte(word) || b[6] != 0 {
        return None;
    }
    let epoch = (word & 0xffff_ffff) as u32;
    let log2_n = b[5];
    let regime = match b[4] {
        TAG_FULL if log2_n == 0 => Regime::Full,
        TAG_SAMPLED if (1..=MAX_LOG2_N).contains(&log2_n) => Regime::Sampled(1u32 << log2_n),
        TAG_QUIESCENT if log2_n == 0 => Regime::Quiescent,
        _ => return None,
    };
    Some((regime, epoch))
}

/// Decode without validating the check byte or the reserved bits — the
/// historical pre-check decoder the `TornRegimeRead` protocol mutation
/// re-introduces (see `teeperf-core`'s mutation module). Unknown tags map
/// to `Full`. Never use this on a live path: it happily accepts a torn
/// lo/hi recombination as a publication that never happened.
pub fn decode_unchecked(word: u64) -> (Regime, u32) {
    let b = word.to_le_bytes();
    let epoch = (word & 0xffff_ffff) as u32;
    let regime = match b[4] {
        TAG_SAMPLED => Regime::Sampled(1u32 << b[5].clamp(1, MAX_LOG2_N)),
        TAG_QUIESCENT => Regime::Quiescent,
        _ => Regime::Full,
    };
    (regime, epoch)
}

/// Decode with the documented fallback: an invalid word reads as `Full`
/// at regime epoch 0 and the `bool` reports that the fallback fired.
pub fn decode_or_full(word: u64) -> (Regime, u32, bool) {
    match decode_regime(word) {
        Some((r, e)) => (r, e, false),
        None => (Regime::Full, 0, true),
    }
}

/// SplitMix64 finalizer: decorrelates the pair counter from the admission
/// pattern so periodic call trees cannot alias with the 1-in-N stride.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How often (in admission decisions) the gate re-reads the shared regime
/// word. Amortizes the shared load without letting the writer run a stale
/// regime for long.
pub const GATE_REFRESH_EVERY: u32 = 32;

/// Writer-side admission gate: pair-coherent 1-in-N sampling driven by
/// the shared regime word.
///
/// A decision is made once per *call* and remembered on a per-thread
/// stack; the matching return replays the same decision, so the admitted
/// event stream always consists of well-nested pairs no matter when the
/// regime changes. A return with an empty stack (its call predated the
/// gate, or the stack was lost to a crash) is always admitted — the
/// drain's existing salvage logic already copes with unmatched returns.
#[derive(Debug)]
pub struct FidelityGate {
    regime: Regime,
    regime_epoch: u32,
    fallback: bool,
    pair_counter: u64,
    decisions: u32,
    suppressed: u64,
    admitted: u64,
    stacks: HashMap<u64, Vec<bool>>,
}

impl Default for FidelityGate {
    fn default() -> Self {
        FidelityGate::new()
    }
}

impl FidelityGate {
    /// A gate starting in `Full` (the all-zero regime word).
    pub fn new() -> FidelityGate {
        FidelityGate {
            regime: Regime::Full,
            regime_epoch: 0,
            fallback: false,
            pair_counter: 0,
            decisions: 0,
            suppressed: 0,
            admitted: 0,
            stacks: HashMap::new(),
        }
    }

    /// Whether the next [`FidelityGate::admit`] wants a fresh read of the
    /// shared regime word (call [`FidelityGate::observe`] with it first).
    /// Always true on the first decision so the gate picks up the regime
    /// before admitting anything.
    pub fn needs_refresh(&self) -> bool {
        self.decisions.is_multiple_of(GATE_REFRESH_EVERY)
    }

    /// Feed a freshly loaded regime word into the gate. Returns `true`
    /// when the word failed validation and the gate fell back to `Full`.
    pub fn observe(&mut self, word: u64) -> bool {
        let (regime, epoch, fallback) = decode_or_full(word);
        self.regime = regime;
        self.regime_epoch = epoch;
        self.fallback = fallback;
        fallback
    }

    /// The regime the gate is currently honouring.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// The regime epoch of the last observed publication.
    pub fn regime_epoch(&self) -> u32 {
        self.regime_epoch
    }

    /// Events suppressed by the gate so far (each suppressed call or
    /// return counts as one event). These are *disclosed* omissions, not
    /// drops: the drain knows the regime and scales estimates accordingly.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Events admitted through the gate so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Decide whether to record this event. Pair-coherent: the decision
    /// made at a `Call` is replayed at the matching `Return`.
    pub fn admit(&mut self, tid: u64, kind: EventKind) -> bool {
        self.decisions = self.decisions.wrapping_add(1);
        let admit = match kind {
            EventKind::Call => {
                let decision = match self.regime {
                    Regime::Full => true,
                    Regime::Quiescent => false,
                    Regime::Sampled(n) => {
                        let draw = mix(self.pair_counter);
                        self.pair_counter = self.pair_counter.wrapping_add(1);
                        draw.is_multiple_of(u64::from(n))
                    }
                };
                self.stacks.entry(tid).or_default().push(decision);
                decision
            }
            EventKind::Return => self
                .stacks
                .get_mut(&tid)
                .and_then(|s| s.pop())
                .unwrap_or(true),
        };
        if admit {
            self.admitted += 1;
        } else {
            self.suppressed += 1;
        }
        admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_word_is_full_epoch_zero() {
        assert_eq!(decode_regime(0), Some((Regime::Full, 0)));
        assert_eq!(encode_regime(Regime::Full, 0), 0);
    }

    #[test]
    fn round_trips_all_regimes() {
        for regime in [
            Regime::Full,
            Regime::Sampled(2),
            Regime::Sampled(64),
            Regime::Sampled(1 << MAX_LOG2_N),
            Regime::Quiescent,
        ] {
            for epoch in [0u32, 1, 7, u32::MAX] {
                let w = encode_regime(regime, epoch);
                assert_eq!(decode_regime(w), Some((regime, epoch)), "{regime} @{epoch}");
            }
        }
    }

    #[test]
    fn corrupt_words_fall_back_to_full() {
        let good = encode_regime(Regime::Sampled(8), 41);
        for flip in 0..64 {
            let bad = good ^ (1u64 << flip);
            // Any single-bit flip breaks the XOR check byte (the check
            // byte covers every other byte, and flipping the check byte
            // itself also mismatches).
            let (r, e, fallback) = decode_or_full(bad);
            assert!(fallback, "bit {flip} accepted");
            assert_eq!((r, e), (Regime::Full, 0));
        }
    }

    #[test]
    fn torn_lo_hi_recombination_is_detected() {
        // Low half of epoch-1 publication, high half of epoch-2: the
        // check byte was computed over epoch 2's low bytes, so the mix
        // fails validation.
        let a = encode_regime(Regime::Full, 1);
        let b = encode_regime(Regime::Sampled(4), 2);
        let torn = (a & 0xffff_ffff) | (b & !0xffff_ffff);
        assert_eq!(decode_regime(torn), None);
    }

    #[test]
    fn invalid_tag_and_reserved_bits_rejected() {
        // Tag 3 with a self-consistent check byte: still rejected.
        let mut w = u64::from(3u8) << 32;
        w |= u64::from(super::check_byte(w)) << 56;
        assert_eq!(decode_regime(w), None);
        // Sampled with log2_n = 0 (N=1) is not a legal publication.
        let mut w = u64::from(TAG_SAMPLED) << 32;
        w |= u64::from(super::check_byte(w)) << 56;
        assert_eq!(decode_regime(w), None);
        // Reserved byte set.
        let mut w = 1u64 << 48;
        w |= u64::from(super::check_byte(w)) << 56;
        assert_eq!(decode_regime(w), None);
    }

    #[test]
    fn sampled_constructor_clamps_to_power_of_two() {
        assert_eq!(Regime::sampled(0), Regime::Sampled(2));
        assert_eq!(Regime::sampled(3), Regime::Sampled(4));
        assert_eq!(Regime::sampled(64), Regime::Sampled(64));
        assert_eq!(Regime::sampled(u32::MAX), Regime::Sampled(1 << MAX_LOG2_N));
    }

    #[test]
    fn gate_full_admits_everything() {
        let mut g = FidelityGate::new();
        for i in 0..100u64 {
            assert!(g.admit(i % 3, EventKind::Call));
            assert!(g.admit(i % 3, EventKind::Return));
        }
        assert_eq!(g.suppressed(), 0);
        assert_eq!(g.admitted(), 200);
    }

    #[test]
    fn gate_quiescent_suppresses_pairs() {
        let mut g = FidelityGate::new();
        g.observe(encode_regime(Regime::Quiescent, 1));
        assert!(!g.admit(0, EventKind::Call));
        assert!(!g.admit(0, EventKind::Return));
        assert_eq!(g.suppressed(), 2);
    }

    #[test]
    fn gate_decisions_are_pair_coherent_across_regime_change() {
        let mut g = FidelityGate::new();
        // Call admitted under Full…
        assert!(g.admit(7, EventKind::Call));
        // …regime flips to Quiescent before the return…
        g.observe(encode_regime(Regime::Quiescent, 1));
        // …the matching return replays the Call's decision.
        assert!(g.admit(7, EventKind::Return));
        // A new pair under Quiescent is fully suppressed.
        assert!(!g.admit(7, EventKind::Call));
        assert!(!g.admit(7, EventKind::Return));
    }

    #[test]
    fn gate_unmatched_return_is_admitted() {
        let mut g = FidelityGate::new();
        g.observe(encode_regime(Regime::Quiescent, 3));
        assert!(g.admit(9, EventKind::Return));
    }

    #[test]
    fn gate_falls_back_to_full_on_corrupt_word() {
        let mut g = FidelityGate::new();
        g.observe(encode_regime(Regime::Quiescent, 1));
        assert!(!g.admit(0, EventKind::Call));
        let fallback = g.observe(encode_regime(Regime::Sampled(8), 2) ^ (1 << 13));
        assert!(fallback);
        assert_eq!(g.regime(), Regime::Full);
        assert!(g.admit(1, EventKind::Call));
    }

    #[test]
    fn gate_sampled_admission_rate_is_roughly_one_in_n() {
        let mut g = FidelityGate::new();
        g.observe(encode_regime(Regime::Sampled(4), 1));
        let mut admitted = 0u64;
        let pairs = 4000u64;
        for _ in 0..pairs {
            if g.admit(0, EventKind::Call) {
                admitted += 1;
                assert!(g.admit(0, EventKind::Return));
            } else {
                assert!(!g.admit(0, EventKind::Return));
            }
        }
        // Hashed admission: expect ~1000 of 4000, allow wide slack.
        assert!((700..=1300).contains(&admitted), "admitted {admitted}");
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trips(epoch: u32, log2_n in 1u8..=MAX_LOG2_N, tag in 0u8..3) {
            let regime = match tag {
                0 => Regime::Full,
                1 => Regime::Sampled(1u32 << log2_n),
                _ => Regime::Quiescent,
            };
            prop_assert_eq!(decode_regime(encode_regime(regime, epoch)), Some((regime, epoch)));
        }

        #[test]
        fn prop_gate_never_records_unpaired_call(n_log2 in 1u8..8, ops in proptest::collection::vec((0u64..4, any::<bool>()), 1..200)) {
            // Drive nested call/return streams per tid and check the
            // admitted stream is well nested per tid.
            let mut g = FidelityGate::new();
            g.observe(encode_regime(Regime::Sampled(1 << n_log2), 1));
            let mut depth: HashMap<u64, u64> = HashMap::new();
            let mut admitted_depth: HashMap<u64, i64> = HashMap::new();
            for (tid, call) in ops {
                let d = depth.entry(tid).or_default();
                let kind = if call || *d == 0 { EventKind::Call } else { EventKind::Return };
                match kind {
                    EventKind::Call => *d += 1,
                    EventKind::Return => *d -= 1,
                }
                if g.admit(tid, kind) {
                    let ad = admitted_depth.entry(tid).or_default();
                    match kind {
                        EventKind::Call => *ad += 1,
                        EventKind::Return => *ad -= 1,
                    }
                    prop_assert!(*ad >= 0, "admitted stream dipped below root");
                }
            }
        }
    }
}
