//! Counter sources for timestamps inside the TEE.
//!
//! The paper's key trick for architecture independence: if no trustworthy
//! hardware counter is reachable from inside the TEE, the recorder runs a
//! host thread that increments a word of shared memory in a tight loop. The
//! counter "sacrifices an entire core" but provides a fine, monotone,
//! relative clock with a tiny cache footprint (§II-B, stage 2).
//!
//! Three sources are provided:
//!
//! * [`SpinCounter`] — the real thing: an OS thread spinning on the shared
//!   word. Non-deterministic; used in runtime tests and available to users.
//! * [`SimCounter`] — deterministic: derives the counter from the simulated
//!   machine's virtual clock, modeling a spin thread that increments once
//!   every `period` cycles. All figures are produced with this source.
//! * [`TscCounter`] — models reading an architecture timestamp counter
//!   (`rdtsc`) directly; usable only where the TEE exposes one. Exists for
//!   the counter-source ablation.

// teeperf-lint: allow(raw-atomics, file): the spin thread's private stop
// flag is host-side control state, not shared-log words — the log itself
// is only touched through SharedLog's seam-routed accessors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use tee_sim::Clock;

use crate::log::SharedLog;

/// A source of monotonically nondecreasing counter values.
pub trait CounterSource: Send {
    /// Read the current counter value.
    fn read(&self) -> u64;
    /// Human-readable source name for reports.
    fn name(&self) -> &'static str;
    /// Extra enclave-side cycles to charge per read, *beyond* the shared
    /// memory access the hook already performs (e.g. `rdtsc` latency).
    fn read_cycles(&self) -> u64 {
        0
    }
}

/// The paper's software counter: a host thread incrementing the counter
/// word of the shared log in a tight loop.
///
/// The thread stops when the `SpinCounter` is dropped.
#[derive(Debug)]
pub struct SpinCounter {
    log: SharedLog,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl SpinCounter {
    /// Start the spin thread over the given log's counter word.
    pub fn start(log: SharedLog) -> SpinCounter {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_log = log.clone();
        let handle = std::thread::Builder::new()
            .name("teeperf-counter".into())
            .spawn(move || {
                let mut v: u64 = 0;
                // ord: Relaxed — the flag is a standalone quit signal; the
                // join below is the real synchronization edge.
                while !thread_stop.load(Ordering::Relaxed) {
                    v += 1;
                    thread_log.store_counter(v);
                }
                v
            })
            .expect("spawn counter thread");
        SpinCounter {
            log,
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the spin thread and return the final counter value.
    pub fn stop(mut self) -> u64 {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> u64 {
        // ord: Relaxed — pairs with the Relaxed poll in the spin loop; the
        // subsequent join() orders everything that matters.
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().expect("counter thread panicked"),
            None => self.log.counter_value(),
        }
    }
}

impl Drop for SpinCounter {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl CounterSource for SpinCounter {
    fn read(&self) -> u64 {
        self.log.counter_value()
    }

    fn name(&self) -> &'static str {
        "software-spin"
    }
}

/// Deterministic software counter driven by the simulator's virtual clock:
/// models a spin thread that completes one increment every `period` cycles.
#[derive(Debug, Clone)]
pub struct SimCounter {
    clock: Clock,
    period: u64,
}

impl SimCounter {
    /// A counter ticking once per `period` cycles of virtual time. The
    /// default period used throughout the evaluation is 4 cycles — roughly
    /// one increment per store-buffer drain of a real spin loop.
    pub fn new(clock: Clock, period: u64) -> SimCounter {
        assert!(period > 0, "period must be nonzero");
        SimCounter { clock, period }
    }

    /// The evaluation-default counter (period 4).
    pub fn standard(clock: Clock) -> SimCounter {
        SimCounter::new(clock, 4)
    }

    /// Convert a counter-tick delta back to cycles.
    pub fn ticks_to_cycles(&self, ticks: u64) -> u64 {
        ticks * self.period
    }
}

impl CounterSource for SimCounter {
    fn read(&self) -> u64 {
        self.clock.now() / self.period
    }

    fn name(&self) -> &'static str {
        "software-sim"
    }
}

/// A hardware timestamp counter (`rdtsc`-style): exact cycle resolution,
/// small fixed read latency, but architecture-dependent — the thing
/// TEE-Perf exists to avoid relying on.
#[derive(Debug, Clone)]
pub struct TscCounter {
    clock: Clock,
    latency: u64,
}

impl TscCounter {
    /// A TSC read with the given latency in cycles (30 on the paper's Xeon).
    pub fn new(clock: Clock, latency: u64) -> TscCounter {
        TscCounter { clock, latency }
    }
}

impl CounterSource for TscCounter {
    fn read(&self) -> u64 {
        self.clock.now()
    }

    fn name(&self) -> &'static str {
        "hardware-tsc"
    }

    fn read_cycles(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{make_header, region_bytes};
    use tee_sim::SharedMem;

    fn test_log() -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(4)));
        SharedLog::init(shm, &make_header(1, 4, false, 0, 0))
    }

    #[test]
    fn spin_counter_advances_and_stops() {
        let log = test_log();
        let counter = SpinCounter::start(log.clone());
        // Wait for visible progress.
        let mut last = 0;
        for _ in 0..1_000 {
            last = counter.read();
            if last > 1_000 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(last > 0, "spin counter never advanced");
        let final_v = counter.stop();
        assert!(final_v >= last);
        // After stop the stored value no longer changes.
        let a = log.counter_value();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(log.counter_value(), a);
    }

    #[test]
    fn spin_counter_drop_joins_thread() {
        let log = test_log();
        {
            let _c = SpinCounter::start(log.clone());
            std::thread::yield_now();
        } // must not hang or leak
        let a = log.counter_value();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(log.counter_value(), a);
    }

    #[test]
    fn sim_counter_is_deterministic_function_of_clock() {
        let clock = Clock::new();
        let c = SimCounter::new(clock.clone(), 4);
        assert_eq!(c.read(), 0);
        clock.advance(7);
        assert_eq!(c.read(), 1);
        clock.advance(1);
        assert_eq!(c.read(), 2);
        assert_eq!(c.ticks_to_cycles(2), 8);
        assert_eq!(c.name(), "software-sim");
        assert_eq!(c.read_cycles(), 0);
    }

    #[test]
    fn tsc_counter_reads_cycles_exactly() {
        let clock = Clock::new();
        let c = TscCounter::new(clock.clone(), 30);
        clock.advance(12_345);
        assert_eq!(c.read(), 12_345);
        assert_eq!(c.read_cycles(), 30);
        assert_eq!(c.name(), "hardware-tsc");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn sim_counter_rejects_zero_period() {
        let _ = SimCounter::new(Clock::new(), 0);
    }
}
