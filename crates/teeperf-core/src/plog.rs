//! The atomic-free alternative log (paper §II-B: "while we designed the
//! log in such a way that it can be used lock-free with atomic
//! instructions, TEE-Perf does not actually rely on the availability of
//! these instructions and can use alternative ways of synchronization").
//!
//! Instead of one tail word shared by every thread (reserved with
//! fetch-and-add), the shared region is split into **per-thread
//! partitions**, each with a private tail that only its owner thread ever
//! writes. No atomic read-modify-write is needed anywhere — plain loads
//! and stores suffice on any ISA — and there is no cross-thread contention
//! on the tail line at all. The price is static partitioning: a chatty
//! thread can fill its partition while others sit empty.
//!
//! Layout: the standard 64-byte header (its tail word unused), then
//! `n_partitions` tail words, then the entry area split evenly.

use std::sync::Arc;

use tee_sim::{Machine, SharedMem, SHM_BASE};

use crate::counter::CounterSource;
use crate::layout::{EventKind, LogEntry, LogHeader, ENTRY_BYTES, HEADER_BYTES};
use crate::log::SharedLog;

/// A shared log carved into per-thread partitions.
#[derive(Debug, Clone)]
pub struct PartitionedLog {
    shm: Arc<SharedMem>,
    base: SharedLog,
    n_partitions: u64,
    per_partition: u64,
}

impl PartitionedLog {
    /// Bytes of shared memory needed for `n_partitions` × `per_partition`
    /// entries.
    pub fn region_bytes(n_partitions: u64, per_partition: u64) -> u64 {
        HEADER_BYTES + n_partitions * 8 + n_partitions * per_partition * ENTRY_BYTES
    }

    /// Initialize a fresh partitioned log (host side).
    ///
    /// # Panics
    /// Panics if the region is too small or `n_partitions` is zero.
    pub fn init(
        shm: Arc<SharedMem>,
        header: &LogHeader,
        n_partitions: u64,
        per_partition: u64,
    ) -> PartitionedLog {
        assert!(n_partitions > 0, "need at least one partition");
        assert!(
            shm.size() >= PartitionedLog::region_bytes(n_partitions, per_partition),
            "shared region too small for the partition layout"
        );
        let mut h = *header;
        h.size = n_partitions * per_partition;
        let base = SharedLog::init(Arc::clone(&shm), &h);
        for p in 0..n_partitions {
            shm.write_u64(HEADER_BYTES + p * 8, 0)
                .expect("tails in range");
        }
        PartitionedLog {
            shm,
            base,
            n_partitions,
            per_partition,
        }
    }

    /// The control-word view shared with the classic log (active bit,
    /// event mask, counter word).
    pub fn control(&self) -> &SharedLog {
        &self.base
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u64 {
        self.n_partitions
    }

    /// Entries each partition can hold.
    pub fn partition_capacity(&self) -> u64 {
        self.per_partition
    }

    fn tail_offset(&self, partition: u64) -> u64 {
        HEADER_BYTES + partition * 8
    }

    fn entry_offset(&self, partition: u64, index: u64) -> u64 {
        HEADER_BYTES
            + self.n_partitions * 8
            + (partition * self.per_partition + index) * ENTRY_BYTES
    }

    /// Append an entry to `tid`'s partition using only plain loads and
    /// stores (the tail is thread-private, so no RMW is needed). Returns
    /// `false` when the partition is full (the entry is dropped but the
    /// tail keeps counting, like the classic log).
    pub fn append(&self, tid: u64, entry: &LogEntry) -> bool {
        let p = tid % self.n_partitions;
        let tail_off = self.tail_offset(p);
        let tail = self.shm.read_u64(tail_off).expect("tail in range");
        self.shm
            .write_u64(tail_off, tail + 1)
            .expect("tail in range");
        if tail >= self.per_partition {
            return false;
        }
        let off = self.entry_offset(p, tail);
        for (i, w) in entry.pack().iter().enumerate() {
            self.shm
                .write_u64(off + (i as u64) * 8, *w)
                .expect("entry in range");
        }
        true
    }

    /// Entries dropped because some partition filled up.
    pub fn dropped_entries(&self) -> u64 {
        (0..self.n_partitions)
            .map(|p| {
                self.shm
                    .read_u64(self.tail_offset(p))
                    .expect("tail in range")
                    .saturating_sub(self.per_partition)
            })
            .sum()
    }

    /// Drain all partitions into a standard [`crate::LogFile`]. Entries
    /// are concatenated partition by partition — per-thread order (the
    /// only order the analyzer relies on) is preserved, because a thread
    /// only ever writes to its own partition.
    pub fn drain(&self) -> crate::LogFile {
        let mut entries = Vec::new();
        for p in 0..self.n_partitions {
            let tail = self
                .shm
                .read_u64(self.tail_offset(p))
                .expect("tail in range")
                .min(self.per_partition);
            for i in 0..tail {
                let off = self.entry_offset(p, i);
                let words = self.shm.read_words(off, 3).expect("entry in range");
                entries.push(LogEntry::unpack([words[0], words[1], words[2]]));
            }
        }
        let mut header = self.base.header();
        // With partition-local drops, `tail - size` no longer derives the
        // drop count from global capacity; encode stored/dropped directly
        // so LogHeader::stored_entries / dropped_entries stay correct.
        header.size = entries.len() as u64;
        header.tail = entries.len() as u64 + self.dropped_entries();
        crate::LogFile::new(header, entries)
    }
}

/// Hooks writing through a [`PartitionedLog`] — the drop-in alternative to
/// [`crate::TeePerfHooks`] for ISAs without atomic RMW instructions.
pub struct PartitionedHooks {
    log: PartitionedLog,
    counter: Box<dyn CounterSource>,
    injected_cycles: u64,
    events_recorded: u64,
}

impl std::fmt::Debug for PartitionedHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedHooks")
            .field("partitions", &self.log.partitions())
            .field("events_recorded", &self.events_recorded)
            .finish()
    }
}

impl PartitionedHooks {
    /// Hooks over a partitioned log with the given counter source.
    pub fn new(log: PartitionedLog, counter: Box<dyn CounterSource>) -> PartitionedHooks {
        PartitionedHooks {
            log,
            counter,
            injected_cycles: crate::hooks::DEFAULT_INJECTED_CYCLES,
            events_recorded: 0,
        }
    }

    /// Events written so far.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Record one event. Costs the injected code, the control read and the
    /// counter read like the classic hook — but the reservation is two
    /// plain accesses to a thread-private line instead of a contended RMW.
    pub fn record(&mut self, machine: &mut Machine, kind: EventKind, addr: u64, tid: u64) {
        machine.compute(self.injected_cycles);
        machine.read(SHM_BASE, 8); // control word
        if !self.log.control().should_record(kind) {
            return;
        }
        machine.read(SHM_BASE + 48, 8); // counter word
        machine.compute(crate::hooks::COUNTER_CROSS_CORE_CYCLES);
        let counter = self.counter.read();
        // Private tail: read + write, no lock prefix, no contention.
        let p = tid % self.log.partitions();
        machine.read(SHM_BASE + HEADER_BYTES + p * 8, 8);
        machine.write(SHM_BASE + HEADER_BYTES + p * 8, 8);
        if self.log.append(
            tid,
            &LogEntry {
                kind,
                counter,
                addr,
                tid,
            },
        ) {
            machine.write(SHM_BASE + HEADER_BYTES, ENTRY_BYTES);
            self.events_recorded += 1;
        }
    }
}

impl mcvm::ProfilerHooks for PartitionedHooks {
    fn on_enter(&mut self, machine: &mut Machine, fn_entry_addr: u64, tid: u64) {
        self.record(machine, EventKind::Call, fn_entry_addr, tid);
    }

    fn on_exit(&mut self, machine: &mut Machine, fn_entry_addr: u64, tid: u64) {
        self.record(machine, EventKind::Return, fn_entry_addr, tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SimCounter;
    use crate::log::make_header;
    use tee_sim::CostModel;

    fn fresh(n_partitions: u64, per_partition: u64) -> PartitionedLog {
        let shm = Arc::new(SharedMem::new(PartitionedLog::region_bytes(
            n_partitions,
            per_partition,
        )));
        PartitionedLog::init(
            shm,
            &make_header(7, n_partitions * per_partition, true, 0, SHM_BASE),
            n_partitions,
            per_partition,
        )
    }

    fn entry(counter: u64, addr: u64, tid: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr,
            tid,
        }
    }

    #[test]
    fn appends_land_in_the_right_partition() {
        let log = fresh(4, 8);
        log.append(0, &entry(1, 100, 0));
        log.append(1, &entry(2, 200, 1));
        log.append(0, &entry(3, 101, 0));
        let f = log.drain();
        assert_eq!(f.entries.len(), 3);
        // Partition order: tid 0's two entries first (in order), then tid 1.
        assert_eq!(f.entries[0].addr, 100);
        assert_eq!(f.entries[1].addr, 101);
        assert_eq!(f.entries[2].addr, 200);
    }

    #[test]
    fn partition_overflow_drops_and_counts() {
        let log = fresh(2, 2);
        for i in 0..5 {
            log.append(0, &entry(i, i, 0));
        }
        log.append(1, &entry(9, 9, 1));
        assert_eq!(log.dropped_entries(), 3);
        let f = log.drain();
        assert_eq!(f.entries.len(), 3);
        assert_eq!(f.header.dropped_entries(), 3);
    }

    #[test]
    fn per_thread_order_survives_draining_to_analyzer() {
        // Group by tid and verify counters are nondecreasing per thread —
        // the property the analyzer's reconstruction relies on.
        let log = fresh(3, 32);
        for step in 0..20u64 {
            for tid in 0..3u64 {
                log.append(tid, &entry(step * 10 + tid, step, tid));
            }
        }
        let f = log.drain();
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for e in &f.entries {
            if let Some(prev) = last.insert(e.tid, e.counter) {
                assert!(e.counter >= prev, "thread {} reordered", e.tid);
            }
        }
    }

    #[test]
    fn hooks_record_through_partitions_and_charge_less_than_classic() {
        let log = fresh(4, 1024);
        let mut machine = Machine::new(CostModel::sgx_v1());
        machine.map_shared(Arc::clone(log.control().shm()));
        machine.ecall();
        let mut hooks = PartitionedHooks::new(
            log.clone(),
            Box::new(SimCounter::standard(machine.clock().clone())),
        );
        let t0 = machine.clock().now();
        for i in 0..100 {
            hooks.record(&mut machine, EventKind::Call, i, i % 4);
        }
        let partitioned_cost = (machine.clock().now() - t0) / 100;
        assert_eq!(hooks.events_recorded(), 100);
        assert_eq!(log.drain().entries.len(), 100);

        // Classic fetch-and-add hooks on the same machine class.
        let shm = Arc::new(SharedMem::new(crate::log::region_bytes(1024)));
        let classic_log =
            SharedLog::init(Arc::clone(&shm), &make_header(1, 1024, true, 0, SHM_BASE));
        let mut machine2 = Machine::new(CostModel::sgx_v1());
        machine2.map_shared(shm);
        machine2.ecall();
        let mut classic = crate::TeePerfHooks::new(
            classic_log,
            Box::new(SimCounter::standard(machine2.clock().clone())),
        );
        let t0 = machine2.clock().now();
        for i in 0..100 {
            classic.record(&mut machine2, EventKind::Call, i, i % 4);
        }
        let classic_cost = (machine2.clock().now() - t0) / 100;
        assert!(
            partitioned_cost < classic_cost,
            "partitioned ({partitioned_cost}) should beat contended fetch-add ({classic_cost})"
        );
    }

    #[test]
    fn deactivation_works_through_the_shared_control_word() {
        let log = fresh(2, 16);
        let mut machine = Machine::new(CostModel::sgx_v1());
        machine.map_shared(Arc::clone(log.control().shm()));
        machine.ecall();
        let mut hooks = PartitionedHooks::new(
            log.clone(),
            Box::new(SimCounter::standard(machine.clock().clone())),
        );
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        log.control().set_active(false);
        hooks.record(&mut machine, EventKind::Call, 2, 0);
        assert_eq!(log.drain().entries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_region_rejected() {
        let shm = Arc::new(SharedMem::new(64));
        let _ = PartitionedLog::init(shm, &make_header(1, 100, true, 0, 0), 4, 100);
    }
}
