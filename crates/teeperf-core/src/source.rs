//! The ingestion abstraction: every consumer — the batch analyzer, the
//! live drainer, the multi-process session registry — speaks to an
//! [`EventSource`] instead of a concrete log.
//!
//! Two implementations cover both halves of the pipeline:
//!
//! * [`LiveLogSource`] drains a [`SharedLog`] that writers are still
//!   appending to, reusing the lock-free [`SharedLog::poll`] /
//!   [`SharedLog::rotate`] machinery (it owns the single drain cursor the
//!   rotation protocol requires).
//! * [`FileReplaySource`] replays a persisted [`LogFile`] as if it were
//!   being drained live, so batch analysis of a directory of plogs goes
//!   through the exact same code path as continuous profiling.
//!
//! Each source is keyed by the process id stamped into the log header
//! (paper Figure 2, word 1): a session registry multiplexes N sources —
//! one per profiled process — by that pid.

use crate::file::LogFile;
use crate::layout::LogEntry;
use crate::log::{LogCursor, SharedLog};

/// One pump's worth of entries from an [`EventSource`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceBatch {
    /// Entries obtained this pump, in log order.
    pub entries: Vec<LogEntry>,
    /// Whether this pump closed an epoch (rotated the log / finished a
    /// replay chunk).
    pub rotated: bool,
    /// Entries the closed epoch dropped on overflow (0 if no rotation).
    pub dropped: u64,
    /// Epoch the source is positioned in after this pump.
    pub epoch: u64,
}

/// A stream of profiling events from one profiled process.
///
/// Implementations own whatever cursor or position state the underlying
/// transport needs; callers never see a raw log. The contract mirrors the
/// live drain protocol:
///
/// * [`EventSource::pump`] is the incremental step — cheap, may return an
///   empty batch, never blocks on writers.
/// * [`EventSource::drain_to_end`] forces everything currently available
///   out (a rotation for live logs, the full remainder for replays).
/// * [`EventSource::pid`] is the registry key: the process id from the
///   log header. A valid source never reports pid 0 (see
///   [`crate::layout::PID_UNSET`]).
pub trait EventSource: Send + std::fmt::Debug {
    /// Process id of the producer (the log header's pid word).
    fn pid(&self) -> u64;

    /// One incremental drain step. For live logs this polls published
    /// entries and rotates only past the capacity watermark; for replays
    /// it yields the next chunk.
    fn pump(&mut self) -> SourceBatch;

    /// Force out everything currently available (rotate a live log even
    /// below the watermark; emit the whole remainder of a replay).
    fn drain_to_end(&mut self) -> SourceBatch;

    /// Entries dropped on overflow over the lifetime of the source.
    fn dropped_total(&self) -> u64;

    /// Epoch the source is currently positioned in.
    fn epoch(&self) -> u64;

    /// Whether the source can never produce another entry. Live logs are
    /// never exhausted (writers may still arrive); replays are exhausted
    /// once every entry and drop has been reported.
    fn is_exhausted(&self) -> bool;
}

/// Live shared-memory drain: the [`EventSource`] over a [`SharedLog`]
/// whose writers are still running. Owns the drain cursor; at most one
/// `LiveLogSource` may exist per log (the rotation protocol is
/// single-drainer).
#[derive(Debug)]
pub struct LiveLogSource {
    log: SharedLog,
    cursor: LogCursor,
    watermark_pct: u8,
    rotations: u64,
    drained: u64,
}

impl LiveLogSource {
    /// Wrap `log`, rotating whenever the tail reaches `watermark_pct`
    /// percent of capacity (clamped to `1..=99`).
    pub fn new(log: SharedLog, watermark_pct: u8) -> LiveLogSource {
        let cursor = LogCursor {
            epoch: log.epoch(),
            index: 0,
        };
        LiveLogSource {
            log,
            cursor,
            watermark_pct: watermark_pct.clamp(1, 99),
            rotations: 0,
            drained: 0,
        }
    }

    /// The underlying shared log.
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// Completed rotations performed by this source.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Total entries this source has produced.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    fn watermark_entries(&self) -> u64 {
        (self.log.capacity() * u64::from(self.watermark_pct) / 100).max(1)
    }

    fn rotate(&mut self, batch: &mut SourceBatch) {
        let out = self.log.rotate(&mut self.cursor);
        batch.entries.extend(out.entries);
        batch.rotated = true;
        batch.dropped = out.dropped;
        batch.epoch = out.new_epoch;
        self.rotations += 1;
    }
}

impl EventSource for LiveLogSource {
    fn pid(&self) -> u64 {
        self.log.header().pid
    }

    fn pump(&mut self) -> SourceBatch {
        let mut batch = SourceBatch {
            entries: self.log.poll(&mut self.cursor),
            rotated: false,
            dropped: 0,
            epoch: self.cursor.epoch,
        };
        if self.log.header().tail >= self.watermark_entries() {
            self.rotate(&mut batch);
        }
        self.drained += batch.entries.len() as u64;
        batch
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        let mut batch = SourceBatch {
            entries: self.log.poll(&mut self.cursor),
            rotated: false,
            dropped: 0,
            epoch: self.cursor.epoch,
        };
        self.rotate(&mut batch);
        self.drained += batch.entries.len() as u64;
        batch
    }

    fn dropped_total(&self) -> u64 {
        self.log.dropped_total()
    }

    fn epoch(&self) -> u64 {
        self.cursor.epoch
    }

    fn is_exhausted(&self) -> bool {
        false
    }
}

/// File-backed replay: the [`EventSource`] over a persisted [`LogFile`].
/// Yields the recorded entries in chunks (one chunk per "epoch") and
/// reports the file's overflow drops exactly once, with the batch that
/// exhausts the source.
#[derive(Debug, Clone)]
pub struct FileReplaySource {
    pid: u64,
    entries: Vec<LogEntry>,
    pos: usize,
    chunk: usize,
    dropped: u64,
    dropped_reported: bool,
    epochs: u64,
}

impl FileReplaySource {
    /// Replay `log`. The pid and drop count come from the file header; by
    /// default the whole file is one chunk (see
    /// [`FileReplaySource::with_chunk`]).
    pub fn new(log: &LogFile) -> FileReplaySource {
        let dropped = log.header.dropped_entries();
        FileReplaySource {
            pid: log.header.pid,
            entries: log.entries.clone(),
            pos: 0,
            chunk: log.entries.len().max(1),
            dropped,
            dropped_reported: dropped == 0,
            epochs: 0,
        }
    }

    /// Override the pid this source reports (used to disambiguate several
    /// files recorded by the same process).
    pub fn with_pid(mut self, pid: u64) -> FileReplaySource {
        self.pid = pid;
        self
    }

    /// Replay at most `chunk` entries per pump (clamped to at least 1), so
    /// a replay exercises the same incremental path as a live drain.
    pub fn with_chunk(mut self, chunk: usize) -> FileReplaySource {
        self.chunk = chunk.max(1);
        self
    }

    /// Entries not yet replayed.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SourceBatch {
        let end = (self.pos + n).min(self.entries.len());
        let entries = self.entries[self.pos..end].to_vec();
        self.pos = end;
        let mut batch = SourceBatch {
            entries,
            rotated: false,
            dropped: 0,
            epoch: self.epochs,
        };
        if self.pos == self.entries.len() && !self.dropped_reported {
            batch.dropped = self.dropped;
            self.dropped_reported = true;
        }
        if !batch.entries.is_empty() || batch.dropped > 0 {
            self.epochs += 1;
            batch.rotated = true;
            batch.epoch = self.epochs;
        }
        batch
    }
}

impl EventSource for FileReplaySource {
    fn pid(&self) -> u64 {
        self.pid
    }

    fn pump(&mut self) -> SourceBatch {
        self.take(self.chunk)
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        self.take(self.entries.len() - self.pos)
    }

    fn dropped_total(&self) -> u64 {
        self.dropped
    }

    fn epoch(&self) -> u64 {
        self.epochs
    }

    fn is_exhausted(&self) -> bool {
        self.pos == self.entries.len() && self.dropped_reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EventKind, LogHeader, LOG_VERSION};
    use crate::log::{make_header, region_bytes};
    use std::sync::Arc;
    use tee_sim::SharedMem;

    fn entry(counter: u64, addr: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr,
            tid: 0,
        }
    }

    fn live_log(pid: u64, max_entries: u64) -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        SharedLog::init(shm, &make_header(pid, max_entries, true, 0, 0))
    }

    #[test]
    fn live_source_pumps_and_rotates_at_watermark() {
        let log = live_log(7, 8);
        let mut src = LiveLogSource::new(log.clone(), 75);
        assert_eq!(src.pid(), 7);
        assert!(!src.is_exhausted());
        for k in 1..=3u64 {
            log.write_live(&entry(k, 0x100 + k));
        }
        // Below the watermark (6 of 8): poll only, no rotation.
        let b = src.pump();
        assert_eq!(b.entries.len(), 3);
        assert!(!b.rotated);
        assert_eq!(src.epoch(), 0);
        for k in 4..=6u64 {
            log.write_live(&entry(k, 0x100 + k));
        }
        // At the watermark: poll + rotate.
        let b = src.pump();
        assert_eq!(b.entries.len(), 3);
        assert!(b.rotated);
        assert_eq!(b.epoch, 1);
        assert_eq!(src.rotations(), 1);
        assert_eq!(src.drained(), 6);
    }

    #[test]
    fn live_source_drain_to_end_forces_rotation() {
        let log = live_log(7, 8);
        let mut src = LiveLogSource::new(log.clone(), 75);
        log.write_live(&entry(1, 0x101));
        let b = src.drain_to_end();
        assert_eq!(b.entries.len(), 1);
        assert!(b.rotated);
        assert_eq!(log.epoch(), 1);
        assert_eq!(src.dropped_total(), 0);
    }

    #[test]
    fn replay_source_single_chunk() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 31,
            size: 4,
            tail: 6, // 2 dropped
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![entry(1, 0xa), entry(2, 0xb)]);
        let mut src = FileReplaySource::new(&file);
        assert_eq!(src.pid(), 31);
        assert_eq!(src.dropped_total(), 2);
        assert!(!src.is_exhausted());
        let b = src.pump();
        assert_eq!(b.entries.len(), 2);
        assert!(b.rotated);
        assert_eq!(b.dropped, 2, "drops reported with the exhausting batch");
        assert!(src.is_exhausted());
        let b = src.pump();
        assert!(b.entries.is_empty() && b.dropped == 0);
    }

    #[test]
    fn replay_source_chunked_reports_drops_once() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 31,
            size: 3,
            tail: 4,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![entry(1, 0xa), entry(2, 0xb), entry(3, 0xc)]);
        let mut src = FileReplaySource::new(&file).with_chunk(2).with_pid(99);
        assert_eq!(src.pid(), 99);
        let b1 = src.pump();
        assert_eq!(b1.entries.len(), 2);
        assert_eq!(b1.dropped, 0);
        assert_eq!(src.remaining(), 1);
        let b2 = src.drain_to_end();
        assert_eq!(b2.entries.len(), 1);
        assert_eq!(b2.dropped, 1);
        assert!(src.is_exhausted());
        let total: u64 = b1.dropped + b2.dropped + src.pump().dropped;
        assert_eq!(total, 1, "drops must be reported exactly once");
    }

    #[test]
    fn replay_of_empty_file_with_drops_still_reports_them() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 5,
            size: 0,
            tail: 3,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![]);
        let mut src = FileReplaySource::new(&file);
        assert!(!src.is_exhausted());
        let b = src.pump();
        assert!(b.entries.is_empty());
        assert_eq!(b.dropped, 3);
        assert!(src.is_exhausted());
    }
}
