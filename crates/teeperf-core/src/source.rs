//! The ingestion abstraction: every consumer — the batch analyzer, the
//! live drainer, the multi-process session registry — speaks to an
//! [`EventSource`] instead of a concrete log.
//!
//! Two implementations cover both halves of the pipeline:
//!
//! * [`LiveLogSource`] drains a [`SharedLog`] that writers are still
//!   appending to, reusing the lock-free [`SharedLog::poll`] /
//!   [`SharedLog::rotate`] machinery (it owns the single drain cursor the
//!   rotation protocol requires).
//! * [`FileReplaySource`] replays a persisted [`LogFile`] as if it were
//!   being drained live, so batch analysis of a directory of plogs goes
//!   through the exact same code path as continuous profiling.
//!
//! Each source is keyed by the process id stamped into the log header
//! (paper Figure 2, word 1): a session registry multiplexes N sources —
//! one per profiled process — by that pid.

use crate::faults::{SalvageReason, SalvageReport};
use crate::fidelity::Regime;
use crate::file::LogFile;
use crate::layout::{EntryValidity, LogEntry};
use crate::log::{LogCursor, SharedLog};

/// One pump's worth of entries from an [`EventSource`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceBatch {
    /// Entries obtained this pump, in log order.
    pub entries: Vec<LogEntry>,
    /// Whether this pump closed an epoch (rotated the log / finished a
    /// replay chunk).
    pub rotated: bool,
    /// Entries the closed epoch dropped on overflow (0 if no rotation).
    pub dropped: u64,
    /// Epoch the source is positioned in after this pump.
    pub epoch: u64,
}

/// A stream of profiling events from one profiled process.
///
/// Implementations own whatever cursor or position state the underlying
/// transport needs; callers never see a raw log. The contract mirrors the
/// live drain protocol:
///
/// * [`EventSource::pump`] is the incremental step — cheap, may return an
///   empty batch, never blocks on writers.
/// * [`EventSource::drain_to_end`] forces everything currently available
///   out (a rotation for live logs, the full remainder for replays).
/// * [`EventSource::pid`] is the registry key: the process id from the
///   log header. A valid source never reports pid 0 (see
///   [`crate::layout::PID_UNSET`]).
pub trait EventSource: Send + std::fmt::Debug {
    /// Process id of the producer (the log header's pid word).
    fn pid(&self) -> u64;

    /// One incremental drain step. For live logs this polls published
    /// entries and rotates only past the capacity watermark; for replays
    /// it yields the next chunk.
    fn pump(&mut self) -> SourceBatch;

    /// Force out everything currently available (rotate a live log even
    /// below the watermark; emit the whole remainder of a replay).
    fn drain_to_end(&mut self) -> SourceBatch;

    /// Entries dropped on overflow over the lifetime of the source.
    fn dropped_total(&self) -> u64;

    /// Epoch the source is currently positioned in.
    fn epoch(&self) -> u64;

    /// Whether the source can never produce another entry. Live logs are
    /// never exhausted (writers may still arrive); replays are exhausted
    /// once every entry and drop has been reported.
    fn is_exhausted(&self) -> bool;

    /// Accounting of everything this source salvaged around — torn
    /// entries skipped, holes closed, rotations abandoned, headers
    /// distrusted. Clean (all-zero) for a healthy stream.
    fn salvage(&self) -> SalvageReport {
        SalvageReport::default()
    }

    /// Whether the source has declared its producer dead (corrupted
    /// header, unrecoverable transport). A dead source returns empty
    /// batches forever; the registry quarantines it.
    fn is_dead(&self) -> bool {
        false
    }

    /// Publish a fidelity regime on the transport for the producer's
    /// [`crate::fidelity::FidelityGate`] to honour. Returns `false` when
    /// the transport cannot carry regimes (replays, read-only mappings);
    /// the controller then treats the source as pinned to `Full`.
    fn set_regime(&mut self, _regime: Regime) -> bool {
        false
    }

    /// The regime currently published on the transport (`None` when the
    /// transport carries none — replays are always effectively `Full`).
    fn regime(&self) -> Option<Regime> {
        None
    }

    /// One-shot flag: whether a pump since the last call found the regime
    /// word corrupt, fell back to the `Full` interpretation and repaired
    /// the word. The session surfaces the repair as an event.
    fn take_regime_fault(&mut self) -> bool {
        false
    }

    /// Occupancy of the current epoch's log in percent of capacity
    /// (`None` when the transport has no bounded buffer).
    fn occupancy_pct(&self) -> Option<u8> {
        None
    }
}

/// Knobs for a [`LiveLogSource`]'s failure handling. The defaults favour
/// patience: real writers stall for microseconds, so every threshold is
/// far past anything a live writer produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceResilience {
    /// Consecutive pumps a never-published slot may block the cursor
    /// before the hole is closed (slot skipped, counted as dropped).
    pub stall_pumps: u64,
    /// Quiesce iterations [`crate::log::SharedLog::try_rotate`] spins
    /// before declaring the rotation stalled.
    pub rotate_spin_limit: u64,
    /// Consecutive stalled rotations tolerated before the announced
    /// writers are presumed dead and forcibly reclaimed.
    pub max_rotation_stalls: u64,
}

impl Default for SourceResilience {
    fn default() -> SourceResilience {
        SourceResilience {
            stall_pumps: 64,
            rotate_spin_limit: 1 << 20,
            max_rotation_stalls: 2,
        }
    }
}

/// Live shared-memory drain: the [`EventSource`] over a [`SharedLog`]
/// whose writers are still running. Owns the drain cursor; at most one
/// `LiveLogSource` may exist per log (the rotation protocol is
/// single-drainer).
///
/// Degrades gracefully under writer failure (see [`SourceResilience`]):
/// torn entries are filtered out, a slot never published is skipped after
/// a deadline instead of blocking the cursor forever, a rotation stalled
/// on a crashed writer's announcement is abandoned and — after repeated
/// stalls — the dead writers are forcibly reclaimed, and a corrupted
/// header kills the source (empty batches, [`EventSource::is_dead`])
/// rather than letting it interpret garbage. Everything given up on is
/// accounted in [`EventSource::salvage`].
#[derive(Debug)]
pub struct LiveLogSource {
    log: SharedLog,
    cursor: LogCursor,
    watermark_pct: u8,
    rotations: u64,
    drained: u64,
    resilience: SourceResilience,
    salvage: SalvageReport,
    /// (epoch, index, consecutive pumps) the cursor has been blocked at.
    stuck: Option<(u64, u64, u64)>,
    rotation_stalls: u64,
    dead: bool,
    /// The regime this drainer last published, and at which regime epoch.
    regime: Regime,
    regime_epoch: u32,
    /// One-shot: a pump found the regime word corrupt and repaired it.
    regime_fault: bool,
}

impl LiveLogSource {
    /// Wrap `log`, rotating whenever the tail reaches `watermark_pct`
    /// percent of capacity (clamped to `1..=99`).
    pub fn new(log: SharedLog, watermark_pct: u8) -> LiveLogSource {
        let cursor = LogCursor {
            epoch: log.epoch(),
            index: 0,
        };
        LiveLogSource {
            log,
            cursor,
            watermark_pct: watermark_pct.clamp(1, 99),
            rotations: 0,
            drained: 0,
            resilience: SourceResilience::default(),
            salvage: SalvageReport::default(),
            stuck: None,
            rotation_stalls: 0,
            dead: false,
            regime: Regime::Full,
            regime_epoch: 0,
            regime_fault: false,
        }
    }

    /// Override the failure-handling thresholds.
    #[must_use]
    pub fn with_resilience(mut self, resilience: SourceResilience) -> LiveLogSource {
        self.resilience = resilience;
        self
    }

    /// The underlying shared log.
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// Completed rotations performed by this source.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Total entries this source has produced.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    fn watermark_entries(&self) -> u64 {
        (self.log.capacity() * u64::from(self.watermark_pct) / 100).max(1)
    }

    /// Distrust the header once and for all: record the incident and go
    /// dead. Every later pump returns an empty batch.
    fn go_dead(&mut self) {
        if !self.dead {
            self.dead = true;
            self.salvage.incident(SalvageReason::CorruptHeader);
        }
    }

    /// A pump made no progress past a reserved-but-unpublished slot. Count
    /// the consecutive stuck pumps; past the deadline, re-check the slot
    /// and close the hole (skip it, account it) if it is still empty.
    /// Returns whether the cursor was advanced past a hole.
    fn note_stuck(&mut self) -> bool {
        let at = (self.cursor.epoch, self.cursor.index);
        let pumps = match self.stuck {
            Some((e, i, n)) if (e, i) == at => n + 1,
            _ => 1,
        };
        if pumps >= self.resilience.stall_pumps {
            self.stuck = None;
            // Deadline reached: if the writer published in the meantime the
            // next poll will pick the entry up; otherwise skip the hole.
            if self.log.read_entry(self.cursor.index).validity() != EntryValidity::Valid {
                self.cursor.index += 1;
                self.salvage.drop_n(SalvageReason::UnpublishedSlot, 1);
                return true;
            }
        } else {
            self.stuck = Some((at.0, at.1, pumps));
        }
        false
    }

    /// Rotate with a bounded quiesce. A stall is recorded and skipped;
    /// `force` (the drain-to-end path) and repeated stalls escalate to
    /// reclaiming the announced-but-dead writers so the epoch's published
    /// entries are still salvaged.
    fn rotate(&mut self, batch: &mut SourceBatch, force: bool) {
        let limit = self.resilience.rotate_spin_limit;
        let mut attempt = self.log.try_rotate(&mut self.cursor, limit);
        if attempt.is_err() {
            self.salvage.incident(SalvageReason::StalledRotation);
            self.rotation_stalls += 1;
            if force || self.rotation_stalls >= self.resilience.max_rotation_stalls {
                let reclaimed = self.log.force_reclaim_writers();
                for _ in 0..reclaimed {
                    self.salvage.incident(SalvageReason::DeadWriterReclaimed);
                }
                attempt = self.log.try_rotate(&mut self.cursor, limit);
            }
        }
        let Ok(out) = attempt else { return };
        self.rotation_stalls = 0;
        // Rotation skips unpublished holes (abandoned batch remainders and
        // crashed writers' reserved slots) instead of delivering them as
        // all-zero records; account them here so the salvage report still
        // sees every one exactly once.
        self.salvage
            .drop_n(SalvageReason::UnpublishedSlot, out.abandoned);
        batch.entries.extend(out.entries);
        batch.rotated = true;
        batch.dropped = out.dropped;
        batch.epoch = out.new_epoch;
        self.rotations += 1;
    }

    /// Shared pump body: poll, filter invalid records, maybe rotate.
    fn pump_inner(&mut self, force_rotate: bool) -> SourceBatch {
        if self.dead {
            return SourceBatch {
                epoch: self.cursor.epoch,
                ..SourceBatch::default()
            };
        }
        if self.log.verify_header().is_err() {
            self.go_dead();
            return SourceBatch {
                epoch: self.cursor.epoch,
                ..SourceBatch::default()
            };
        }
        // Validate the regime word. Writers fall back to the Full
        // interpretation on their own when it is corrupt; the drainer
        // additionally repairs it (it owns the word) and records the
        // incident so the session can surface an event.
        let (_, _, regime_corrupt) = self.log.regime_observed();
        if regime_corrupt {
            self.salvage.incident(SalvageReason::CorruptRegimeWord);
            self.regime_fault = true;
            self.regime_epoch = self.regime_epoch.wrapping_add(1);
            self.log.set_regime(self.regime, self.regime_epoch);
        }
        let polled = self.log.poll(&mut self.cursor);
        let blocked = polled.is_empty()
            && self.cursor.index < self.log.header().tail.min(self.log.capacity());
        let mut batch = SourceBatch {
            entries: self.salvage.filter_entries(polled),
            rotated: false,
            dropped: 0,
            epoch: self.cursor.epoch,
        };
        if force_rotate || self.log.header().tail >= self.watermark_entries() {
            let before = batch.entries.len();
            self.rotate(&mut batch, force_rotate);
            let rotated_in = batch.entries.split_off(before);
            batch
                .entries
                .extend(self.salvage.filter_entries(rotated_in));
            self.stuck = None;
        } else if blocked {
            if self.note_stuck() {
                // The hole is closed: pick up whatever lies past it now.
                let extra = self.log.poll(&mut self.cursor);
                batch.entries.extend(self.salvage.filter_entries(extra));
            }
        } else {
            self.stuck = None;
        }
        self.drained += batch.entries.len() as u64;
        batch
    }
}

impl EventSource for LiveLogSource {
    fn pid(&self) -> u64 {
        self.log.header().pid
    }

    fn pump(&mut self) -> SourceBatch {
        self.pump_inner(false)
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        self.pump_inner(true)
    }

    fn dropped_total(&self) -> u64 {
        self.log.dropped_total()
    }

    fn epoch(&self) -> u64 {
        self.cursor.epoch
    }

    fn is_exhausted(&self) -> bool {
        false
    }

    fn salvage(&self) -> SalvageReport {
        self.salvage.clone()
    }

    fn is_dead(&self) -> bool {
        self.dead
    }

    fn set_regime(&mut self, regime: Regime) -> bool {
        if self.dead {
            return false;
        }
        self.regime = regime;
        self.regime_epoch = self.regime_epoch.wrapping_add(1);
        self.log.set_regime(regime, self.regime_epoch);
        true
    }

    fn regime(&self) -> Option<Regime> {
        Some(self.regime)
    }

    fn take_regime_fault(&mut self) -> bool {
        std::mem::take(&mut self.regime_fault)
    }

    fn occupancy_pct(&self) -> Option<u8> {
        let cap = self.log.capacity().max(1);
        let tail = self.log.header().tail.min(cap);
        Some((tail * 100 / cap) as u8)
    }
}

/// File-backed replay: the [`EventSource`] over a persisted [`LogFile`].
/// Yields the recorded entries in chunks (one chunk per "epoch") and
/// reports the file's overflow drops exactly once, with the batch that
/// exhausts the source.
///
/// Torn or never-published records in the file (a log persisted after a
/// writer crash) are filtered out at construction and accounted in
/// [`EventSource::salvage`], so a damaged replay degrades exactly like a
/// damaged live drain.
#[derive(Debug, Clone)]
pub struct FileReplaySource {
    pid: u64,
    entries: Vec<LogEntry>,
    pos: usize,
    chunk: usize,
    dropped: u64,
    dropped_reported: bool,
    epochs: u64,
    salvage: SalvageReport,
}

impl FileReplaySource {
    /// Replay `log`. The pid and drop count come from the file header; by
    /// default the whole file is one chunk (see
    /// [`FileReplaySource::with_chunk`]).
    pub fn new(log: &LogFile) -> FileReplaySource {
        let dropped = log.header.dropped_entries();
        let mut salvage = SalvageReport::default();
        let entries = salvage.filter_entries(log.entries.clone());
        let chunk = entries.len().max(1);
        FileReplaySource {
            pid: log.header.pid,
            entries,
            pos: 0,
            chunk,
            dropped,
            dropped_reported: dropped == 0,
            epochs: 0,
            salvage,
        }
    }

    /// Fold an earlier salvage pass's losses (e.g. from
    /// [`LogFile::load_salvage`]) into this source's report, so one report
    /// accounts for the whole file-to-stream path.
    #[must_use]
    pub fn with_prior_salvage(mut self, prior: &SalvageReport) -> FileReplaySource {
        self.salvage.absorb_drops(prior);
        self
    }

    /// Override the pid this source reports (used to disambiguate several
    /// files recorded by the same process).
    pub fn with_pid(mut self, pid: u64) -> FileReplaySource {
        self.pid = pid;
        self
    }

    /// Replay at most `chunk` entries per pump (clamped to at least 1), so
    /// a replay exercises the same incremental path as a live drain.
    pub fn with_chunk(mut self, chunk: usize) -> FileReplaySource {
        self.chunk = chunk.max(1);
        self
    }

    /// Entries not yet replayed.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SourceBatch {
        let end = (self.pos + n).min(self.entries.len());
        let entries = self.entries[self.pos..end].to_vec();
        self.pos = end;
        let mut batch = SourceBatch {
            entries,
            rotated: false,
            dropped: 0,
            epoch: self.epochs,
        };
        if self.pos == self.entries.len() && !self.dropped_reported {
            batch.dropped = self.dropped;
            self.dropped_reported = true;
        }
        if !batch.entries.is_empty() || batch.dropped > 0 {
            self.epochs += 1;
            batch.rotated = true;
            batch.epoch = self.epochs;
        }
        batch
    }
}

impl EventSource for FileReplaySource {
    fn pid(&self) -> u64 {
        self.pid
    }

    fn pump(&mut self) -> SourceBatch {
        self.take(self.chunk)
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        self.take(self.entries.len() - self.pos)
    }

    fn dropped_total(&self) -> u64 {
        self.dropped
    }

    fn epoch(&self) -> u64 {
        self.epochs
    }

    fn is_exhausted(&self) -> bool {
        self.pos == self.entries.len() && self.dropped_reported
    }

    fn salvage(&self) -> SalvageReport {
        self.salvage.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EventKind, LogHeader, LOG_VERSION};
    use crate::log::{make_header, region_bytes};
    use std::sync::Arc;
    use tee_sim::SharedMem;

    fn entry(counter: u64, addr: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr,
            tid: 0,
        }
    }

    fn live_log(pid: u64, max_entries: u64) -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        SharedLog::init(shm, &make_header(pid, max_entries, true, 0, 0))
    }

    #[test]
    fn live_source_pumps_and_rotates_at_watermark() {
        let log = live_log(7, 8);
        let mut src = LiveLogSource::new(log.clone(), 75);
        assert_eq!(src.pid(), 7);
        assert!(!src.is_exhausted());
        for k in 1..=3u64 {
            log.write_live(&entry(k, 0x100 + k));
        }
        // Below the watermark (6 of 8): poll only, no rotation.
        let b = src.pump();
        assert_eq!(b.entries.len(), 3);
        assert!(!b.rotated);
        assert_eq!(src.epoch(), 0);
        for k in 4..=6u64 {
            log.write_live(&entry(k, 0x100 + k));
        }
        // At the watermark: poll + rotate.
        let b = src.pump();
        assert_eq!(b.entries.len(), 3);
        assert!(b.rotated);
        assert_eq!(b.epoch, 1);
        assert_eq!(src.rotations(), 1);
        assert_eq!(src.drained(), 6);
    }

    #[test]
    fn live_source_drain_to_end_forces_rotation() {
        let log = live_log(7, 8);
        let mut src = LiveLogSource::new(log.clone(), 75);
        log.write_live(&entry(1, 0x101));
        let b = src.drain_to_end();
        assert_eq!(b.entries.len(), 1);
        assert!(b.rotated);
        assert_eq!(log.epoch(), 1);
        assert_eq!(src.dropped_total(), 0);
    }

    #[test]
    fn replay_source_single_chunk() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 31,
            size: 4,
            tail: 6, // 2 dropped
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![entry(1, 0xa), entry(2, 0xb)]);
        let mut src = FileReplaySource::new(&file);
        assert_eq!(src.pid(), 31);
        assert_eq!(src.dropped_total(), 2);
        assert!(!src.is_exhausted());
        let b = src.pump();
        assert_eq!(b.entries.len(), 2);
        assert!(b.rotated);
        assert_eq!(b.dropped, 2, "drops reported with the exhausting batch");
        assert!(src.is_exhausted());
        let b = src.pump();
        assert!(b.entries.is_empty() && b.dropped == 0);
    }

    #[test]
    fn replay_source_chunked_reports_drops_once() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 31,
            size: 3,
            tail: 4,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![entry(1, 0xa), entry(2, 0xb), entry(3, 0xc)]);
        let mut src = FileReplaySource::new(&file).with_chunk(2).with_pid(99);
        assert_eq!(src.pid(), 99);
        let b1 = src.pump();
        assert_eq!(b1.entries.len(), 2);
        assert_eq!(b1.dropped, 0);
        assert_eq!(src.remaining(), 1);
        let b2 = src.drain_to_end();
        assert_eq!(b2.entries.len(), 1);
        assert_eq!(b2.dropped, 1);
        assert!(src.is_exhausted());
        let total: u64 = b1.dropped + b2.dropped + src.pump().dropped;
        assert_eq!(total, 1, "drops must be reported exactly once");
    }

    #[test]
    fn live_source_filters_torn_entries_and_accounts_them() {
        use crate::faults::{FaultKind, FaultPlan, FaultyWriter, SalvageReason};
        let log = live_log(7, 8);
        let plan = FaultPlan::new().with(FaultKind::TornEntry, 1);
        let mut w = FaultyWriter::new(log.clone(), plan);
        let mut src = LiveLogSource::new(log, 90);
        for k in 1..=3u64 {
            w.write_live(&entry(k, 0x100 + k));
        }
        let b = src.drain_to_end();
        assert_eq!(b.entries, w.published());
        let report = src.salvage();
        assert_eq!(report.kept, 2);
        assert_eq!(report.count(SalvageReason::TornEntry), 1);
        assert!(!src.is_dead());
    }

    #[test]
    fn live_source_closes_hole_left_by_stalled_writer() {
        use crate::faults::{FaultKind, FaultPlan, FaultyWriter, SalvageReason};
        let log = live_log(7, 16);
        let plan = FaultPlan::new().with(FaultKind::StalledWriter, 1);
        let mut w = FaultyWriter::new(log.clone(), plan);
        let mut src = LiveLogSource::new(log, 90).with_resilience(SourceResilience {
            stall_pumps: 2,
            ..SourceResilience::default()
        });
        w.write_live(&entry(1, 0x101));
        w.write_live(&entry(2, 0x102)); // stalls: slot 1 is a hole
        w.write_live(&entry(3, 0x103));
        let b = src.pump();
        assert_eq!(b.entries.len(), 1, "poll stops at the hole");
        // The first blocked pump starts the deadline clock; the second
        // closes the hole and picks up the entry beyond it in one pump.
        assert!(src.pump().entries.is_empty());
        let b = src.pump();
        assert_eq!(b.entries, vec![entry(3, 0x103)], "cursor skipped the hole");
        assert_eq!(src.salvage().count(SalvageReason::UnpublishedSlot), 1);
        // The stalled writer resuming later publishes into a slot the
        // cursor already passed: nothing is double-delivered.
        w.release_stall();
        assert!(src.pump().entries.is_empty());
        assert_eq!(src.drained(), 2);
    }

    #[test]
    fn live_source_recovers_from_writer_publishing_before_deadline() {
        use crate::faults::{FaultKind, FaultPlan, FaultyWriter};
        let log = live_log(7, 16);
        let plan = FaultPlan::new().with(FaultKind::StalledWriter, 0);
        let mut w = FaultyWriter::new(log.clone(), plan);
        let mut src = LiveLogSource::new(log, 90).with_resilience(SourceResilience {
            stall_pumps: 10,
            ..SourceResilience::default()
        });
        w.write_live(&entry(1, 0x101)); // stalls immediately
        w.write_live(&entry(2, 0x102));
        assert!(src.pump().entries.is_empty(), "blocked at slot 0");
        w.release_stall(); // resumes before the deadline
        let b = src.pump();
        assert_eq!(b.entries, vec![entry(1, 0x101), entry(2, 0x102)]);
        assert!(src.salvage().is_clean());
    }

    #[test]
    fn live_source_reclaims_crashed_writer_and_salvages_published_entries() {
        use crate::faults::{FaultKind, FaultPlan, FaultyWriter, SalvageReason};
        let log = live_log(7, 16);
        let plan = FaultPlan::new().with(FaultKind::WriterCrash, 2);
        let mut w = FaultyWriter::new(log.clone(), plan);
        let mut src = LiveLogSource::new(log, 90).with_resilience(SourceResilience {
            rotate_spin_limit: 32,
            max_rotation_stalls: 2,
            ..SourceResilience::default()
        });
        w.write_live(&entry(1, 0x101));
        w.write_live(&entry(2, 0x102));
        w.write_live(&entry(3, 0x103)); // crashes: announcement never withdrawn
                                        // Force path: the stalled rotation escalates to reclaim at once.
        let b = src.drain_to_end();
        assert_eq!(b.entries, w.published(), "published entries salvaged");
        assert!(b.rotated);
        let report = src.salvage();
        assert_eq!(report.count(SalvageReason::StalledRotation), 1);
        assert_eq!(report.count(SalvageReason::DeadWriterReclaimed), 1);
        assert_eq!(report.count(SalvageReason::UnpublishedSlot), 1);
        assert_eq!(src.log().writers_in_flight(), 0);
        // The log is usable again after the reclaim.
        src.log().write_live(&entry(4, 0x104));
        assert_eq!(src.pump().entries.len(), 1);
    }

    #[test]
    fn live_source_goes_dead_on_corrupted_header() {
        use crate::faults::{FaultKind, FaultPlan, FaultyWriter, SalvageReason};
        let log = live_log(7, 8);
        let plan = FaultPlan::new().with(FaultKind::CorruptHeader, 1);
        let mut w = FaultyWriter::new(log.clone(), plan);
        let mut src = LiveLogSource::new(log, 90);
        w.write_live(&entry(1, 0x101));
        assert_eq!(src.pump().entries.len(), 1);
        w.write_live(&entry(2, 0x102)); // smashes the header
        assert!(src.pump().entries.is_empty());
        assert!(src.is_dead());
        assert_eq!(src.salvage().count(SalvageReason::CorruptHeader), 1);
        // Dead is sticky and cheap: no further header reads, empty batches.
        assert!(src.drain_to_end().entries.is_empty());
        assert_eq!(src.salvage().count(SalvageReason::CorruptHeader), 1);
    }

    #[test]
    fn live_source_publishes_and_repairs_regime_word() {
        use crate::faults::SalvageReason;
        let log = live_log(7, 8);
        let mut src = LiveLogSource::new(log.clone(), 90);
        assert_eq!(src.regime(), Some(Regime::Full));
        assert_eq!(src.occupancy_pct(), Some(0));
        assert!(src.set_regime(Regime::sampled(4)));
        assert_eq!(log.regime_observed(), (Regime::Sampled(4), 1, false));
        for k in 1..=4u64 {
            log.write_live(&entry(k, 0x100 + k));
        }
        assert_eq!(src.occupancy_pct(), Some(50));
        // A hostile producer scribbles on the regime word: the next pump
        // falls back to Full, repairs the word at a fresh regime epoch,
        // and accounts the incident — no panic, nothing lost.
        log.shm()
            .write_u64(crate::layout::OFF_REGIME, 0xdead_beef_dead_beef)
            .unwrap();
        let b = src.pump();
        assert_eq!(b.entries.len(), 4);
        assert!(src.take_regime_fault());
        assert!(!src.take_regime_fault(), "fault flag is one-shot");
        assert_eq!(log.regime_observed(), (Regime::Sampled(4), 2, false));
        assert_eq!(src.salvage().count(SalvageReason::CorruptRegimeWord), 1);
        assert!(!src.is_dead());
        assert_eq!(src.regime(), Some(Regime::Sampled(4)));
    }

    #[test]
    fn replay_source_has_no_regime_transport() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 5,
            size: 4,
            tail: 1,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![entry(1, 0xa)]);
        let mut src = FileReplaySource::new(&file);
        assert!(!src.set_regime(Regime::Quiescent));
        assert_eq!(src.regime(), None);
        assert!(!src.take_regime_fault());
        assert_eq!(src.occupancy_pct(), None);
    }

    #[test]
    fn replay_source_filters_invalid_records() {
        use crate::faults::SalvageReason;
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 31,
            size: 8,
            tail: 4,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(
            header,
            vec![
                entry(1, 0xa),
                LogEntry::unpack([0, 0, 0]), // unpublished hole
                entry(3, 0),                 // torn
                entry(4, 0xb),
            ],
        );
        let prior = {
            let mut p = crate::faults::SalvageReport::default();
            p.drop_n(SalvageReason::TruncatedFile, 1);
            p
        };
        let mut src = FileReplaySource::new(&file).with_prior_salvage(&prior);
        let b = src.drain_to_end();
        assert_eq!(b.entries, vec![entry(1, 0xa), entry(4, 0xb)]);
        let report = src.salvage();
        assert_eq!(report.kept, 2);
        assert_eq!(report.count(SalvageReason::UnpublishedSlot), 1);
        assert_eq!(report.count(SalvageReason::TornEntry), 1);
        assert_eq!(report.count(SalvageReason::TruncatedFile), 1);
        assert_eq!(report.dropped, 3);
    }

    #[test]
    fn replay_of_empty_file_with_drops_still_reports_them() {
        let header = LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: false,
            version: LOG_VERSION,
            pid: 5,
            size: 0,
            tail: 3,
            anchor: 0,
            shm_addr: 0,
        };
        let file = LogFile::new(header, vec![]);
        let mut src = FileReplaySource::new(&file);
        assert!(!src.is_exhausted());
        let b = src.pump();
        assert!(b.entries.is_empty());
        assert_eq!(b.dropped, 3);
        assert!(src.is_exhausted());
    }
}
