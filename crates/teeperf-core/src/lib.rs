//! # teeperf-core — the TEE-Perf runtime (stages 1½ and 2 of the paper)
//!
//! This crate is the reproduction of TEE-Perf's primary contribution: an
//! architecture- and platform-independent method-level profiler runtime for
//! trusted execution environments (Bailleu et al., DSN 2019).
//!
//! It contains, mapped 1:1 onto the paper's §II-B:
//!
//! * [`layout`] — the bit-packed **log format** of Figure 2: a header with
//!   atomically mutable flags (active bit, call/return event mask,
//!   multithread bit, version), process id, maximum size, an atomically
//!   incremented tail index, the shared-memory mapping address and a
//!   profiler anchor address for relocation; plus 24-byte log entries
//!   packing a call/return bit with the counter value, the call/return
//!   target address, and the thread id.
//! * [`log`] — the **lock-free shared log**: writers reserve entries with a
//!   single fetch-and-add on the tail, so no critical section ever
//!   serializes the profiled threads (§II-C "Multithreading support").
//! * [`batch`] — **batched slot reservation**: a per-thread [`BatchWriter`]
//!   claims a run of slots with one tail fetch-and-add and publishes them
//!   one-by-one, amortizing the shared RMW that serializes writers at high
//!   thread counts; unpublished remainders are reclaimed by rotation as
//!   counted holes.
//! * [`counter`] — the **software counter**: a host thread incrementing a
//!   word in shared memory in a tight loop ([`counter::SpinCounter`],
//!   sacrificing a core, as in the paper), a deterministic simulated variant
//!   driven by the virtual clock ([`counter::SimCounter`]) and a
//!   TSC-style hardware counter ([`counter::TscCounter`]) for the
//!   counter-source ablation.
//! * [`fidelity`] — **fidelity regimes**: the shared regime word
//!   (`Full` / `Sampled(1-in-N)` / `Quiescent`) published by the live
//!   drainer and the writer-side [`fidelity::FidelityGate`] that admits
//!   pair-coherent 1-in-N samples, so an overloaded session degrades
//!   disclosedly instead of dropping entries silently.
//! * [`hooks`] — the **injected code**: the
//!   `__cyg_profile_func_enter`/`_exit` analogue that runs at every call
//!   and return inside the enclave, reads the counter, reserves a log slot
//!   and writes the entry — charging the simulated machine for every shared
//!   memory access it performs, which is exactly the overhead Figure 4
//!   measures.
//! * [`recorder`] — the **recorder wrapper**: sets up the shared memory
//!   region, initializes the log to a known state, runs the counter, and
//!   drains the log to a persistent [`file::LogFile`] when measurement ends.
//! * [`select`] — **selective code profiling** filters (§II-C).
//! * [`shm_file`] — the **cross-process transport**: the same log layout
//!   and publication discipline materialized in a file under `/dev/shm`,
//!   so genuinely separate OS processes feed one consumer without
//!   `unsafe` ([`shm_file::FileShmWriter`] / [`shm_file::FileShmSource`]).
//! * [`api`] — a native-Rust profiling API used by the workload substrates
//!   (LSM store, SPDK port) that are written in Rust rather than Mini-C;
//!   it plays the role of linking `profiler.h` into a C++ code base.

#![forbid(unsafe_code)]

pub mod api;
pub mod batch;
pub mod counter;
pub mod faults;
pub mod fidelity;
pub mod file;
pub mod hooks;
pub mod layout;
pub mod log;
pub mod plog;
pub mod recorder;
pub mod select;
pub mod shm_file;
pub mod source;

pub use api::{FunctionId, Probe, Profiler};
pub use batch::{BatchOutcome, BatchWriter};
pub use counter::{CounterSource, SimCounter, SpinCounter, TscCounter};
pub use faults::{
    ArmedFault, FaultKind, FaultPlan, FaultRng, FaultyWriter, SalvageReason, SalvageReport,
    WriteOutcome,
};
pub use fidelity::{decode_or_full, decode_regime, encode_regime, FidelityGate, Regime};
pub use file::LogFile;
pub use hooks::TeePerfHooks;
pub use layout::{
    EntryValidity, EventKind, LogEntry, LogHeader, ENTRY_BYTES, HEADER_BYTES, LOG_MAGIC,
    LOG_VERSION,
};
pub use log::{HeaderFault, LogCursor, RotationOutcome, RotationStall, SharedLog};
pub use plog::{PartitionedHooks, PartitionedLog};
pub use recorder::{Recorder, RecorderConfig};
pub use select::SelectiveFilter;
pub use shm_file::{FileShmSource, FileShmWriter, ShmFileError};
pub use source::{EventSource, FileReplaySource, LiveLogSource, SourceBatch, SourceResilience};
