//! Batched slot reservation: amortize the shared tail fetch-and-add.
//!
//! The classic hot path ([`SharedLog::write_live`]) pays one shared
//! `fetch_add` on the tail word per event, which serializes every writer
//! thread on one cache line at high thread counts. A [`BatchWriter`]
//! instead claims a *run* of `BATCH` slots with a single tail `fetch_add`
//! and publishes them one-by-one with the unchanged publication-word
//! discipline (address and tid first, kind+counter last), so the shared
//! RMW cost is paid once per `BATCH` events.
//!
//! ## Abandonment rules
//!
//! A claimed slot that is never published is *abandoned*, never dropped:
//!
//! * **Epoch rotation.** The rotation handshake is unchanged — every
//!   append announces on the control word and backs off while the
//!   rotating flag is set. A writer holding an unfinished run when the
//!   epoch rotates simply discards the remainder: the rotation that
//!   bumped the epoch already drained past those in-capacity slots,
//!   skipped them as word-0-zero holes, and counted them as abandoned.
//! * **Thread exit.** Dropping a [`BatchWriter`] needs no shared writes:
//!   the in-capacity remainder stays unpublished and the *next* rotation
//!   counts the holes.
//! * **Over-capacity hand-backs.** A reservation that lands partly or
//!   wholly past the end of the log gives the unusable slots straight
//!   back by adding to the epoch hand-back word
//!   ([`crate::layout::OFF_ABANDONED_EPOCH`]) — except that a fully
//!   out-of-range reservation keeps exactly one slot of tail overflow as
//!   the drop ticket for the event that failed to append. The hand-back
//!   happens while the writer is still announced, so rotation (which
//!   quiesces writers first) always reads a stable epoch word.
//!
//! Exactly-once drain is preserved because nothing about publication
//! changed: a slot is either published (word 0 non-zero, drained once) or
//! abandoned (word 0 zero, skipped and counted once by the rotation that
//! passes it). The `teeperf-check` model checker explores these
//! reserve-run/publish/abandon interleavings with a dedicated
//! abandon-accounting invariant.

use crate::layout::{
    EventKind, LogEntry, FLAG_ROTATING, OFF_ABANDONED_EPOCH, OFF_CONTROL, OFF_TAIL, WRITER_ONE,
};
use crate::log::SharedLog;

/// Per-thread batched writer over a [`SharedLog`]. Create one per writer
/// thread with [`SharedLog::batch_writer`]; it is deliberately `!Sync`-ish
/// in spirit (all methods take `&mut self`) — two threads sharing one
/// `BatchWriter` would interleave publications into the same run.
#[derive(Debug)]
pub struct BatchWriter {
    log: SharedLog,
    batch: u64,
    /// Next unpublished slot of the current run.
    run_start: u64,
    /// One past the last slot of the current run (== `run_start` when no
    /// run is held). Always `<= capacity`: over-capacity slots are handed
    /// back at reservation time and never enter the run.
    run_end: u64,
    /// Epoch the current run (and the `full` latch) belongs to.
    epoch: u64,
    /// The current epoch's log is full: reservations degrade to single
    /// slots so each failing append leaves exactly one drop ticket.
    full: bool,
    handed_back: u64,
    discarded: u64,
    reservations: u64,
}

/// What one [`BatchWriter::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Slot the entry was published into, or `None` if it was dropped
    /// because the current epoch's log is full.
    pub slot: Option<u64>,
    /// Whether this append performed a shared tail reservation (the cost
    /// the batching amortizes — at most one per `batch` appends while the
    /// log has room).
    pub reserved: bool,
}

impl SharedLog {
    /// A per-thread [`BatchWriter`] claiming `batch` slots per tail
    /// reservation. `batch <= 1` degrades to classic one-slot-per-event
    /// semantics (still rotation-aware, like [`SharedLog::write_live`]).
    pub fn batch_writer(&self, batch: u64) -> BatchWriter {
        BatchWriter {
            log: self.clone(),
            batch: batch.max(1),
            run_start: 0,
            run_end: 0,
            epoch: self.epoch(),
            full: false,
            handed_back: 0,
            discarded: 0,
            reservations: 0,
        }
    }
}

impl BatchWriter {
    /// Slots claimed per tail reservation.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Slots of the current run still reserved but unpublished. These
    /// become counted holes if the writer exits (or the epoch rotates)
    /// before publishing them.
    pub fn pending(&self) -> u64 {
        self.run_end - self.run_start
    }

    /// Over-capacity slots handed straight back at reservation time.
    pub fn handed_back(&self) -> u64 {
        self.handed_back
    }

    /// In-capacity run slots discarded because the epoch rotated under
    /// them (already counted as holes by the rotation that did it).
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Shared tail reservations performed so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Rotation-aware batched append. Returns where the entry landed and
    /// whether a shared tail reservation was needed; `slot` is `None` when
    /// the entry was dropped because the current epoch's log is full (the
    /// drop is accounted against the header at the next rotation, exactly
    /// like [`SharedLog::write_live`]).
    pub fn append(&mut self, entry: &LogEntry) -> BatchOutcome {
        let shm = self.log.shm();
        // Announce on the control word exactly like `write_live`: back off
        // while a rotation is in progress. Once announced, the epoch is
        // frozen — rotation quiesces writers before touching anything.
        loop {
            let prev = shm
                .fetch_add_u64(OFF_CONTROL, WRITER_ONE)
                .expect("header in range");
            if prev & FLAG_ROTATING == 0 {
                break;
            }
            shm.fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
                .expect("header in range");
            while shm.read_u64(OFF_CONTROL).expect("header in range") & FLAG_ROTATING != 0 {
                // Through the seam, not std::hint::spin_loop(), so a model
                // checker can park this thread until the drainer writes.
                shm.spin_hint();
            }
        }
        // The run (and the full latch) belong to one epoch. If the log
        // rotated since the last append, the rotation already counted our
        // leftover run slots as holes — just forget them.
        let epoch = self.log.epoch();
        if epoch != self.epoch {
            self.discarded += self.run_end - self.run_start;
            self.run_start = 0;
            self.run_end = 0;
            self.full = false;
            self.epoch = epoch;
        }
        let mut reserved = false;
        if self.run_start == self.run_end {
            reserved = true;
            self.reservations += 1;
            let size = self.log.capacity();
            // Once the epoch is known full, claim single slots: each
            // failing append then leaves exactly one slot of tail overflow
            // as its drop ticket, like the classic path.
            let want = if self.full { 1 } else { self.batch };
            let start = shm.fetch_add_u64(OFF_TAIL, want).expect("header in range");
            if start >= size {
                // Whole run out of range: this event drops. Keep one slot
                // of overflow as the drop ticket, hand the rest back. The
                // hand-back is safe here because we are still announced,
                // so the rotation that will read the epoch word has not
                // started its drain yet.
                self.full = true;
                if want > 1 {
                    shm.fetch_add_u64(OFF_ABANDONED_EPOCH, want - 1)
                        .expect("header in range");
                    self.handed_back += want - 1;
                }
                shm.fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
                    .expect("header in range");
                return BatchOutcome {
                    slot: None,
                    reserved,
                };
            }
            if start + want > size {
                // Straddling run: keep the in-capacity prefix, hand back
                // the rest (no event attempted those slots, so no drop
                // ticket is owed for them).
                self.full = true;
                let over = start + want - size;
                shm.fetch_add_u64(OFF_ABANDONED_EPOCH, over)
                    .expect("header in range");
                self.handed_back += over;
                self.run_start = start;
                self.run_end = size;
            } else {
                self.run_start = start;
                self.run_end = start + want;
            }
        }
        // Publish into the next run slot with the unchanged discipline:
        // address and tid first, the kind+counter word last, so a
        // concurrent poll that sees a non-zero word 0 sees a complete
        // entry.
        let slot = self.run_start;
        self.run_start += 1;
        let off = LogEntry::offset_of(slot);
        let words = entry.pack();
        shm.write_u64(off + 8, words[1]).expect("entry in range");
        shm.write_u64(off + 16, words[2]).expect("entry in range");
        shm.write_u64(off, words[0]).expect("entry in range");
        shm.fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
            .expect("header in range");
        BatchOutcome {
            slot: Some(slot),
            reserved,
        }
    }

    /// Whether an event of `kind` should currently be recorded (forwards
    /// to the underlying log's control word).
    pub fn should_record(&self, kind: EventKind) -> bool {
        self.log.should_record(kind)
    }

    /// The underlying log handle.
    pub fn log(&self) -> &SharedLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{make_header, region_bytes, LogCursor};
    use proptest::prelude::*;
    use std::sync::Arc;
    use tee_sim::SharedMem;

    fn fresh(max_entries: u64) -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        SharedLog::init(
            shm,
            &make_header(77, max_entries, true, 0x40_0000, tee_sim::SHM_BASE),
        )
    }

    fn entry(counter: u64, addr: u64, tid: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr,
            tid,
        }
    }

    #[test]
    fn one_reservation_covers_a_whole_run() {
        let log = fresh(16);
        let mut w = log.batch_writer(4);
        for k in 0..8u64 {
            let out = w.append(&entry(k + 1, 0x100 + k, 0));
            assert_eq!(out.slot, Some(k));
            assert_eq!(out.reserved, k % 4 == 0, "reserve once per 4 appends");
        }
        assert_eq!(w.reservations(), 2);
        assert_eq!(w.pending(), 0);
        assert_eq!(log.header().tail, 8);
        let mut cursor = LogCursor::default();
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 8);
        assert_eq!((out.dropped, out.abandoned), (0, 0));
    }

    #[test]
    fn batch_of_one_matches_classic_semantics() {
        let log = fresh(2);
        let mut w = log.batch_writer(1);
        assert_eq!(w.append(&entry(1, 0x100, 0)).slot, Some(0));
        assert_eq!(w.append(&entry(2, 0x101, 0)).slot, Some(1));
        let out = w.append(&entry(3, 0x102, 0));
        assert_eq!(out.slot, None, "full log drops like write_live");
        assert!(out.reserved);
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.abandoned_total(), 0, "no hand-backs at batch 1");
    }

    #[test]
    fn exit_remainder_becomes_counted_holes() {
        let log = fresh(16);
        {
            let mut w = log.batch_writer(8);
            // Publish 3 of the 8 reserved slots, then "exit" (drop).
            for k in 0..3u64 {
                w.append(&entry(k + 1, 0x100 + k, 0));
            }
            assert_eq!(w.pending(), 5);
        }
        let mut cursor = LogCursor::default();
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 3);
        assert_eq!(out.abandoned, 5, "exact remainder reported as holes");
        assert_eq!(out.dropped, 0);
        assert_eq!(log.abandoned_total(), 5);
        assert_eq!(log.dropped_total(), 0);
    }

    #[test]
    fn straddling_run_hands_back_over_capacity_slots() {
        let log = fresh(6);
        let mut w = log.batch_writer(4);
        for k in 0..4u64 {
            assert!(w.append(&entry(k + 1, 0x100 + k, 0)).slot.is_some());
        }
        // Next reservation claims [4, 8) against capacity 6: slots 6 and 7
        // are handed back, the run is [4, 6).
        assert_eq!(w.append(&entry(5, 0x104, 0)).slot, Some(4));
        assert_eq!(w.handed_back(), 2);
        assert_eq!(log.abandoned_total(), 2);
        assert_eq!(w.append(&entry(6, 0x105, 0)).slot, Some(5));
        // Epoch now known full: appends degrade to single-slot drop
        // tickets, one per failing event.
        let out = w.append(&entry(7, 0x106, 0));
        assert_eq!(out.slot, None);
        assert!(out.reserved);
        assert_eq!(w.handed_back(), 2, "full-epoch retries hand nothing back");
        assert_eq!(log.dropped_total(), 1);
        let mut cursor = LogCursor::default();
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 6);
        assert_eq!((out.dropped, out.abandoned), (1, 2));
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.abandoned_total(), 2);
    }

    #[test]
    fn fully_out_of_range_run_keeps_one_drop_ticket() {
        let log = fresh(4);
        let mut w = log.batch_writer(4);
        for k in 0..4u64 {
            assert!(w.append(&entry(k + 1, 0x100 + k, 0)).slot.is_some());
        }
        // Reservation [4, 8) is entirely out of range: this event drops
        // (ticket = 1 overflow slot) and 3 slots are handed back.
        assert_eq!(w.append(&entry(5, 0x104, 0)).slot, None);
        assert_eq!(w.handed_back(), 3);
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.abandoned_total(), 3);
        // Two more drops at one ticket each.
        assert_eq!(w.append(&entry(6, 0x105, 0)).slot, None);
        assert_eq!(w.append(&entry(7, 0x106, 0)).slot, None);
        assert_eq!(log.dropped_total(), 3);
        assert_eq!(log.abandoned_total(), 3);
    }

    #[test]
    fn rotation_discards_the_stale_run_and_resets_the_full_latch() {
        let log = fresh(4);
        let mut w = log.batch_writer(4);
        // Fill the epoch and latch `full`.
        for k in 0..4u64 {
            w.append(&entry(k + 1, 0x100 + k, 0));
        }
        assert_eq!(w.append(&entry(5, 0x104, 0)).slot, None);
        let mut cursor = LogCursor::default();
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 4);
        assert_eq!((out.dropped, out.abandoned), (1, 3));
        // The next append sees the new epoch: fresh run from slot 0, full
        // latch cleared, batch-sized reservation again.
        let out = w.append(&entry(9, 0x200, 0));
        assert_eq!(out.slot, Some(0));
        assert!(out.reserved);
        assert_eq!(log.header().tail, 4, "batch-sized claim in the new epoch");
    }

    #[test]
    fn concurrent_batch_writers_drain_exactly_once() {
        let log = fresh(256);
        let per_thread = 2_000u64;
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                let mut w = log.batch_writer(8);
                let mut written = 0u64;
                for k in 0..per_thread {
                    if w.append(&entry(k + 1, t * 1_000_000 + k + 1, t))
                        .slot
                        .is_some()
                    {
                        written += 1;
                    }
                }
                (written, w.pending())
            }));
        }
        let drainer = {
            let log = log.clone();
            std::thread::spawn(move || {
                let mut cursor = LogCursor::default();
                let mut drained = Vec::new();
                loop {
                    drained.extend(log.poll(&mut cursor));
                    let out = log.rotate(&mut cursor);
                    drained.extend(out.entries);
                    if log.writers_in_flight() == 0
                        && drained.len() as u64 + log.dropped_total() >= 3 * per_thread
                    {
                        break;
                    }
                    std::thread::yield_now();
                }
                drained
            })
        };
        let mut written = 0u64;
        let mut exit_pending = 0u64;
        for h in handles {
            let (w, p) = h.join().unwrap();
            written += w;
            exit_pending += p;
        }
        let drained = drainer.join().unwrap();
        assert_eq!(drained.len() as u64, written);
        assert_eq!(written + log.dropped_total(), 3 * per_thread);
        let mut addrs: Vec<u64> = drained.iter().map(|e| e.addr).collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "no entry may be drained twice");
        // One final rotation picks up the exit remainders as holes.
        let mut cursor = LogCursor {
            epoch: log.epoch(),
            index: 0,
        };
        log.rotate(&mut cursor);
        assert!(log.abandoned_total() >= exit_pending);
    }

    proptest! {
        /// Batched recording (any batch size) drains to the byte-identical
        /// entry sequence an unbatched run produces on the same workload —
        /// including across mid-workload rotations — with zero drops and
        /// exact abandonment accounting for the exit remainder.
        #[test]
        fn prop_batched_equals_unbatched(
            batch in 1u64..=16,
            events in 1usize..60,
            rotate_at in proptest::collection::vec(0usize..60, 0..3),
        ) {
            let capacity = 128;
            let workload: Vec<LogEntry> =
                (0..events).map(|k| entry(k as u64 + 1, 0x1000 + k as u64, 0)).collect();

            let run = |batched: bool| -> Result<(Vec<LogEntry>, u64, u64), TestCaseError> {
                let log = fresh(capacity);
                let mut cursor = LogCursor::default();
                let mut drained = Vec::new();
                let mut w = log.batch_writer(if batched { batch } else { 1 });
                for (k, e) in workload.iter().enumerate() {
                    prop_assert!(w.append(e).slot.is_some(), "capacity covers the workload");
                    if rotate_at.contains(&k) {
                        drained.extend(log.rotate(&mut cursor).entries);
                    }
                }
                drop(w);
                drained.extend(log.rotate(&mut cursor).entries);
                Ok((drained, log.dropped_total(), log.abandoned_total()))
            };

            let (batched, b_dropped, b_abandoned) = run(true)?;
            let (unbatched, u_dropped, u_abandoned) = run(false)?;
            prop_assert_eq!(&batched, &unbatched, "drained sequences must be identical");
            prop_assert_eq!(batched.len(), events);
            prop_assert_eq!((b_dropped, u_dropped), (0, 0));
            prop_assert_eq!(u_abandoned, 0, "batch 1 never abandons");
            // Byte-identical packing, not just struct equality.
            let b_bytes: Vec<[u64; 3]> = batched.iter().map(LogEntry::pack).collect();
            let u_bytes: Vec<[u64; 3]> = unbatched.iter().map(LogEntry::pack).collect();
            prop_assert_eq!(b_bytes, u_bytes);
            // Every abandoned slot is a counted remainder: reservations
            // claimed `batch` slots at a time, events consumed `events` of
            // them, rotations plus exit abandoned the rest.
            prop_assert!(b_abandoned < rotate_at.len() as u64 * batch + batch);
        }
    }
}
