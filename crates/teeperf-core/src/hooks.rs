//! The injected profiling code (the paper's `__cyg_profile_func_enter` /
//! `__cyg_profile_func_exit` bodies).
//!
//! Every instrumented call and return executes [`TeePerfHooks::record`]:
//!
//! 1. run the injected instructions themselves (a fixed cycle cost —
//!    the paper injects 389 LoC of C, heavily inlined),
//! 2. atomically read the control word; bail if tracing is off or the
//!    event kind is masked,
//! 3. consult the selective-profiling filter, if any,
//! 4. read the software counter from shared memory (or the hardware TSC),
//! 5. reserve a log slot with one fetch-and-add on the tail,
//! 6. write the 24-byte entry.
//!
//! Each shared-memory access is charged to the simulated [`Machine`], so
//! the *measured overhead of the profiler is produced by the same mechanism
//! that produces it on real hardware*: extra instructions and extra memory
//! traffic on every call/return. The hook never takes a lock and never
//! blocks — matching §II-C's lock-free design.

use tee_sim::{Machine, SHM_BASE};

use crate::batch::BatchWriter;
use crate::counter::CounterSource;
use crate::fidelity::FidelityGate;
use crate::layout::{
    EventKind, LogEntry, ENTRY_BYTES, OFF_CONTROL, OFF_COUNTER, OFF_REGIME, OFF_TAIL,
};
use crate::log::SharedLog;
use crate::select::SelectiveFilter;

/// Default cycle cost of executing the injected instructions themselves
/// (register spills, branch, address computation — everything except the
/// shared-memory traffic, which is charged separately).
pub const DEFAULT_INJECTED_CYCLES: u64 = 80;

/// Extra cycles to pull the software-counter cache line: the counter
/// thread on another core rewrites it continuously, so every read is a
/// cross-core coherence transfer, never a local hit.
pub const COUNTER_CROSS_CORE_CYCLES: u64 = 180;

/// Extra cycles for the lock-prefixed fetch-and-add on the tail word:
/// serialization plus the coherence traffic of a line shared by every
/// profiled thread.
pub const TAIL_RMW_CYCLES: u64 = 180;

/// The runtime half of TEE-Perf's instrumentation: writes log entries from
/// inside the enclave.
pub struct TeePerfHooks {
    log: SharedLog,
    counter: Box<dyn CounterSource>,
    filter: Option<SelectiveFilter>,
    injected_cycles: u64,
    counter_in_shm: bool,
    live: bool,
    batch: Option<BatchWriter>,
    gate: Option<FidelityGate>,
    events_recorded: u64,
    events_suppressed: u64,
}

impl std::fmt::Debug for TeePerfHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeePerfHooks")
            .field("counter", &self.counter.name())
            .field("filtered", &self.filter.is_some())
            .field("events_recorded", &self.events_recorded)
            .finish()
    }
}

impl TeePerfHooks {
    /// Hooks writing to `log`, timestamping with `counter`.
    pub fn new(log: SharedLog, counter: Box<dyn CounterSource>) -> TeePerfHooks {
        let counter_in_shm = counter.name() != "hardware-tsc";
        TeePerfHooks {
            log,
            counter,
            filter: None,
            injected_cycles: DEFAULT_INJECTED_CYCLES,
            counter_in_shm,
            live: false,
            batch: None,
            gate: None,
            events_recorded: 0,
            events_suppressed: 0,
        }
    }

    /// Switch to the rotation-aware [`SharedLog::write_live`] append path,
    /// so a concurrent drainer may rotate the log mid-run. The announce /
    /// withdraw RMWs ride on the same header cache line already charged for
    /// the tail RMW, so an instrumented run is cycle-identical in batch and
    /// live mode — the convergence tests rely on that.
    pub fn with_live_writes(mut self) -> TeePerfHooks {
        self.live = true;
        self
    }

    /// Batch slot reservation: claim `slots` log slots per shared tail
    /// fetch-and-add instead of one, amortizing the hottest RMW across
    /// `slots` events (see [`crate::batch`]). `slots <= 1` keeps the
    /// classic one-RMW-per-event path. The batched path announces and
    /// withdraws on the control word per append (like
    /// [`TeePerfHooks::with_live_writes`]), so it is rotation-aware and
    /// works under a concurrent drainer in either mode.
    pub fn with_batch_slots(mut self, slots: u64) -> TeePerfHooks {
        self.batch = if slots > 1 {
            Some(self.log.batch_writer(slots))
        } else {
            None
        };
        self
    }

    /// Restrict recording with a selective-profiling filter.
    pub fn with_filter(mut self, filter: SelectiveFilter) -> TeePerfHooks {
        self.filter = Some(filter);
        self
    }

    /// Honour the fidelity regime word with a [`FidelityGate`]: under
    /// `Sampled(N)` only one in `N` call/return pairs is recorded (the
    /// pair's events skip the counter read, the tail RMW and the entry
    /// write entirely, which is where the overhead reduction comes from),
    /// and under `Quiescent` nothing is. The gate re-reads the shared
    /// regime word every [`crate::fidelity::GATE_REFRESH_EVERY`] events,
    /// amortizing the extra shared load; a session without a budget never
    /// publishes anything but `Full`, so the gate is then a no-op.
    pub fn with_fidelity_gate(mut self) -> TeePerfHooks {
        self.gate = Some(FidelityGate::new());
        self
    }

    /// Override the fixed cost of the injected instructions (ablations).
    pub fn with_injected_cycles(mut self, cycles: u64) -> TeePerfHooks {
        self.injected_cycles = cycles;
        self
    }

    /// Events written to the log so far.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Events skipped by the filter, the control word, or the fidelity
    /// gate.
    pub fn events_suppressed(&self) -> u64 {
        self.events_suppressed
    }

    /// The armed fidelity gate, if any (regime + sampling statistics).
    pub fn fidelity_gate(&self) -> Option<&FidelityGate> {
        self.gate.as_ref()
    }

    /// The shared log handle (e.g. for mid-run toggling in tests).
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// The hot path: record one call/return event.
    pub fn record(&mut self, machine: &mut Machine, kind: EventKind, addr: u64, tid: u64) {
        // 1. The injected instructions themselves.
        machine.compute(self.injected_cycles);

        // 2. Atomic read of the control word (lives in untrusted memory).
        machine.read(SHM_BASE + OFF_CONTROL, 8);
        if !self.log.should_record(kind) {
            self.events_suppressed += 1;
            return;
        }

        // 3. Selective profiling.
        if let Some(filter) = &self.filter {
            if !filter.allows(addr) {
                self.events_suppressed += 1;
                return;
            }
        }

        // 3½. The fidelity gate. A suppressed event bails before the
        // counter read and the tail RMW — the expensive shared traffic —
        // which is exactly how `Sampled` buys back overhead.
        if let Some(gate) = &mut self.gate {
            if gate.needs_refresh() {
                machine.read(SHM_BASE + OFF_REGIME, 8);
                gate.observe(self.log.regime_word());
            }
            if !gate.admit(tid, kind) {
                self.events_suppressed += 1;
                return;
            }
        }

        // 4. Timestamp. The counter line is perpetually dirty in the
        // counter thread's core, so the read is a cross-core transfer.
        if self.counter_in_shm {
            machine.read(SHM_BASE + OFF_COUNTER, 8);
            machine.compute(COUNTER_CROSS_CORE_CYCLES);
        }
        machine.compute(self.counter.read_cycles());
        let counter = self.counter.read();

        let entry = LogEntry {
            kind,
            counter,
            addr,
            tid,
        };

        // 5+6. Slot reservation and the entry write. The classic paths pay
        // one locked RMW on the tail word per event; the batched path only
        // pays it on the appends that actually reserve a fresh run — that
        // amortization is exactly the contention the batching removes.
        if let Some(batch) = &mut self.batch {
            let out = batch.append(&entry);
            if out.reserved {
                machine.read(SHM_BASE + OFF_TAIL, 8);
                machine.write(SHM_BASE + OFF_TAIL, 8);
                machine.compute(TAIL_RMW_CYCLES);
            }
            if let Some(index) = out.slot {
                machine.write(SHM_BASE + LogEntry::offset_of(index), ENTRY_BYTES);
                self.events_recorded += 1;
            }
        } else if self.live {
            machine.read(SHM_BASE + OFF_TAIL, 8);
            machine.write(SHM_BASE + OFF_TAIL, 8);
            machine.compute(TAIL_RMW_CYCLES);
            if let Some(index) = self.log.write_live(&entry) {
                machine.write(SHM_BASE + LogEntry::offset_of(index), ENTRY_BYTES);
                self.events_recorded += 1;
            }
        } else {
            machine.read(SHM_BASE + OFF_TAIL, 8);
            machine.write(SHM_BASE + OFF_TAIL, 8);
            machine.compute(TAIL_RMW_CYCLES);
            let index = self.log.reserve();
            if self.log.write_entry(index, &entry) {
                machine.write(SHM_BASE + LogEntry::offset_of(index), ENTRY_BYTES);
                self.events_recorded += 1;
            }
        }
    }
}

impl mcvm::ProfilerHooks for TeePerfHooks {
    fn on_enter(&mut self, machine: &mut Machine, fn_entry_addr: u64, tid: u64) {
        self.record(machine, EventKind::Call, fn_entry_addr, tid);
    }

    fn on_exit(&mut self, machine: &mut Machine, fn_entry_addr: u64, tid: u64) {
        self.record(machine, EventKind::Return, fn_entry_addr, tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SimCounter;
    use crate::log::{make_header, region_bytes};
    use std::sync::Arc;
    use tee_sim::{CostModel, SharedMem};

    fn setup(max_entries: u64) -> (SharedLog, Machine) {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        let log = SharedLog::init(
            Arc::clone(&shm),
            &make_header(1, max_entries, true, 0, SHM_BASE),
        );
        let mut machine = Machine::new(CostModel::sgx_v1());
        machine.map_shared(shm);
        machine.ecall();
        (log, machine)
    }

    fn sim_hooks(log: &SharedLog, machine: &Machine) -> TeePerfHooks {
        TeePerfHooks::new(
            log.clone(),
            Box::new(SimCounter::standard(machine.clock().clone())),
        )
    }

    #[test]
    fn record_writes_decodable_entry() {
        let (log, mut machine) = setup(8);
        let mut hooks = sim_hooks(&log, &machine);
        machine.compute(400); // let the counter advance
        hooks.record(&mut machine, EventKind::Call, 0xABCD, 5);
        let entries = log.drain_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, EventKind::Call);
        assert_eq!(entries[0].addr, 0xABCD);
        assert_eq!(entries[0].tid, 5);
        assert!(entries[0].counter >= 100);
        assert_eq!(hooks.events_recorded(), 1);
    }

    #[test]
    fn record_charges_the_machine() {
        let (log, mut machine) = setup(8);
        let mut hooks = sim_hooks(&log, &machine);
        let t0 = machine.clock().now();
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        let charged = machine.clock().now() - t0;
        assert!(
            charged >= DEFAULT_INJECTED_CYCLES + 20,
            "hook must cost real cycles, charged {charged}"
        );
    }

    #[test]
    fn inactive_log_suppresses_and_costs_less() {
        let (log, mut machine) = setup(8);
        let mut hooks = sim_hooks(&log, &machine);
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        log.set_active(false);
        let t0 = machine.clock().now();
        hooks.record(&mut machine, EventKind::Call, 2, 0);
        let suppressed_cost = machine.clock().now() - t0;
        assert_eq!(log.drain_entries().len(), 1);
        assert_eq!(hooks.events_suppressed(), 1);
        // A suppressed event only pays the injected code + control read —
        // far less than a recorded one.
        assert!(suppressed_cost < DEFAULT_INJECTED_CYCLES + 300);
    }

    #[test]
    fn event_mask_suppresses_returns() {
        let shm = Arc::new(SharedMem::new(region_bytes(8)));
        let mut header = make_header(1, 8, false, 0, SHM_BASE);
        header.trace_returns = false;
        let log = SharedLog::init(Arc::clone(&shm), &header);
        let mut machine = Machine::new(CostModel::sgx_v1());
        machine.map_shared(shm);
        machine.ecall();
        let mut hooks = sim_hooks(&log, &machine);
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        hooks.record(&mut machine, EventKind::Return, 1, 0);
        let entries = log.drain_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, EventKind::Call);
    }

    #[test]
    fn filter_suppresses_unselected_functions() {
        let (log, mut machine) = setup(8);
        let mut hooks =
            sim_hooks(&log, &machine).with_filter(crate::select::SelectiveFilter::include([100]));
        hooks.record(&mut machine, EventKind::Call, 100, 0);
        hooks.record(&mut machine, EventKind::Call, 200, 0);
        let entries = log.drain_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].addr, 100);
        assert_eq!(hooks.events_suppressed(), 1);
    }

    #[test]
    fn full_log_keeps_counting_but_stops_writing() {
        let (log, mut machine) = setup(2);
        let mut hooks = sim_hooks(&log, &machine);
        for i in 0..5 {
            hooks.record(&mut machine, EventKind::Call, i, 0);
        }
        assert_eq!(hooks.events_recorded(), 2);
        assert_eq!(log.header().dropped_entries(), 3);
    }

    #[test]
    fn batched_hooks_amortize_the_tail_rmw() {
        let run = |slots: u64| -> (u64, usize) {
            let (log, mut machine) = setup(64);
            let tsc = crate::counter::TscCounter::new(machine.clock().clone(), 30);
            let mut hooks = TeePerfHooks::new(log.clone(), Box::new(tsc)).with_batch_slots(slots);
            let t0 = machine.clock().now();
            for i in 0..32 {
                hooks.record(&mut machine, EventKind::Call, 0x1000 + i, 0);
            }
            (machine.clock().now() - t0, log.drain_entries().len())
        };
        let (classic_cycles, classic_entries) = run(1);
        let (batched_cycles, batched_entries) = run(8);
        assert_eq!(classic_entries, 32);
        assert_eq!(batched_entries, 32, "batching must not change the data");
        // 32 events: classic pays 32 tail RMWs, batch-8 pays 4 — the gap
        // must show up in the charged cycles.
        assert!(
            batched_cycles + 20 * TAIL_RMW_CYCLES <= classic_cycles,
            "batched {batched_cycles} vs classic {classic_cycles}"
        );
    }

    #[test]
    fn batched_full_log_still_counts_drops() {
        let (log, mut machine) = setup(2);
        let mut hooks = sim_hooks(&log, &machine).with_batch_slots(4);
        for i in 0..5 {
            hooks.record(&mut machine, EventKind::Call, i + 1, 0);
        }
        assert_eq!(hooks.events_recorded(), 2);
        // 3 events dropped; the 2 over-capacity slots of the straddling
        // run are abandoned, not dropped.
        assert_eq!(log.dropped_total(), 3);
        assert_eq!(log.abandoned_total(), 2);
    }

    #[test]
    fn counters_are_monotone_across_events() {
        let (log, mut machine) = setup(32);
        let mut hooks = sim_hooks(&log, &machine);
        for i in 0..10 {
            machine.compute(50);
            hooks.record(&mut machine, EventKind::Call, i, 0);
        }
        let entries = log.drain_entries();
        for w in entries.windows(2) {
            assert!(w[0].counter <= w[1].counter);
        }
    }

    #[test]
    fn tsc_counter_skips_shm_read_but_pays_latency() {
        let (log, mut machine) = setup(8);
        let tsc = crate::counter::TscCounter::new(machine.clock().clone(), 30);
        let mut hooks = TeePerfHooks::new(log.clone(), Box::new(tsc));
        let t0 = machine.clock().now();
        hooks.record(&mut machine, EventKind::Call, 1, 0);
        assert!(machine.clock().now() - t0 >= 30);
        // The TSC records raw cycles (not counter ticks): the timestamp must
        // sit between the hook start and its completion.
        let c = log.drain_entries()[0].counter;
        assert!(
            c > t0 && c < machine.clock().now(),
            "tsc {c} outside hook window"
        );
    }

    #[test]
    fn fidelity_gate_cuts_recorded_events_and_cycles() {
        use crate::fidelity::Regime;
        let run = |regime: Option<Regime>| -> (u64, u64) {
            let (log, mut machine) = setup(4096);
            if let Some(r) = regime {
                log.set_regime(r, 1);
            }
            let mut hooks = sim_hooks(&log, &machine).with_live_writes();
            if regime.is_some() {
                hooks = hooks.with_fidelity_gate();
            }
            let t0 = machine.clock().now();
            for i in 0..512u64 {
                hooks.record(&mut machine, EventKind::Call, 0x1000 + i, 0);
                hooks.record(&mut machine, EventKind::Return, 0x1000 + i, 0);
            }
            (machine.clock().now() - t0, hooks.events_recorded())
        };
        let (full_cycles, full_recorded) = run(None);
        let (gated_full_cycles, gated_full_recorded) = run(Some(Regime::Full));
        let (sampled_cycles, sampled_recorded) = run(Some(Regime::Sampled(8)));
        let (quiet_cycles, quiet_recorded) = run(Some(Regime::Quiescent));
        assert_eq!(full_recorded, 1024);
        assert_eq!(gated_full_recorded, 1024, "Full gate admits everything");
        // The gate's refresh reads are the only extra cost under Full.
        assert!(gated_full_cycles < full_cycles + full_cycles / 10);
        // ~1/8 of pairs admitted; allow wide slack on the hashed draw.
        assert!(
            sampled_recorded < 1024 / 4,
            "sampled recorded {sampled_recorded}"
        );
        assert_eq!(sampled_recorded % 2, 0, "pairs stay whole");
        assert!(
            sampled_cycles < full_cycles / 2,
            "sampling must cut measured overhead: {sampled_cycles} vs {full_cycles}"
        );
        assert_eq!(quiet_recorded, 0);
        assert!(quiet_cycles < sampled_cycles);
    }

    #[test]
    fn vm_trait_wiring_records_calls_and_returns() {
        use mcvm::ProfilerHooks as _;
        let (log, mut machine) = setup(8);
        let mut hooks = sim_hooks(&log, &machine);
        hooks.on_enter(&mut machine, 0x40_0000, 1);
        hooks.on_exit(&mut machine, 0x40_0000, 1);
        let entries = log.drain_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, EventKind::Call);
        assert_eq!(entries[1].kind, EventKind::Return);
        assert_eq!(entries[0].tid, 1);
    }
}
