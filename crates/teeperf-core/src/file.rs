//! The persistent log file the recorder writes after measurement and the
//! analyzer reads offline.
//!
//! A simple, versioned little-endian binary format:
//!
//! ```text
//! magic   8 bytes  "TPERFLG1"
//! header  6 words  control, pid, size, tail, anchor, shm_addr
//! count   1 word   number of entries that follow
//! entries count × 3 words
//! ```

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::faults::{SalvageReason, SalvageReport};
use crate::layout::{LogEntry, LogHeader, LOG_VERSION};

const MAGIC: &[u8; 8] = b"TPERFLG1";

/// Errors reading or writing a log file.
#[derive(Debug)]
pub enum LogFileError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a valid log file.
    Malformed(String),
    /// The header carries a log-format version this build does not speak;
    /// parsing the body would be interpreting garbage.
    VersionMismatch {
        /// Version found in the header control word.
        found: u16,
        /// The version this build writes ([`LOG_VERSION`]).
        expected: u16,
    },
    /// A header field contradicts the file's own length (e.g. more entries
    /// than `max_size` slots, or more entries than the tail ever reserved).
    Inconsistent {
        /// Which header field is being contradicted.
        what: &'static str,
        /// Value implied by the file contents.
        found: u64,
        /// Bound claimed by the header.
        limit: u64,
    },
}

impl fmt::Display for LogFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogFileError::Io(e) => write!(f, "log file i/o error: {e}"),
            LogFileError::Malformed(msg) => write!(f, "malformed log file: {msg}"),
            LogFileError::VersionMismatch { found, expected } => write!(
                f,
                "log version mismatch: file is v{found}, this build reads v{expected}"
            ),
            LogFileError::Inconsistent { what, found, limit } => write!(
                f,
                "inconsistent log header: {found} entries on disk but {what} is {limit}"
            ),
        }
    }
}

impl Error for LogFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogFileError {
    fn from(e: std::io::Error) -> Self {
        LogFileError::Io(e)
    }
}

/// A drained, persistent profiling log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFile {
    /// The header as of drain time.
    pub header: LogHeader,
    /// The recorded entries in reservation order.
    pub entries: Vec<LogEntry>,
}

impl LogFile {
    /// Bundle a header and entries into a log file.
    pub fn new(header: LogHeader, entries: Vec<LogEntry>) -> LogFile {
        LogFile { header, entries }
    }

    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 7 * 8 + self.entries.len() * 24);
        out.extend_from_slice(MAGIC);
        let h = &self.header;
        for w in [
            h.pack_control(),
            h.pid,
            h.size,
            h.tail,
            h.anchor,
            h.shm_addr,
            self.entries.len() as u64,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for e in &self.entries {
            for w in e.pack() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parse the magic, header words and declared count; the shared prefix
    /// of strict and salvage parsing.
    fn parse_header(bytes: &[u8]) -> Result<(LogHeader, u64), LogFileError> {
        let word = |i: usize| -> Result<u64, LogFileError> {
            let start = 8 + i * 8;
            let chunk: [u8; 8] = bytes
                .get(start..start + 8)
                .ok_or_else(|| LogFileError::Malformed("truncated header".into()))?
                .try_into()
                .expect("slice of length 8");
            Ok(u64::from_le_bytes(chunk))
        };
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(LogFileError::Malformed("bad magic".into()));
        }
        let control = word(0)?;
        let (active, trace_calls, trace_returns, multithread, version) =
            LogHeader::unpack_control(control);
        if version != LOG_VERSION {
            return Err(LogFileError::VersionMismatch {
                found: version,
                expected: LOG_VERSION,
            });
        }
        let header = LogHeader {
            active,
            trace_calls,
            trace_returns,
            multithread,
            version,
            pid: word(1)?,
            size: word(2)?,
            tail: word(3)?,
            anchor: word(4)?,
            shm_addr: word(5)?,
        };
        let count = word(6)?;
        Ok((header, count))
    }

    fn decode_entries(body: &[u8]) -> Vec<LogEntry> {
        body.chunks_exact(24)
            .map(|c| {
                let w = |i: usize| {
                    u64::from_le_bytes(c[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
                };
                LogEntry::unpack([w(0), w(1), w(2)])
            })
            .collect()
    }

    /// Parse the on-disk byte format, strictly.
    ///
    /// # Errors
    /// Returns [`LogFileError::Malformed`] on a bad magic, truncation, or an
    /// implausible entry count; [`LogFileError::VersionMismatch`] when the
    /// header version is not [`LOG_VERSION`]; [`LogFileError::Inconsistent`]
    /// when the entry count contradicts the header's `max_size` or tail.
    pub fn from_bytes(bytes: &[u8]) -> Result<LogFile, LogFileError> {
        let (header, count) = LogFile::parse_header(bytes)?;
        let body = &bytes[8 + 7 * 8..];
        if body.len() as u64 != count * 24 {
            return Err(LogFileError::Malformed(format!(
                "expected {count} entries ({} bytes), found {} bytes",
                count * 24,
                body.len()
            )));
        }
        if count > header.size {
            return Err(LogFileError::Inconsistent {
                what: "max_size",
                found: count,
                limit: header.size,
            });
        }
        if count > header.tail {
            return Err(LogFileError::Inconsistent {
                what: "tail",
                found: count,
                limit: header.tail,
            });
        }
        Ok(LogFile {
            header,
            entries: LogFile::decode_entries(body),
        })
    }

    /// Parse the on-disk byte format, salvaging what a strict parse would
    /// reject: a truncated entry region keeps every complete 24-byte entry
    /// (dropping the cut one), torn or never-published records are skipped,
    /// and a count/size/tail inconsistency is clamped rather than fatal.
    /// The report accounts for every record given up on.
    ///
    /// # Errors
    /// Still fails on damage with nothing behind it to salvage: a bad
    /// magic, a truncated header, or a [`LogFileError::VersionMismatch`]
    /// (entries of a foreign version would be decoded as garbage).
    pub fn from_bytes_salvage(bytes: &[u8]) -> Result<(LogFile, SalvageReport), LogFileError> {
        let (header, count) = LogFile::parse_header(bytes)?;
        let mut report = SalvageReport::default();
        let body = &bytes[8 + 7 * 8..];
        let complete = (body.len() / 24) as u64;
        let expected = count.max(complete);
        if expected > complete {
            // Entries the header promised (or a partial trailing record)
            // that the file no longer holds.
            report.drop_n(SalvageReason::TruncatedFile, expected - complete);
        } else if !body.len().is_multiple_of(24) {
            report.drop_n(SalvageReason::TruncatedFile, 1);
        }
        let raw = LogFile::decode_entries(&body[..(complete * 24) as usize]);
        let entries = report.filter_entries(raw);
        Ok((LogFile { header, entries }, report))
    }

    /// Write the log to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LogFileError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read a log from a file.
    ///
    /// # Errors
    /// Propagates I/O failures and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<LogFile, LogFileError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        LogFile::from_bytes(&bytes)
    }

    /// Read a log from a file via [`LogFile::from_bytes_salvage`].
    ///
    /// # Errors
    /// Propagates I/O failures and unsalvageable format errors.
    pub fn load_salvage(path: impl AsRef<Path>) -> Result<(LogFile, SalvageReport), LogFileError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        LogFile::from_bytes_salvage(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EventKind, LOG_VERSION};
    use proptest::prelude::*;

    fn sample() -> LogFile {
        LogFile::new(
            LogHeader {
                active: false,
                trace_calls: true,
                trace_returns: true,
                multithread: true,
                version: LOG_VERSION,
                pid: 42,
                size: 100,
                tail: 2,
                anchor: 0x40_0000,
                shm_addr: tee_sim::SHM_BASE,
            },
            vec![
                LogEntry {
                    kind: EventKind::Call,
                    counter: 10,
                    addr: 0x40_0000,
                    tid: 0,
                },
                LogEntry {
                    kind: EventKind::Return,
                    counter: 20,
                    addr: 0x40_0000,
                    tid: 0,
                },
            ],
        )
    }

    #[test]
    fn byte_round_trip() {
        let f = sample();
        assert_eq!(LogFile::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("teeperf-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let f = sample();
        f.save(&path).unwrap();
        assert_eq!(LogFile::load(&path).unwrap(), f);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let f = sample();
        let mut b = f.to_bytes();
        b[0] = b'X';
        assert!(matches!(
            LogFile::from_bytes(&b),
            Err(LogFileError::Malformed(_))
        ));
        let b = f.to_bytes();
        assert!(LogFile::from_bytes(&b[..b.len() - 1]).is_err());
        assert!(LogFile::from_bytes(&b[..20]).is_err());
        assert!(LogFile::from_bytes(b"").is_err());
    }

    #[test]
    fn count_mismatch_detected() {
        let f = sample();
        let mut b = f.to_bytes();
        // Claim three entries while only two follow.
        let off = 8 + 6 * 8;
        b[off..off + 8].copy_from_slice(&3u64.to_le_bytes());
        assert!(LogFile::from_bytes(&b).is_err());
    }

    #[test]
    fn rejects_foreign_version_with_typed_error() {
        let mut f = sample();
        f.header.version = LOG_VERSION + 1;
        let b = f.to_bytes();
        match LogFile::from_bytes(&b) {
            Err(LogFileError::VersionMismatch { found, expected }) => {
                assert_eq!(found, LOG_VERSION + 1);
                assert_eq!(expected, LOG_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        // Salvage refuses too: a foreign version's entries are garbage.
        assert!(matches!(
            LogFile::from_bytes_salvage(&b),
            Err(LogFileError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_header_inconsistent_with_file_length() {
        // More entries than max_size slots could ever hold.
        let mut f = sample();
        f.header.size = 1;
        match LogFile::from_bytes(&f.to_bytes()) {
            Err(LogFileError::Inconsistent { what, found, limit }) => {
                assert_eq!(what, "max_size");
                assert_eq!((found, limit), (2, 1));
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        // More entries than the tail ever reserved.
        let mut f = sample();
        f.header.tail = 1;
        assert!(matches!(
            LogFile::from_bytes(&f.to_bytes()),
            Err(LogFileError::Inconsistent { what: "tail", .. })
        ));
        // Salvage clamps instead of erroring.
        let (salvaged, report) = LogFile::from_bytes_salvage(&f.to_bytes()).unwrap();
        assert_eq!(salvaged.entries.len(), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn salvage_keeps_complete_entries_of_a_truncated_file() {
        let f = sample();
        let b = f.to_bytes();
        // Cut mid-way through the second entry.
        let cut = b.len() - 10;
        let (salvaged, report) = LogFile::from_bytes_salvage(&b[..cut]).unwrap();
        assert_eq!(salvaged.entries, f.entries[..1]);
        assert_eq!(report.kept, 1);
        assert_eq!(report.count(super::SalvageReason::TruncatedFile), 1);
        // Strict parsing still rejects the same bytes.
        assert!(LogFile::from_bytes(&b[..cut]).is_err());
        // A cut inside the header is beyond salvage.
        assert!(LogFile::from_bytes_salvage(&b[..40]).is_err());
    }

    #[test]
    fn salvage_skips_torn_and_unpublished_records() {
        let mut f = sample();
        f.header.size = 4;
        f.header.tail = 4;
        f.entries.push(LogEntry {
            kind: EventKind::Call,
            counter: 9,
            addr: 0,
            tid: 0,
        }); // torn
        f.entries.push(LogEntry::unpack([0, 0, 0])); // unpublished hole
        let (salvaged, report) = LogFile::from_bytes_salvage(&f.to_bytes()).unwrap();
        assert_eq!(salvaged.entries.len(), 2);
        assert_eq!(report.kept, 2);
        assert_eq!(report.count(super::SalvageReason::TornEntry), 1);
        assert_eq!(report.count(super::SalvageReason::UnpublishedSlot), 1);
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            pid: u64, size: u64, tail: u64, anchor: u64,
            raw_entries in proptest::collection::vec((any::<bool>(), 0u64..(1<<62), any::<u64>(), any::<u64>()), 0..64),
        ) {
            let entries: Vec<LogEntry> = raw_entries.iter().map(|(c, counter, addr, tid)| LogEntry {
                kind: if *c { EventKind::Call } else { EventKind::Return },
                counter: *counter, addr: *addr, tid: *tid,
            }).collect();
            let n = entries.len() as u64;
            let f = LogFile::new(LogHeader {
                active: true, trace_calls: false, trace_returns: true, multithread: false,
                version: LOG_VERSION, pid, size: size.max(n), tail: tail.max(n), anchor, shm_addr: 0,
            }, entries);
            prop_assert_eq!(LogFile::from_bytes(&f.to_bytes()).unwrap(), f);
        }

        #[test]
        fn prop_salvage_never_panics_and_accounts_everything(
            cut in 0usize..512,
            flips in proptest::collection::vec((64usize..512, any::<u8>()), 0..4),
        ) {
            let f = sample();
            let mut b = f.to_bytes();
            for (pos, val) in flips {
                if pos < b.len() { b[pos] = val; }
            }
            let cut = cut.min(b.len());
            b.truncate(cut);
            // Must never panic; when it parses, the books must balance.
            if let Ok((salvaged, report)) = LogFile::from_bytes_salvage(&b) {
                prop_assert_eq!(salvaged.entries.len() as u64, report.kept);
            }
        }
    }
}
