//! The persistent log file the recorder writes after measurement and the
//! analyzer reads offline.
//!
//! A simple, versioned little-endian binary format:
//!
//! ```text
//! magic   8 bytes  "TPERFLG1"
//! header  6 words  control, pid, size, tail, anchor, shm_addr
//! count   1 word   number of entries that follow
//! entries count × 3 words
//! ```

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::layout::{LogEntry, LogHeader};

const MAGIC: &[u8; 8] = b"TPERFLG1";

/// Errors reading or writing a log file.
#[derive(Debug)]
pub enum LogFileError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a valid log file.
    Malformed(String),
}

impl fmt::Display for LogFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogFileError::Io(e) => write!(f, "log file i/o error: {e}"),
            LogFileError::Malformed(msg) => write!(f, "malformed log file: {msg}"),
        }
    }
}

impl Error for LogFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogFileError::Io(e) => Some(e),
            LogFileError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for LogFileError {
    fn from(e: std::io::Error) -> Self {
        LogFileError::Io(e)
    }
}

/// A drained, persistent profiling log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFile {
    /// The header as of drain time.
    pub header: LogHeader,
    /// The recorded entries in reservation order.
    pub entries: Vec<LogEntry>,
}

impl LogFile {
    /// Bundle a header and entries into a log file.
    pub fn new(header: LogHeader, entries: Vec<LogEntry>) -> LogFile {
        LogFile { header, entries }
    }

    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 7 * 8 + self.entries.len() * 24);
        out.extend_from_slice(MAGIC);
        let h = &self.header;
        for w in [
            h.pack_control(),
            h.pid,
            h.size,
            h.tail,
            h.anchor,
            h.shm_addr,
            self.entries.len() as u64,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for e in &self.entries {
            for w in e.pack() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parse the on-disk byte format.
    ///
    /// # Errors
    /// Returns [`LogFileError::Malformed`] on a bad magic, truncation, or an
    /// implausible entry count.
    pub fn from_bytes(bytes: &[u8]) -> Result<LogFile, LogFileError> {
        let word = |i: usize| -> Result<u64, LogFileError> {
            let start = 8 + i * 8;
            let chunk: [u8; 8] = bytes
                .get(start..start + 8)
                .ok_or_else(|| LogFileError::Malformed("truncated header".into()))?
                .try_into()
                .expect("slice of length 8");
            Ok(u64::from_le_bytes(chunk))
        };
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(LogFileError::Malformed("bad magic".into()));
        }
        let control = word(0)?;
        let (active, trace_calls, trace_returns, multithread, version) =
            LogHeader::unpack_control(control);
        let header = LogHeader {
            active,
            trace_calls,
            trace_returns,
            multithread,
            version,
            pid: word(1)?,
            size: word(2)?,
            tail: word(3)?,
            anchor: word(4)?,
            shm_addr: word(5)?,
        };
        let count = word(6)? as usize;
        let body = &bytes[8 + 7 * 8..];
        if body.len() != count * 24 {
            return Err(LogFileError::Malformed(format!(
                "expected {count} entries ({} bytes), found {} bytes",
                count * 24,
                body.len()
            )));
        }
        let entries = body
            .chunks_exact(24)
            .map(|c| {
                let w = |i: usize| {
                    u64::from_le_bytes(c[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
                };
                LogEntry::unpack([w(0), w(1), w(2)])
            })
            .collect();
        Ok(LogFile { header, entries })
    }

    /// Write the log to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LogFileError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read a log from a file.
    ///
    /// # Errors
    /// Propagates I/O failures and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<LogFile, LogFileError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        LogFile::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EventKind, LOG_VERSION};
    use proptest::prelude::*;

    fn sample() -> LogFile {
        LogFile::new(
            LogHeader {
                active: false,
                trace_calls: true,
                trace_returns: true,
                multithread: true,
                version: LOG_VERSION,
                pid: 42,
                size: 100,
                tail: 2,
                anchor: 0x40_0000,
                shm_addr: tee_sim::SHM_BASE,
            },
            vec![
                LogEntry {
                    kind: EventKind::Call,
                    counter: 10,
                    addr: 0x40_0000,
                    tid: 0,
                },
                LogEntry {
                    kind: EventKind::Return,
                    counter: 20,
                    addr: 0x40_0000,
                    tid: 0,
                },
            ],
        )
    }

    #[test]
    fn byte_round_trip() {
        let f = sample();
        assert_eq!(LogFile::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("teeperf-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let f = sample();
        f.save(&path).unwrap();
        assert_eq!(LogFile::load(&path).unwrap(), f);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let f = sample();
        let mut b = f.to_bytes();
        b[0] = b'X';
        assert!(matches!(
            LogFile::from_bytes(&b),
            Err(LogFileError::Malformed(_))
        ));
        let b = f.to_bytes();
        assert!(LogFile::from_bytes(&b[..b.len() - 1]).is_err());
        assert!(LogFile::from_bytes(&b[..20]).is_err());
        assert!(LogFile::from_bytes(b"").is_err());
    }

    #[test]
    fn count_mismatch_detected() {
        let f = sample();
        let mut b = f.to_bytes();
        // Claim three entries while only two follow.
        let off = 8 + 6 * 8;
        b[off..off + 8].copy_from_slice(&3u64.to_le_bytes());
        assert!(LogFile::from_bytes(&b).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            pid: u64, size: u64, tail: u64, anchor: u64,
            raw_entries in proptest::collection::vec((any::<bool>(), 0u64..(1<<62), any::<u64>(), any::<u64>()), 0..64),
        ) {
            let entries: Vec<LogEntry> = raw_entries.iter().map(|(c, counter, addr, tid)| LogEntry {
                kind: if *c { EventKind::Call } else { EventKind::Return },
                counter: *counter, addr: *addr, tid: *tid,
            }).collect();
            let f = LogFile::new(LogHeader {
                active: true, trace_calls: false, trace_returns: true, multithread: false,
                version: LOG_VERSION, pid, size, tail, anchor, shm_addr: 0,
            }, entries);
            prop_assert_eq!(LogFile::from_bytes(&f.to_bytes()).unwrap(), f);
        }
    }
}
