//! The lock-free shared-memory log.
//!
//! One [`SharedLog`] wraps an untrusted [`SharedMem`] region laid out per
//! [`crate::layout`]. Writers (the injected code inside the enclave) reserve
//! an entry with a single fetch-and-add on the tail word and then fill the
//! three entry words; there is no lock anywhere on the hot path, so — as
//! the paper argues — profiling never introduces a critical section that
//! could distort the measured application's concurrency behaviour.
//!
//! All methods here perform the *data* movement; the *cycle cost* of the
//! enclave-side accesses is charged by [`crate::hooks`], which knows it is
//! running inside the simulated machine.

use std::sync::Arc;

use tee_sim::SharedMem;

use std::error::Error;
use std::fmt;

use crate::fidelity::{self, Regime};
use crate::layout::{
    EventKind, LogEntry, LogHeader, ENTRY_BYTES, FLAG_ACTIVE, FLAG_ROTATING, FLAG_TRACE_CALLS,
    FLAG_TRACE_RETURNS, HEADER_BYTES, LOG_MAGIC, LOG_VERSION, OFF_ABANDONED, OFF_ABANDONED_EPOCH,
    OFF_ANCHOR, OFF_CONTROL, OFF_COUNTER, OFF_DROPPED, OFF_EPOCH, OFF_MAGIC, OFF_PID, OFF_REGIME,
    OFF_SHM_ADDR, OFF_SIZE, OFF_TAIL, WRITERS_MASK, WRITER_ONE,
};

/// A handle onto the shared log. Cheap to clone; clones alias the same
/// underlying region (like two mappings of the same shared memory).
#[derive(Debug, Clone)]
pub struct SharedLog {
    shm: Arc<SharedMem>,
    size: u64,
    /// Armed protocol mutation (verification builds only; see [`mutation`]).
    #[cfg(feature = "mutation-testing")]
    mutation: mutation::Mutation,
}

/// Re-introducible historical bug classes, used by the `teeperf-check`
/// model checker to prove it has teeth (ISSUE 6 "mutation mode").
///
/// Each variant is a concurrency bug this protocol actually shipped with
/// and later fixed by hand-review; the checker must find every one within
/// a bounded schedule budget. The whole module only exists under the
/// `mutation-testing` feature, and even then every mutation is off unless
/// armed per-handle with [`SharedLog::with_mutation`].
#[cfg(feature = "mutation-testing")]
pub mod mutation {
    /// Which (if any) historical bug to re-introduce into the rotation.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
    pub enum Mutation {
        /// The protocol as shipped today: no bug.
        #[default]
        None,
        /// PR-1 bug class (stale-slot resurrection): rotation does not
        /// zero the drained slots' publication words, so `poll` in the
        /// next epoch can mistake a leftover word 0 for a freshly
        /// published entry on a slot that is reserved but not yet
        /// written.
        SkipSlotClear,
        /// PR-1-review / PR-5 bug class (drop double-counting): rotation
        /// accumulates the closing epoch's overflow into the cumulative
        /// dropped word *before* resetting the tail, so a concurrent
        /// `dropped_total` reader can observe the same drops in both
        /// words at once.
        CountDropsBeforeTailReset,
        /// Batched-reservation bug class (abandoned-as-dropped): rotation
        /// counts the closing epoch's over-capacity batch hand-backs as
        /// overflow *drops* while also accounting them as abandoned, so
        /// every hand-back is charged twice and the drop total no longer
        /// equals attempts minus written.
        CountAbandonedAsDropped,
        /// Fidelity-regime bug class (torn regime read): the reader loads
        /// the regime word twice and recombines the first load's low half
        /// (regime epoch) with the second load's high half (tag + N),
        /// then decodes *without* the check-byte validation — fabricating
        /// an `(N, regime epoch)` pairing that was never published when a
        /// regime change lands between the two loads.
        TornRegimeRead,
    }
}

/// Bytes of shared memory needed for a log of `max_entries`.
pub fn region_bytes(max_entries: u64) -> u64 {
    HEADER_BYTES + max_entries * ENTRY_BYTES
}

impl SharedLog {
    /// Initialize a fresh log in `shm` (host side, before the application
    /// starts — the paper's "initialize the shared memory to a known
    /// state"). `shm_addr` is the address at which the region is mapped
    /// inside the enclave and `anchor` the profiler anchor function address.
    ///
    /// # Panics
    /// Panics if `shm` is too small for even one entry.
    pub fn init(shm: Arc<SharedMem>, header: &LogHeader) -> SharedLog {
        assert!(
            shm.size() >= region_bytes(1),
            "shared region too small for a log"
        );
        let max_entries = (shm.size() - HEADER_BYTES) / ENTRY_BYTES;
        let size = header.size.min(max_entries);
        shm.write_u64(OFF_CONTROL, header.pack_control())
            .expect("header in range");
        shm.write_u64(OFF_PID, header.pid).expect("header in range");
        shm.write_u64(OFF_SIZE, size).expect("header in range");
        shm.write_u64(OFF_TAIL, 0).expect("header in range");
        shm.write_u64(OFF_ANCHOR, header.anchor)
            .expect("header in range");
        shm.write_u64(OFF_SHM_ADDR, header.shm_addr)
            .expect("header in range");
        shm.write_u64(OFF_COUNTER, 0).expect("header in range");
        shm.write_u64(OFF_EPOCH, 0).expect("header in range");
        shm.write_u64(OFF_DROPPED, 0).expect("header in range");
        shm.write_u64(OFF_MAGIC, LOG_MAGIC)
            .expect("header in range");
        shm.write_u64(OFF_ABANDONED, 0).expect("header in range");
        shm.write_u64(OFF_ABANDONED_EPOCH, 0)
            .expect("header in range");
        // The all-zero regime word is the valid encoding of Full @ regime
        // epoch 0 (see `crate::fidelity`).
        shm.write_u64(OFF_REGIME, 0).expect("header in range");
        SharedLog {
            shm,
            size,
            #[cfg(feature = "mutation-testing")]
            mutation: mutation::Mutation::None,
        }
    }

    /// Attach to an already initialized log (e.g. the enclave side mapping
    /// the region the recorder prepared).
    pub fn attach(shm: Arc<SharedMem>) -> SharedLog {
        let size = shm.read_u64(OFF_SIZE).expect("header in range");
        SharedLog {
            shm,
            size,
            #[cfg(feature = "mutation-testing")]
            mutation: mutation::Mutation::None,
        }
    }

    /// Arm a protocol [`mutation::Mutation`] on this handle (verification
    /// builds only). Mutations act where the handle performs the mutated
    /// step — both rotation mutations take effect on the drainer's handle.
    #[cfg(feature = "mutation-testing")]
    #[must_use]
    pub fn with_mutation(mut self, mutation: mutation::Mutation) -> SharedLog {
        self.mutation = mutation;
        self
    }

    /// The underlying shared region.
    pub fn shm(&self) -> &Arc<SharedMem> {
        &self.shm
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> u64 {
        self.size
    }

    /// Read and decode the current header.
    pub fn header(&self) -> LogHeader {
        let control = self.shm.read_u64(OFF_CONTROL).expect("header in range");
        let (active, trace_calls, trace_returns, multithread, version) =
            LogHeader::unpack_control(control);
        LogHeader {
            active,
            trace_calls,
            trace_returns,
            multithread,
            version,
            pid: self.shm.read_u64(OFF_PID).expect("header in range"),
            size: self.shm.read_u64(OFF_SIZE).expect("header in range"),
            tail: self.shm.read_u64(OFF_TAIL).expect("header in range"),
            anchor: self.shm.read_u64(OFF_ANCHOR).expect("header in range"),
            shm_addr: self.shm.read_u64(OFF_SHM_ADDR).expect("header in range"),
        }
    }

    /// Atomically read the control word (the hot-path "is tracing on" check).
    pub fn control_word(&self) -> u64 {
        self.shm.read_u64(OFF_CONTROL).expect("header in range")
    }

    /// Whether an event of `kind` should currently be recorded.
    pub fn should_record(&self, kind: EventKind) -> bool {
        let c = self.control_word();
        c & FLAG_ACTIVE != 0
            && match kind {
                EventKind::Call => c & FLAG_TRACE_CALLS != 0,
                EventKind::Return => c & FLAG_TRACE_RETURNS != 0,
            }
    }

    /// Atomically flip the active bit (dynamic de-/activation, §II-B).
    pub fn set_active(&self, active: bool) {
        if active {
            self.shm
                .fetch_or_u64(OFF_CONTROL, FLAG_ACTIVE)
                .expect("header in range");
        } else {
            self.shm
                .fetch_and_u64(OFF_CONTROL, !FLAG_ACTIVE)
                .expect("header in range");
        }
    }

    /// Current value of the software-counter word.
    pub fn counter_value(&self) -> u64 {
        self.shm.read_u64(OFF_COUNTER).expect("header in range")
    }

    /// Host-side: store a new counter value (what the spin thread does).
    pub fn store_counter(&self, v: u64) {
        self.shm.write_u64(OFF_COUNTER, v).expect("header in range");
    }

    /// Reserve the next entry slot via fetch-and-add; returns the absolute
    /// index, which may be `>= capacity()` when the log is full (the write
    /// is then dropped but the tail keeps counting, so the analyzer can
    /// report how many entries were lost).
    pub fn reserve(&self) -> u64 {
        self.shm
            .fetch_add_u64(OFF_TAIL, 1)
            .expect("header in range")
    }

    /// Write `entry` into the reserved slot `index`. Returns `false` (and
    /// writes nothing) if the slot is beyond capacity.
    pub fn write_entry(&self, index: u64, entry: &LogEntry) -> bool {
        if index >= self.size {
            return false;
        }
        let off = LogEntry::offset_of(index);
        let words = entry.pack();
        for (i, w) in words.iter().enumerate() {
            self.shm
                .write_u64(off + (i as u64) * 8, *w)
                .expect("entry in range");
        }
        true
    }

    /// Read back the entry at `index` (host side / tests).
    ///
    /// # Panics
    /// Panics if `index >= capacity()`.
    pub fn read_entry(&self, index: u64) -> LogEntry {
        assert!(index < self.size, "entry index out of range");
        let off = LogEntry::offset_of(index);
        let words = self.shm.read_words(off, 3).expect("entry in range");
        LogEntry::unpack([words[0], words[1], words[2]])
    }

    /// Snapshot all stored entries (host side, after measurement).
    pub fn drain_entries(&self) -> Vec<LogEntry> {
        let stored = self.header().stored_entries();
        (0..stored).map(|i| self.read_entry(i)).collect()
    }

    // ---- continuous-profiling (live) API --------------------------------
    //
    // Batch mode never touches anything below: the recorder stops the
    // writers, then drains. A live drainer instead consumes the log while
    // writers keep appending, and "rotates" the log (reset tail, bump
    // epoch) whenever it has caught up or the log is near capacity.

    /// Number of completed drain rotations.
    pub fn epoch(&self) -> u64 {
        self.shm.read_u64(OFF_EPOCH).expect("header in range")
    }

    /// Writers currently inside [`SharedLog::write_live`].
    pub fn writers_in_flight(&self) -> u64 {
        (self.control_word() & WRITERS_MASK) >> WRITER_ONE.trailing_zeros()
    }

    /// Entries dropped on overflow, summed over all completed epochs plus
    /// the overflow of the current epoch.
    ///
    /// Exact from the drainer thread (between its [`SharedLog::rotate`]
    /// calls). From any other thread, a rotation in progress may
    /// transiently *under*-report while the closing epoch's drops move
    /// from the header tail into the cumulative word — rotate orders the
    /// two stores so the sum never counts the same drop twice.
    ///
    /// The sum spans three header words, so the reads are bracketed
    /// seqlock-style: part of the current epoch's tail overflow may be
    /// batch hand-backs (slots a reservation claimed past the end and
    /// immediately gave back — abandoned, not dropped), and subtracting a
    /// hand-back word read *before* a concurrent hand-back landed against
    /// a tail read *after* it would over-count. Retrying until the
    /// hand-back and epoch words are stable across the snapshot keeps the
    /// only residual tear the cumulative-word one, which orders as an
    /// under-count (the cumulative word is read before the tail, and
    /// rotation resets the tail before folding into it).
    pub fn dropped_total(&self) -> u64 {
        loop {
            let epoch = self.epoch();
            let handed_back = self
                .shm
                .read_u64(OFF_ABANDONED_EPOCH)
                .expect("header in range");
            let completed = self.shm.read_u64(OFF_DROPPED).expect("header in range");
            let overflow = self.header().dropped_entries();
            let handed_back_after = self
                .shm
                .read_u64(OFF_ABANDONED_EPOCH)
                .expect("header in range");
            if handed_back_after == handed_back && self.epoch() == epoch {
                return completed + overflow.saturating_sub(handed_back);
            }
        }
    }

    /// Batch-reserved slots that were never published, summed over all
    /// completed epochs plus the current epoch's over-capacity hand-backs.
    /// In-capacity holes of the *current* epoch (a batch run a writer has
    /// reserved but not yet published, or left behind at exit) are only
    /// counted when the next rotation drains past them.
    ///
    /// Exact from the drainer thread; from any other thread a rotation in
    /// progress may transiently under-report while the epoch word folds
    /// into the cumulative word (same once-only discipline as
    /// [`SharedLog::dropped_total`]).
    pub fn abandoned_total(&self) -> u64 {
        let completed = self.shm.read_u64(OFF_ABANDONED).expect("header in range");
        let epoch = self
            .shm
            .read_u64(OFF_ABANDONED_EPOCH)
            .expect("header in range");
        completed + epoch
    }

    /// Rotation-aware append: announce on the control word, back off while
    /// a rotation is in progress, then reserve and publish. Returns the slot
    /// index the entry landed in, or `None` if it was dropped because the
    /// current epoch's log is full (the drop is accounted against the
    /// header at the next rotation).
    ///
    /// The entry words are written address/tid first and the kind+counter
    /// word last, so a concurrent [`SharedLog::poll`] that sees a non-zero
    /// word 0 sees a fully published entry.
    pub fn write_live(&self, entry: &LogEntry) -> Option<u64> {
        loop {
            let prev = self
                .shm
                .fetch_add_u64(OFF_CONTROL, WRITER_ONE)
                .expect("header in range");
            if prev & FLAG_ROTATING == 0 {
                break;
            }
            // A rotation is in progress: withdraw the announcement and wait
            // for the drainer to finish, then try again.
            self.shm
                .fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
                .expect("header in range");
            while self.control_word() & FLAG_ROTATING != 0 {
                // Through the seam, not std::hint::spin_loop(), so a model
                // checker can park this thread until the drainer writes.
                self.shm.spin_hint();
            }
        }
        let index = self.reserve();
        let stored = if index < self.size {
            let off = LogEntry::offset_of(index);
            let words = entry.pack();
            self.shm
                .write_u64(off + 8, words[1])
                .expect("entry in range");
            self.shm
                .write_u64(off + 16, words[2])
                .expect("entry in range");
            self.shm.write_u64(off, words[0]).expect("entry in range");
            Some(index)
        } else {
            None
        };
        self.shm
            .fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
            .expect("header in range");
        stored
    }

    /// Read all entries published since the cursor's position without
    /// stopping the writers. Advances the cursor. Stops early at the first
    /// slot whose kind+counter word is still zero (either not yet published
    /// or a return at counter zero — both are picked up by the next
    /// [`SharedLog::rotate`], which reads after writers have quiesced).
    ///
    /// # Panics
    /// Panics if the cursor belongs to a previous epoch; only the single
    /// drainer that owns the cursor may rotate the log.
    pub fn poll(&self, cursor: &mut LogCursor) -> Vec<LogEntry> {
        assert_eq!(
            cursor.epoch,
            self.epoch(),
            "stale cursor: the log rotated without this cursor"
        );
        let stored = self.header().stored_entries();
        let mut out = Vec::new();
        while cursor.index < stored {
            let off = LogEntry::offset_of(cursor.index);
            let words = self.shm.read_words(off, 3).expect("entry in range");
            if words[0] == 0 {
                break;
            }
            out.push(LogEntry::unpack([words[0], words[1], words[2]]));
            cursor.index += 1;
        }
        out
    }

    /// Verify the header's integrity words: the magic written at init, the
    /// structure version, and the size word against the capacity this
    /// handle attached with. A writer that scribbled over the header (or a
    /// region that was never initialized) fails here, and the caller knows
    /// not to trust the tail, epoch or dropped words either.
    ///
    /// # Errors
    /// The first [`HeaderFault`] found, most fundamental first (a bad magic
    /// masks everything else).
    pub fn verify_header(&self) -> Result<(), HeaderFault> {
        let magic = self.shm.read_u64(OFF_MAGIC).expect("header in range");
        if magic != LOG_MAGIC {
            return Err(HeaderFault::BadMagic { found: magic });
        }
        let (_, _, _, _, version) = LogHeader::unpack_control(self.control_word());
        if version != LOG_VERSION {
            return Err(HeaderFault::BadVersion { found: version });
        }
        let size = self.shm.read_u64(OFF_SIZE).expect("header in range");
        if size != self.size {
            return Err(HeaderFault::SizeMismatch {
                found: size,
                expected: self.size,
            });
        }
        Ok(())
    }

    /// Rotate the log: block new writers, wait for in-flight writers to
    /// finish, drain every entry the cursor has not seen, account overflow
    /// drops, reset the tail, and open the next epoch. Writers that arrive
    /// during the rotation spin in [`SharedLog::write_live`] (bounded by
    /// the drain, which is O(capacity)) — the workload is never stopped.
    ///
    /// Waits for in-flight writers forever; a writer that died inside
    /// [`SharedLog::write_live`] hangs this call. Crash-resilient drainers
    /// use [`SharedLog::try_rotate`] instead.
    pub fn rotate(&self, cursor: &mut LogCursor) -> RotationOutcome {
        self.try_rotate(cursor, u64::MAX)
            .expect("unbounded quiesce cannot stall")
    }

    /// [`SharedLog::rotate`] with a bounded quiesce: give in-flight writers
    /// `spin_limit` spin iterations to publish and leave. If any writer is
    /// still announced after that, the rotation is abandoned — the rotating
    /// flag is cleared so live writers are never blocked on a drainer that
    /// gave up — and the stall is reported instead of hanging the drainer
    /// (the crashed-enclave case: a writer that died between announcing and
    /// withdrawing never leaves).
    ///
    /// # Errors
    /// [`RotationStall`] with the number of writers still announced.
    ///
    /// # Panics
    /// Panics if the cursor belongs to a previous epoch; only the single
    /// drainer that owns the cursor may rotate the log.
    pub fn try_rotate(
        &self,
        cursor: &mut LogCursor,
        spin_limit: u64,
    ) -> Result<RotationOutcome, RotationStall> {
        assert_eq!(
            cursor.epoch,
            self.epoch(),
            "stale cursor: the log rotated without this cursor"
        );
        // Close the epoch to new writers. A single fetch-OR (rather than a
        // compare-exchange loop) cannot starve against the writers'
        // fetch-adds on the same word.
        self.shm
            .fetch_or_u64(OFF_CONTROL, FLAG_ROTATING)
            .expect("header in range");
        // Wait for announced writers to publish and leave. Reading the same
        // word the writers RMW gives a total order: any writer that slipped
        // in before the flag was set is visible here.
        let mut spins = 0u64;
        while self.control_word() & WRITERS_MASK != 0 {
            if spins >= spin_limit {
                // Reopen the log before giving up: surviving writers must
                // not spin against an abandoned rotation.
                self.shm
                    .fetch_and_u64(OFF_CONTROL, !FLAG_ROTATING)
                    .expect("header in range");
                return Err(RotationStall {
                    writers: self.writers_in_flight(),
                });
            }
            spins += 1;
            // Through the seam, not std::hint::spin_loop(), so a model
            // checker can park this thread until a writer withdraws.
            self.shm.spin_hint();
        }
        let tail = self.shm.read_u64(OFF_TAIL).expect("header in range");
        let stored = tail.min(self.size);
        let raw_over = tail.saturating_sub(self.size);
        // Writers are quiesced, so the epoch hand-back word is stable: it
        // counts the over-capacity slots batch reservations claimed past
        // the end of the log and gave straight back. Those inflate the tail
        // overflow but are abandoned slots, not dropped events.
        let handed_back = self
            .shm
            .read_u64(OFF_ABANDONED_EPOCH)
            .expect("header in range");
        #[cfg(feature = "mutation-testing")]
        let abandoned_as_dropped = self.mutation == mutation::Mutation::CountAbandonedAsDropped;
        #[cfg(not(feature = "mutation-testing"))]
        let abandoned_as_dropped = false;
        let dropped = if abandoned_as_dropped {
            // Mutated accounting (batched-reservation bug): charge the
            // hand-backs as drops too, double-counting every one of them.
            raw_over
        } else {
            raw_over.saturating_sub(handed_back)
        };
        // Drain, skipping unpublished holes: a batch writer that rotated
        // away mid-run (or exited) leaves word-0-zero slots inside the
        // stored range. They carry no event, so they are counted as
        // abandoned rather than delivered as all-zero records. Torn
        // records (word 0 published, address zero) are still delivered for
        // downstream salvage accounting.
        let mut holes = 0u64;
        let mut entries: Vec<LogEntry> = Vec::with_capacity((stored - cursor.index) as usize);
        for i in cursor.index..stored {
            let e = self.read_entry(i);
            if e.validity() == crate::layout::EntryValidity::Unpublished {
                holes += 1;
            } else {
                entries.push(e);
            }
        }
        let abandoned = holes + handed_back;
        #[cfg(feature = "mutation-testing")]
        let count_drops_first = self.mutation == mutation::Mutation::CountDropsBeforeTailReset;
        #[cfg(not(feature = "mutation-testing"))]
        let count_drops_first = false;
        if count_drops_first && dropped > 0 {
            // Mutated order (historical bug): cumulative word first, tail
            // still carrying the same drops until the reset below.
            self.shm
                .fetch_add_u64(OFF_DROPPED, dropped)
                .expect("header in range");
        }
        // Reset the tail *before* accounting its overflow in the cumulative
        // word: the two contributions to `dropped_total` then never include
        // the same drops at the same time (see its docs). The epoch
        // hand-back word follows the same discipline against
        // `abandoned_total`: reset first, accumulate after.
        self.shm.write_u64(OFF_TAIL, 0).expect("header in range");
        self.shm
            .write_u64(OFF_ABANDONED_EPOCH, 0)
            .expect("header in range");
        if !count_drops_first && dropped > 0 {
            self.shm
                .fetch_add_u64(OFF_DROPPED, dropped)
                .expect("header in range");
        }
        if abandoned > 0 {
            self.shm
                .fetch_add_u64(OFF_ABANDONED, abandoned)
                .expect("header in range");
        }
        #[cfg(feature = "mutation-testing")]
        let skip_slot_clear = self.mutation == mutation::Mutation::SkipSlotClear;
        #[cfg(not(feature = "mutation-testing"))]
        let skip_slot_clear = false;
        // Zero the published word of every drained slot so the next epoch
        // starts from the state `write_live`'s publication order assumes:
        // `poll` must never mistake a leftover word 0 for a freshly
        // published entry on a reused slot.
        if !skip_slot_clear {
            for i in 0..stored {
                self.shm
                    .write_u64(LogEntry::offset_of(i), 0)
                    .expect("entry in range");
            }
        }
        let new_epoch = self
            .shm
            .fetch_add_u64(OFF_EPOCH, 1)
            .expect("header in range")
            + 1;
        // Reopen the log for writers (wait-free for the same reason as the
        // close above).
        self.shm
            .fetch_and_u64(OFF_CONTROL, !FLAG_ROTATING)
            .expect("header in range");
        cursor.epoch = new_epoch;
        cursor.index = 0;
        Ok(RotationOutcome {
            entries,
            dropped,
            abandoned,
            new_epoch,
        })
    }

    /// Forcibly clear the writers-in-flight count: declare every announced
    /// writer dead and reclaim the log for rotation.
    ///
    /// This is the salvage path of last resort, for when a watchdog has
    /// decided the producing process is gone (repeated [`RotationStall`]s,
    /// a dead pid): a writer that crashed inside [`SharedLog::write_live`]
    /// leaves its announcement on the control word forever, and nothing
    /// else can ever rotate the log again. Calling this while a writer is
    /// actually alive corrupts the writers count when that writer later
    /// withdraws — callers own the "is it really dead" judgement.
    ///
    /// Returns the number of writers that were declared dead.
    pub fn force_reclaim_writers(&self) -> u64 {
        let prev = self
            .shm
            .fetch_and_u64(OFF_CONTROL, !WRITERS_MASK)
            .expect("header in range");
        (prev & WRITERS_MASK) >> WRITER_ONE.trailing_zeros()
    }

    // ---- fidelity-regime word -------------------------------------------

    /// Raw value of the fidelity regime word (single atomic load).
    pub fn regime_word(&self) -> u64 {
        self.shm.read_u64(OFF_REGIME).expect("header in range")
    }

    /// Read and decode the fidelity regime word. Returns the regime, the
    /// regime epoch of the publication, and whether the decoder fell back
    /// to `Full` because the word failed validation (corruption — the
    /// drainer's own stores are always whole-word and valid).
    ///
    /// Under the `TornRegimeRead` mutation this performs the historical
    /// buggy read: two loads recombined lo/hi with no validation.
    pub fn regime_observed(&self) -> (Regime, u32, bool) {
        #[cfg(feature = "mutation-testing")]
        if self.mutation == mutation::Mutation::TornRegimeRead {
            let lo = self.shm.read_u64(OFF_REGIME).expect("header in range");
            let hi = self.shm.read_u64(OFF_REGIME).expect("header in range");
            let torn = (lo & 0xffff_ffff) | (hi & !0xffff_ffff);
            let (regime, epoch) = fidelity::decode_unchecked(torn);
            return (regime, epoch, false);
        }
        fidelity::decode_or_full(self.regime_word())
    }

    /// Drainer-side: publish a regime at `regime_epoch`. One whole-word
    /// store under the existing publication discipline — the drainer is
    /// the regime word's only writer, so readers can never see a torn
    /// value through the protocol itself.
    pub fn set_regime(&self, regime: Regime, regime_epoch: u32) {
        self.shm
            .write_u64(OFF_REGIME, fidelity::encode_regime(regime, regime_epoch))
            .expect("header in range");
    }
}

/// A corrupted or foreign log header, found by [`SharedLog::verify_header`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderFault {
    /// The integrity word does not contain [`LOG_MAGIC`].
    BadMagic {
        /// The word found where the magic should be.
        found: u64,
    },
    /// The version bits of the control word are not [`LOG_VERSION`].
    BadVersion {
        /// The version found in the control word.
        found: u16,
    },
    /// The size word no longer matches the capacity this handle attached
    /// with.
    SizeMismatch {
        /// The size word as currently stored.
        found: u64,
        /// The capacity recorded when the handle attached.
        expected: u64,
    },
}

impl fmt::Display for HeaderFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderFault::BadMagic { found } => {
                write!(f, "header magic {found:#018x} != {LOG_MAGIC:#018x}")
            }
            HeaderFault::BadVersion { found } => {
                write!(f, "header version {found} != {LOG_VERSION}")
            }
            HeaderFault::SizeMismatch { found, expected } => {
                write!(
                    f,
                    "header size word {found} != attached capacity {expected}"
                )
            }
        }
    }
}

impl Error for HeaderFault {}

/// A bounded rotation gave up: writers were still announced after the spin
/// limit (see [`SharedLog::try_rotate`]). The log was reopened; nothing was
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationStall {
    /// Writers still in flight when the rotation was abandoned.
    pub writers: u64,
}

impl fmt::Display for RotationStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rotation stalled: {} writer(s) still announced after the quiesce deadline",
            self.writers
        )
    }
}

impl Error for RotationStall {}

/// Position of a live drainer within the shared log: which epoch it is
/// reading and how many of that epoch's entries it has consumed. Create
/// one per drainer with `LogCursor::default()` and pass it to
/// [`SharedLog::poll`] / [`SharedLog::rotate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogCursor {
    /// Epoch this cursor is positioned in.
    pub epoch: u64,
    /// Index of the next unread entry within the epoch.
    pub index: u64,
}

/// What a [`SharedLog::rotate`] call recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationOutcome {
    /// Entries drained between the cursor position and the end of the
    /// closed epoch (in log order).
    pub entries: Vec<LogEntry>,
    /// Entries the closed epoch dropped on overflow (now accounted in the
    /// header's cumulative-dropped word).
    pub dropped: u64,
    /// Batch-reserved slots the closed epoch abandoned without publishing:
    /// unpublished in-capacity holes skipped by the drain plus
    /// over-capacity hand-backs (now accounted in the header's
    /// cumulative-abandoned word).
    pub abandoned: u64,
    /// Epoch number now open for writers.
    pub new_epoch: u64,
}

/// Build a standard header for [`SharedLog::init`].
pub fn make_header(
    pid: u64,
    max_entries: u64,
    multithread: bool,
    anchor: u64,
    shm_addr: u64,
) -> LogHeader {
    LogHeader {
        active: true,
        trace_calls: true,
        trace_returns: true,
        multithread,
        version: LOG_VERSION,
        pid,
        size: max_entries,
        tail: 0,
        anchor,
        shm_addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh(max_entries: u64) -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        SharedLog::init(
            shm,
            &make_header(77, max_entries, true, 0x40_0000, tee_sim::SHM_BASE),
        )
    }

    #[test]
    fn init_writes_known_state() {
        let log = fresh(16);
        let h = log.header();
        assert!(h.active && h.trace_calls && h.trace_returns && h.multithread);
        assert_eq!(h.version, LOG_VERSION);
        assert_eq!(h.pid, 77);
        assert_eq!(h.size, 16);
        assert_eq!(h.tail, 0);
        assert_eq!(h.anchor, 0x40_0000);
        assert_eq!(h.shm_addr, tee_sim::SHM_BASE);
        assert_eq!(log.counter_value(), 0);
    }

    #[test]
    fn attach_sees_initialized_log() {
        let shm = Arc::new(SharedMem::new(region_bytes(8)));
        let host = SharedLog::init(Arc::clone(&shm), &make_header(1, 8, false, 0, 0));
        let enclave = SharedLog::attach(shm);
        assert_eq!(enclave.capacity(), 8);
        host.store_counter(99);
        assert_eq!(enclave.counter_value(), 99);
    }

    #[test]
    fn reserve_and_write_round_trip() {
        let log = fresh(4);
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 1000,
            addr: 0x40_0040,
            tid: 2,
        };
        let i = log.reserve();
        assert_eq!(i, 0);
        assert!(log.write_entry(i, &e));
        assert_eq!(log.read_entry(0), e);
        assert_eq!(log.header().tail, 1);
    }

    #[test]
    fn full_log_drops_but_counts() {
        let log = fresh(2);
        let e = LogEntry {
            kind: EventKind::Return,
            counter: 5,
            addr: 1,
            tid: 0,
        };
        for _ in 0..5 {
            let i = log.reserve();
            log.write_entry(i, &e);
        }
        let h = log.header();
        assert_eq!(h.tail, 5);
        assert_eq!(h.stored_entries(), 2);
        assert_eq!(h.dropped_entries(), 3);
        assert_eq!(log.drain_entries().len(), 2);
    }

    #[test]
    fn set_active_toggles_only_active_bit() {
        let log = fresh(2);
        assert!(log.should_record(EventKind::Call));
        log.set_active(false);
        assert!(!log.should_record(EventKind::Call));
        assert!(!log.should_record(EventKind::Return));
        let h = log.header();
        assert!(h.trace_calls && h.trace_returns, "event mask must survive");
        assert_eq!(h.version, LOG_VERSION, "version must survive");
        log.set_active(true);
        assert!(log.should_record(EventKind::Return));
    }

    #[test]
    fn event_mask_respected() {
        let shm = Arc::new(SharedMem::new(region_bytes(2)));
        let mut h = make_header(1, 2, false, 0, 0);
        h.trace_returns = false;
        let log = SharedLog::init(shm, &h);
        assert!(log.should_record(EventKind::Call));
        assert!(!log.should_record(EventKind::Return));
    }

    #[test]
    fn concurrent_reservation_is_duplicate_free() {
        let log = fresh(4_000);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..1_000u64 {
                    let i = log.reserve();
                    log.write_entry(
                        i,
                        &LogEntry {
                            kind: EventKind::Call,
                            counter: k,
                            addr: t * 10_000 + k,
                            tid: t,
                        },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let entries = log.drain_entries();
        assert_eq!(entries.len(), 4_000);
        // Every (tid, addr) pair must appear exactly once: no slot was
        // written twice and none lost.
        let mut seen: Vec<u64> = entries.iter().map(|e| e.addr).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4_000);
    }

    #[test]
    fn live_write_poll_rotate_round_trip() {
        let log = fresh(4);
        let mut cursor = LogCursor::default();
        for k in 1..=3u64 {
            assert_eq!(
                log.write_live(&LogEntry {
                    kind: EventKind::Call,
                    counter: k,
                    addr: 0x100 + k,
                    tid: 0,
                }),
                Some(k - 1)
            );
        }
        let polled = log.poll(&mut cursor);
        assert_eq!(polled.len(), 3);
        assert_eq!(polled[0].counter, 1);
        assert_eq!(cursor, LogCursor { epoch: 0, index: 3 });
        // Nothing new: poll is idempotent at the cursor.
        assert!(log.poll(&mut cursor).is_empty());
        // One more entry, then rotate: only the unseen entry comes back.
        assert_eq!(
            log.write_live(&LogEntry {
                kind: EventKind::Return,
                counter: 9,
                addr: 0x103,
                tid: 0,
            }),
            Some(3)
        );
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].counter, 9);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.new_epoch, 1);
        assert_eq!(log.epoch(), 1);
        assert_eq!(cursor, LogCursor { epoch: 1, index: 0 });
        assert_eq!(log.header().tail, 0, "tail reset for the new epoch");
        assert_eq!(log.writers_in_flight(), 0);
    }

    #[test]
    fn rotation_accounts_overflow_drops() {
        let log = fresh(2);
        let mut cursor = LogCursor::default();
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 7,
            addr: 1,
            tid: 0,
        };
        assert!(log.write_live(&e).is_some());
        assert!(log.write_live(&e).is_some());
        assert!(
            log.write_live(&e).is_none(),
            "third write must drop: log full"
        );
        assert_eq!(log.dropped_total(), 1);
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 2);
        assert_eq!(out.dropped, 1);
        // After the rotation the epoch is empty again and the drop stays
        // accounted in the cumulative word.
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.write_live(&e), Some(0), "rotation reopened slot 0");
        assert_eq!(log.poll(&mut cursor).len(), 1);
    }

    #[test]
    fn rotation_clears_slots_for_reuse() {
        let log = fresh(4);
        let mut cursor = LogCursor::default();
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 11,
            addr: 0x200,
            tid: 1,
        };
        for _ in 0..4 {
            assert!(log.write_live(&e).is_some());
        }
        assert_eq!(log.rotate(&mut cursor).entries.len(), 4);
        // Every reused slot must read as unpublished: a writer that has
        // reserved slot 0 of the new epoch but not yet published (possible
        // mid-`write_live` from another thread) must not expose epoch-0
        // leftovers to the drainer.
        log.reserve();
        assert!(
            log.poll(&mut cursor).is_empty(),
            "stale previous-epoch words must not look published"
        );
    }

    #[test]
    fn poll_stops_at_unpublished_slot() {
        let log = fresh(4);
        let mut cursor = LogCursor::default();
        // Simulate a writer that reserved slot 0 but has not published yet
        // (only possible mid-`write_live` from another thread): slot 0 is
        // all zeroes while slot 1 is complete.
        log.reserve();
        let i = log.reserve();
        log.write_entry(
            i,
            &LogEntry {
                kind: EventKind::Call,
                counter: 5,
                addr: 2,
                tid: 0,
            },
        );
        assert!(log.poll(&mut cursor).is_empty(), "must not skip slot 0");
        // Rotation reads after quiesce: the unpublished slot 0 is a hole —
        // counted as abandoned, never delivered as an all-zero record —
        // while the published slot 1 drains normally.
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].counter, 5);
        assert_eq!(out.abandoned, 1);
        assert_eq!(log.abandoned_total(), 1);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn verify_header_accepts_fresh_log_and_detects_corruption() {
        let log = fresh(8);
        assert_eq!(log.verify_header(), Ok(()));
        // Smash the magic word: everything else is now untrustworthy.
        log.shm().write_u64(OFF_MAGIC, 0xdead_beef).unwrap();
        assert_eq!(
            log.verify_header(),
            Err(HeaderFault::BadMagic { found: 0xdead_beef })
        );
        log.shm().write_u64(OFF_MAGIC, LOG_MAGIC).unwrap();
        // Smash the version bits of the control word.
        let good_control = log.control_word();
        log.shm()
            .write_u64(OFF_CONTROL, good_control ^ (0x7u64 << 17))
            .unwrap();
        assert!(matches!(
            log.verify_header(),
            Err(HeaderFault::BadVersion { .. })
        ));
        log.shm().write_u64(OFF_CONTROL, good_control).unwrap();
        // Smash the size word.
        log.shm().write_u64(OFF_SIZE, 999).unwrap();
        assert_eq!(
            log.verify_header(),
            Err(HeaderFault::SizeMismatch {
                found: 999,
                expected: 8
            })
        );
    }

    #[test]
    fn try_rotate_stalls_on_a_dead_writer_and_reopens_the_log() {
        let log = fresh(4);
        let mut cursor = LogCursor::default();
        log.write_live(&LogEntry {
            kind: EventKind::Call,
            counter: 3,
            addr: 0x100,
            tid: 0,
        });
        // Simulate a writer that announced itself and then died before
        // publishing or withdrawing.
        log.shm().fetch_add_u64(OFF_CONTROL, WRITER_ONE).unwrap();
        let stall = log.try_rotate(&mut cursor, 64).unwrap_err();
        assert_eq!(stall.writers, 1);
        assert!(stall.to_string().contains("1 writer(s)"));
        // The abandoned rotation must have reopened the log: live writers
        // keep appending, and nothing was drained or reset.
        assert_eq!(log.control_word() & FLAG_ROTATING, 0);
        assert_eq!(log.epoch(), 0);
        assert!(log
            .write_live(&LogEntry {
                kind: EventKind::Return,
                counter: 9,
                addr: 0x100,
                tid: 0,
            })
            .is_some());
        // The watchdog declares the writer dead; rotation then succeeds.
        assert_eq!(log.force_reclaim_writers(), 1);
        assert_eq!(log.writers_in_flight(), 0);
        let out = log.try_rotate(&mut cursor, 64).unwrap();
        assert_eq!(out.entries.len(), 2);
        assert_eq!(out.new_epoch, 1);
    }

    #[test]
    fn handed_back_slots_count_as_abandoned_not_dropped() {
        // Mirrors the PR-1 double-count fixture for the batched path: a
        // batch reservation that runs past the end of the log hands the
        // over-capacity slots back via the epoch word; those must surface
        // exactly once as `abandoned` and never inflate `dropped_total`,
        // neither before nor after the rotation folds them over.
        let log = fresh(2);
        let mut cursor = LogCursor::default();
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 7,
            addr: 1,
            tid: 0,
        };
        assert!(log.write_live(&e).is_some());
        assert!(log.write_live(&e).is_some());
        // Simulate a batch writer claiming a run of 4 starting at the full
        // tail: the append itself drops (one overflow ticket) and the 3
        // unused over-capacity slots are handed back.
        log.shm().fetch_add_u64(OFF_TAIL, 4).unwrap();
        log.shm().fetch_add_u64(OFF_ABANDONED_EPOCH, 3).unwrap();
        assert_eq!(log.dropped_total(), 1, "hand-backs are not drops");
        assert_eq!(log.abandoned_total(), 3);
        let out = log.rotate(&mut cursor);
        assert_eq!(out.entries.len(), 2);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.abandoned, 3);
        // Accounted exactly once across the rotation, in both words.
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.abandoned_total(), 3);
        // A second, empty rotation must not re-count anything.
        let out = log.rotate(&mut cursor);
        assert_eq!((out.dropped, out.abandoned), (0, 0));
        assert_eq!(log.dropped_total(), 1);
        assert_eq!(log.abandoned_total(), 3);
    }

    #[test]
    fn abandoned_holes_accumulate_across_rotations() {
        let log = fresh(4);
        let mut cursor = LogCursor::default();
        let e = LogEntry {
            kind: EventKind::Call,
            counter: 3,
            addr: 0x500,
            tid: 0,
        };
        // Epoch 0: one published entry, then an in-capacity hole (a batch
        // run reserved but never published).
        assert!(log.write_live(&e).is_some());
        log.reserve();
        let out = log.rotate(&mut cursor);
        assert_eq!((out.entries.len(), out.abandoned), (1, 1));
        // Epoch 1: two holes this time.
        log.reserve();
        log.reserve();
        let out = log.rotate(&mut cursor);
        assert_eq!((out.entries.len(), out.abandoned), (0, 2));
        assert_eq!(log.abandoned_total(), 3);
        assert_eq!(log.dropped_total(), 0);
    }

    #[test]
    fn regime_word_round_trips_and_salvages_corruption() {
        let log = fresh(4);
        // Fresh log: Full at regime epoch 0, no fallback.
        assert_eq!(log.regime_observed(), (Regime::Full, 0, false));
        log.set_regime(Regime::Sampled(8), 1);
        assert_eq!(log.regime_observed(), (Regime::Sampled(8), 1, false));
        log.set_regime(Regime::Quiescent, 2);
        assert_eq!(log.regime_observed(), (Regime::Quiescent, 2, false));
        // A hostile producer scribbles on the word: readers fall back to
        // Full and report it, never panic.
        log.shm()
            .write_u64(OFF_REGIME, 0xdead_beef_dead_beef)
            .unwrap();
        assert_eq!(log.regime_observed(), (Regime::Full, 0, true));
        // The drainer repairs it with a fresh publication.
        log.set_regime(Regime::Full, 3);
        assert_eq!(log.regime_observed(), (Regime::Full, 3, false));
    }

    #[test]
    #[should_panic(expected = "stale cursor")]
    fn stale_cursor_is_rejected() {
        let log = fresh(2);
        let mut cursor = LogCursor::default();
        log.rotate(&mut cursor);
        let mut stale = LogCursor::default();
        log.poll(&mut stale);
    }

    #[test]
    fn concurrent_live_writers_and_drainer_lose_nothing() {
        let log = fresh(64);
        let total_per_thread = 2_000u64;
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                let mut written = 0u64;
                for k in 0..total_per_thread {
                    if log
                        .write_live(&LogEntry {
                            kind: EventKind::Call,
                            counter: k + 1,
                            addr: t * 1_000_000 + k + 1,
                            tid: t,
                        })
                        .is_some()
                    {
                        written += 1;
                    }
                }
                written
            }));
        }
        let drainer = {
            let log = log.clone();
            std::thread::spawn(move || {
                let mut cursor = LogCursor::default();
                let mut drained = Vec::new();
                loop {
                    drained.extend(log.poll(&mut cursor));
                    let out = log.rotate(&mut cursor);
                    drained.extend(out.entries);
                    if log.writers_in_flight() == 0
                        && drained.len() as u64 + log.dropped_total() >= 3 * total_per_thread
                    {
                        break;
                    }
                    std::thread::yield_now();
                }
                drained
            })
        };
        let written: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let drained = drainer.join().unwrap();
        // Every successfully written entry is drained exactly once.
        assert_eq!(drained.len() as u64, written);
        assert_eq!(written + log.dropped_total(), 3 * total_per_thread);
        let mut addrs: Vec<u64> = drained.iter().map(|e| e.addr).collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "no entry may be drained twice");
    }

    proptest! {
        #[test]
        fn prop_entries_survive_storage(entries in proptest::collection::vec(
            (any::<bool>(), 0u64..(1<<62), any::<u64>(), 0u64..64), 1..50)
        ) {
            let log = fresh(64);
            for (i, (call, counter, addr, tid)) in entries.iter().enumerate() {
                let e = LogEntry {
                    kind: if *call { EventKind::Call } else { EventKind::Return },
                    counter: *counter,
                    addr: *addr,
                    tid: *tid,
                };
                let slot = log.reserve();
                prop_assert_eq!(slot, i as u64);
                log.write_entry(slot, &e);
            }
            let drained = log.drain_entries();
            prop_assert_eq!(drained.len(), entries.len());
            for (d, (call, counter, addr, tid)) in drained.iter().zip(&entries) {
                prop_assert_eq!(d.kind.is_call(), *call);
                prop_assert_eq!(d.counter, *counter);
                prop_assert_eq!(d.addr, *addr);
                prop_assert_eq!(d.tid, *tid);
            }
        }
    }
}
