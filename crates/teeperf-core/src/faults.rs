//! Deterministic fault injection and salvage accounting.
//!
//! The paper's recorder assumes a cooperative enclave writer. A production
//! profiler must survive the opposite (TEEMon's continuous-monitoring
//! framing; Stress-SGX's deliberately hostile workloads): enclaves that
//! crash mid-entry, stall inside a reserved slot, corrupt the header, or
//! exit without closing their log. This module provides
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of [`FaultKind`]s
//!   that can be armed on any writer;
//! * [`FaultyWriter`] — a [`SharedLog`] writer that executes the plan,
//!   producing exactly the torn entries, unpublished holes, stuck
//!   announcements and smashed headers a crashed or hostile enclave
//!   would leave behind — while remembering the ground truth (which
//!   entries were actually fully published) so tests can assert that
//!   salvage recovered *exactly* the published stream;
//! * [`SalvageReport`] — the accounting every salvage path returns:
//!   entries kept, entries dropped, and a per-[`SalvageReason`] histogram.
//!   Degrading gracefully never means losing data silently.

use std::collections::BTreeMap;
use std::fmt;

use crate::layout::{EntryValidity, LogEntry, FLAG_ACTIVE, OFF_CONTROL, OFF_MAGIC, WRITER_ONE};
use crate::log::SharedLog;

/// A small deterministic PRNG (SplitMix64): fault schedules must reproduce
/// exactly from a seed, across platforms and runs.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The fault taxonomy: every way this failure model can break a writer or
/// a persisted log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A partial slot write: the entry is published (word 0 nonzero) but
    /// the address word was never written — the publication order was
    /// violated, as by memory corruption or a hostile writer.
    TornEntry,
    /// The writer dies inside `write_live`: the slot stays reserved but
    /// never published, and the writer's announcement on the control word
    /// is never withdrawn, so an unbounded rotation would hang forever.
    WriterCrash,
    /// The writer reserves a slot and then stalls (preemption, paging,
    /// an enclave exit): the slot is a hole until — maybe — it resumes.
    StalledWriter,
    /// The header control word is overwritten with garbage (version bits
    /// smashed, flags cleared): nothing in the header can be trusted.
    CorruptHeader,
    /// The persisted log file is cut short mid-entry.
    TruncatedFile,
}

impl FaultKind {
    /// Every fault kind, for matrix-style tests.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TornEntry,
        FaultKind::WriterCrash,
        FaultKind::StalledWriter,
        FaultKind::CorruptHeader,
        FaultKind::TruncatedFile,
    ];

    /// Stable lower-case name (CI matrix labels, salvage reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TornEntry => "torn-entry",
            FaultKind::WriterCrash => "writer-crash",
            FaultKind::StalledWriter => "stalled-writer",
            FaultKind::CorruptHeader => "corrupt-header",
            FaultKind::TruncatedFile => "truncated-file",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: fire `kind` at the writer's `at`-th write (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedFault {
    /// What breaks.
    pub kind: FaultKind,
    /// Write index at which it breaks.
    pub at: u64,
}

/// A deterministic schedule of faults, armable on a [`FaultyWriter`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<ArmedFault>,
}

impl FaultPlan {
    /// The empty plan (a perfectly healthy writer).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a fault firing at write index `at`.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, at: u64) -> FaultPlan {
        self.faults.push(ArmedFault { kind, at });
        self
    }

    /// A seeded random plan: `count` faults drawn from `kinds`, at write
    /// indices below `writes`. Identical seeds produce identical plans.
    pub fn random(seed: u64, kinds: &[FaultKind], writes: u64, count: usize) -> FaultPlan {
        let mut rng = FaultRng::new(seed);
        let mut plan = FaultPlan::new();
        if kinds.is_empty() {
            return plan;
        }
        for _ in 0..count {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            plan = plan.with(kind, rng.below(writes));
        }
        plan
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[ArmedFault] {
        &self.faults
    }

    fn due(&self, at: u64) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.at == at).map(|f| f.kind)
    }

    /// Apply the file-level faults of this plan to serialized log bytes
    /// (deterministically, seeded by `seed`): [`FaultKind::TruncatedFile`]
    /// cuts the buffer mid-entry, [`FaultKind::CorruptHeader`] smashes the
    /// control word. Writer-level kinds are ignored here.
    pub fn mutilate(&self, bytes: &mut Vec<u8>, seed: u64) {
        let mut rng = FaultRng::new(seed);
        for f in &self.faults {
            match f.kind {
                FaultKind::TruncatedFile => {
                    // Keep the magic + header, cut somewhere in the entry
                    // region (mid-entry when possible).
                    let header_end = 8 + 7 * 8;
                    if bytes.len() > header_end {
                        let span = (bytes.len() - header_end) as u64;
                        let cut = header_end + rng.below(span) as usize;
                        bytes.truncate(cut);
                    }
                }
                // The control word is the first header word after the
                // magic; flip its version bits.
                FaultKind::CorruptHeader if bytes.len() >= 16 => {
                    let garbage = rng.next_u64() | (1 << 40);
                    bytes[8..16].copy_from_slice(&garbage.to_le_bytes());
                }
                _ => {}
            }
        }
    }
}

/// What a [`FaultyWriter::write_live`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Fully published at the given slot.
    Published(u64),
    /// Dropped on overflow (epoch full) — same as a healthy writer.
    Overflow,
    /// A fault fired on this write (the entry was torn, lost, or stalled).
    Faulted(FaultKind),
    /// The writer is dead (a prior [`FaultKind::WriterCrash`] killed it);
    /// the write went nowhere.
    Dead,
}

/// A [`SharedLog`] writer that executes a [`FaultPlan`]: the in-process
/// stand-in for a crashing, stalling or hostile enclave. Every injected
/// fault leaves exactly the shared-memory state the real failure would.
#[derive(Debug)]
pub struct FaultyWriter {
    log: SharedLog,
    plan: FaultPlan,
    writes: u64,
    injected: Vec<ArmedFault>,
    published: Vec<LogEntry>,
    dead: bool,
    stalled_slot: Option<(u64, LogEntry)>,
}

impl FaultyWriter {
    /// Arm `plan` on a writer for `log`.
    pub fn new(log: SharedLog, plan: FaultPlan) -> FaultyWriter {
        FaultyWriter {
            log,
            plan,
            writes: 0,
            injected: Vec::new(),
            published: Vec::new(),
            dead: false,
            stalled_slot: None,
        }
    }

    /// The wrapped log.
    pub fn log(&self) -> &SharedLog {
        &self.log
    }

    /// Ground truth: every entry this writer fully published, in order.
    /// Salvage must recover exactly these (minus healthy overflow drops).
    pub fn published(&self) -> &[LogEntry] {
        &self.published
    }

    /// The faults that actually fired, in firing order.
    pub fn injected(&self) -> &[ArmedFault] {
        &self.injected
    }

    /// Whether a [`FaultKind::WriterCrash`] has killed this writer.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Announce + reserve like `write_live`, without publishing or
    /// withdrawing — the state a writer is in the instant before it dies
    /// or stalls. Returns the reserved slot (`None` on overflow; the
    /// announcement stays either way).
    fn announce_and_reserve(&self) -> Option<u64> {
        self.log
            .shm()
            .fetch_add_u64(OFF_CONTROL, WRITER_ONE)
            .expect("header in range");
        let index = self.log.reserve();
        (index < self.log.capacity()).then_some(index)
    }

    fn withdraw(&self) {
        self.log
            .shm()
            .fetch_add_u64(OFF_CONTROL, WRITER_ONE.wrapping_neg())
            .expect("header in range");
    }

    /// Write `entry` through the live path, injecting whatever fault the
    /// plan schedules for this write index.
    pub fn write_live(&mut self, entry: &LogEntry) -> WriteOutcome {
        if self.dead {
            return WriteOutcome::Dead;
        }
        let at = self.writes;
        self.writes += 1;
        let Some(kind) = self.plan.due(at) else {
            return match self.log.write_live(entry) {
                Some(slot) => {
                    self.published.push(*entry);
                    WriteOutcome::Published(slot)
                }
                None => WriteOutcome::Overflow,
            };
        };
        self.injected.push(ArmedFault { kind, at });
        match kind {
            FaultKind::TornEntry => {
                // Publish word 0 while never writing the address word: the
                // forbidden order a corrupted writer produces.
                if let Some(index) = self.announce_and_reserve() {
                    let off = LogEntry::offset_of(index);
                    let words = entry.pack();
                    self.log
                        .shm()
                        .write_u64(off, words[0].max(1))
                        .expect("entry in range");
                }
                self.withdraw();
            }
            FaultKind::WriterCrash => {
                // Die mid-write: slot reserved, never published, the
                // announcement never withdrawn.
                self.announce_and_reserve();
                self.dead = true;
            }
            FaultKind::StalledWriter => {
                // Hold the reserved slot; maybe resume later via
                // `release_stall`. The announcement is withdrawn (the
                // thread left the critical write path but the slot is a
                // hole) — the stall starves `poll`, not rotation.
                if let Some(index) = self.announce_and_reserve() {
                    self.stalled_slot = Some((index, *entry));
                }
                self.withdraw();
            }
            FaultKind::CorruptHeader => {
                // Scribble over the magic and the control word, then keep
                // writing as if nothing happened.
                self.log
                    .shm()
                    .write_u64(OFF_MAGIC, 0xbad0_bad0_bad0_bad0)
                    .expect("header in range");
                self.log
                    .shm()
                    .write_u64(OFF_CONTROL, FLAG_ACTIVE | (0x3ff << 17))
                    .expect("header in range");
            }
            FaultKind::TruncatedFile => {
                // A file-level fault: nothing to do on the live path (see
                // `FaultPlan::mutilate`); the write itself proceeds.
                return match self.log.write_live(entry) {
                    Some(slot) => {
                        self.published.push(*entry);
                        WriteOutcome::Published(slot)
                    }
                    None => WriteOutcome::Overflow,
                };
            }
        }
        WriteOutcome::Faulted(kind)
    }

    /// Resume a stalled writer: publish the held slot's entry (if its slot
    /// still belongs to the current epoch, which the caller can't know —
    /// exactly like a real resumed thread). Returns whether an entry was
    /// published.
    pub fn release_stall(&mut self) -> bool {
        let Some((index, entry)) = self.stalled_slot.take() else {
            return false;
        };
        if index >= self.log.capacity() {
            return false;
        }
        let off = LogEntry::offset_of(index);
        let words = entry.pack();
        self.log
            .shm()
            .write_u64(off + 8, words[1])
            .expect("entry in range");
        self.log
            .shm()
            .write_u64(off + 16, words[2])
            .expect("entry in range");
        self.log
            .shm()
            .write_u64(off, words[0])
            .expect("entry in range");
        true
    }
}

/// Why a salvage path dropped a record (the histogram key of a
/// [`SalvageReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SalvageReason {
    /// Published-looking entry with an impossible zero address
    /// ([`EntryValidity::Torn`]).
    TornEntry,
    /// A reserved slot that was never published (writer died or stalled
    /// past the deadline) — the hole was closed and skipped.
    UnpublishedSlot,
    /// A rotation was abandoned because announced writers never left.
    StalledRotation,
    /// The header failed its integrity check; the source went dead.
    CorruptHeader,
    /// Bytes cut off the end of a persisted log file.
    TruncatedFile,
    /// Writers declared dead and their announcements reclaimed.
    DeadWriterReclaimed,
    /// The fidelity regime word failed validation; the reader fell back
    /// to the `Full` interpretation and the drainer re-published a valid
    /// word. An incident, never an entry drop.
    CorruptRegimeWord,
}

impl SalvageReason {
    /// Stable lower-case name used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            SalvageReason::TornEntry => "torn-entry",
            SalvageReason::UnpublishedSlot => "unpublished-slot",
            SalvageReason::StalledRotation => "stalled-rotation",
            SalvageReason::CorruptHeader => "corrupt-header",
            SalvageReason::TruncatedFile => "truncated-file",
            SalvageReason::DeadWriterReclaimed => "dead-writer-reclaimed",
            SalvageReason::CorruptRegimeWord => "corrupt-regime-word",
        }
    }
}

impl fmt::Display for SalvageReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a salvage pass kept and what it gave up on, with a per-reason
/// histogram. Returned by every degrade-gracefully path in the pipeline;
/// an all-zero report means the stream was perfectly healthy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Entries delivered downstream.
    pub kept: u64,
    /// Records dropped by salvage (sum of the histogram).
    pub dropped: u64,
    /// Drop histogram by reason. [`SalvageReason::StalledRotation`] and
    /// [`SalvageReason::CorruptHeader`] count *incidents*, not entries,
    /// and are excluded from `dropped`'s entry arithmetic only when no
    /// record was lost.
    pub reasons: BTreeMap<SalvageReason, u64>,
}

impl SalvageReport {
    /// Record `n` dropped records for `reason`.
    pub fn drop_n(&mut self, reason: SalvageReason, n: u64) {
        if n == 0 {
            return;
        }
        self.dropped += n;
        *self.reasons.entry(reason).or_default() += n;
    }

    /// Record an incident that lost no entries by itself (a stalled
    /// rotation that will be retried, a header corruption event).
    pub fn incident(&mut self, reason: SalvageReason) {
        *self.reasons.entry(reason).or_default() += 1;
    }

    /// Count recorded for `reason` (0 when absent).
    pub fn count(&self, reason: SalvageReason) -> u64 {
        self.reasons.get(&reason).copied().unwrap_or(0)
    }

    /// Whether anything at all was salvaged around.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.reasons.is_empty()
    }

    /// Merge another report into this one (kept/dropped/reason-wise sums).
    pub fn absorb(&mut self, other: &SalvageReport) {
        self.kept += other.kept;
        self.dropped += other.dropped;
        for (reason, n) in &other.reasons {
            *self.reasons.entry(*reason).or_default() += n;
        }
    }

    /// Fold another pass's *losses* into this report without its kept
    /// count — for when this report's owner re-delivers (and so re-counts)
    /// the entries the earlier pass already kept.
    pub fn absorb_drops(&mut self, other: &SalvageReport) {
        self.dropped += other.dropped;
        for (reason, n) in &other.reasons {
            *self.reasons.entry(*reason).or_default() += n;
        }
    }

    /// One line per reason, `salvage: kept K dropped D (reason: n, ...)`;
    /// empty string when clean.
    pub fn to_line(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut parts: Vec<String> = Vec::new();
        for (reason, n) in &self.reasons {
            parts.push(format!("{reason}: {n}"));
        }
        format!(
            "salvage: kept {} dropped {} ({})",
            self.kept,
            self.dropped,
            parts.join(", ")
        )
    }

    /// Split a raw entry batch into the valid stream, accounting every
    /// invalid record here. The helper all salvaging sources share.
    pub fn filter_entries(&mut self, entries: Vec<LogEntry>) -> Vec<LogEntry> {
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            match e.validity() {
                EntryValidity::Valid => out.push(e),
                EntryValidity::Unpublished => self.drop_n(SalvageReason::UnpublishedSlot, 1),
                EntryValidity::Torn => self.drop_n(SalvageReason::TornEntry, 1),
            }
        }
        self.kept += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EventKind;
    use crate::log::{make_header, region_bytes, LogCursor};
    use std::sync::Arc;
    use tee_sim::SharedMem;

    fn fresh(max_entries: u64) -> SharedLog {
        let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
        SharedLog::init(shm, &make_header(9, max_entries, true, 0, 0))
    }

    fn entry(counter: u64) -> LogEntry {
        LogEntry {
            kind: EventKind::Call,
            counter,
            addr: 0x40_0000 + counter,
            tid: 0,
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = FaultRng::new(7);
        for _ in 0..100 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(FaultRng::new(1).below(0), 0);
    }

    #[test]
    fn random_plans_reproduce_from_the_seed() {
        let p1 = FaultPlan::random(99, &FaultKind::ALL, 50, 4);
        let p2 = FaultPlan::random(99, &FaultKind::ALL, 50, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults().len(), 4);
        assert_ne!(p1, FaultPlan::random(100, &FaultKind::ALL, 50, 4));
        assert!(FaultPlan::random(1, &[], 50, 4).faults().is_empty());
    }

    #[test]
    fn healthy_writer_publishes_everything() {
        let log = fresh(8);
        let mut w = FaultyWriter::new(log.clone(), FaultPlan::new());
        for k in 1..=3 {
            assert_eq!(w.write_live(&entry(k)), WriteOutcome::Published(k - 1));
        }
        assert_eq!(w.published().len(), 3);
        assert!(w.injected().is_empty());
        assert!(!w.is_dead());
    }

    #[test]
    fn torn_entry_leaves_published_word_with_zero_addr() {
        let log = fresh(8);
        let plan = FaultPlan::new().with(FaultKind::TornEntry, 1);
        let mut w = FaultyWriter::new(log.clone(), plan);
        w.write_live(&entry(1));
        assert_eq!(
            w.write_live(&entry(2)),
            WriteOutcome::Faulted(FaultKind::TornEntry)
        );
        w.write_live(&entry(3));
        assert_eq!(w.published().len(), 2);
        let torn = log.read_entry(1);
        assert_eq!(torn.validity(), EntryValidity::Torn);
        assert_eq!(log.writers_in_flight(), 0, "torn writer still withdrew");
    }

    #[test]
    fn writer_crash_leaves_hole_and_stuck_announcement() {
        let log = fresh(8);
        let plan = FaultPlan::new().with(FaultKind::WriterCrash, 1);
        let mut w = FaultyWriter::new(log.clone(), plan);
        w.write_live(&entry(1));
        assert_eq!(
            w.write_live(&entry(2)),
            WriteOutcome::Faulted(FaultKind::WriterCrash)
        );
        assert!(w.is_dead());
        assert_eq!(w.write_live(&entry(3)), WriteOutcome::Dead);
        assert_eq!(w.published().len(), 1);
        assert_eq!(log.writers_in_flight(), 1, "the dead writer never left");
        assert_eq!(
            log.read_entry(1).validity(),
            EntryValidity::Unpublished,
            "crashed slot is a hole"
        );
        // An unbounded rotate would now hang; the bounded one reports it.
        let mut cursor = LogCursor::default();
        assert!(log.try_rotate(&mut cursor, 32).is_err());
    }

    #[test]
    fn stalled_writer_holds_then_releases_the_slot() {
        let log = fresh(8);
        let plan = FaultPlan::new().with(FaultKind::StalledWriter, 0);
        let mut w = FaultyWriter::new(log.clone(), plan);
        assert_eq!(
            w.write_live(&entry(7)),
            WriteOutcome::Faulted(FaultKind::StalledWriter)
        );
        assert_eq!(log.writers_in_flight(), 0);
        assert_eq!(log.read_entry(0).validity(), EntryValidity::Unpublished);
        assert!(w.release_stall());
        assert_eq!(log.read_entry(0), entry(7));
        assert!(!w.release_stall(), "a stall releases once");
    }

    #[test]
    fn corrupt_header_fails_verification() {
        let log = fresh(8);
        let plan = FaultPlan::new().with(FaultKind::CorruptHeader, 0);
        let mut w = FaultyWriter::new(log.clone(), plan);
        assert!(log.verify_header().is_ok());
        w.write_live(&entry(1));
        assert!(log.verify_header().is_err());
    }

    #[test]
    fn salvage_report_accounting() {
        let mut r = SalvageReport::default();
        assert!(r.is_clean());
        assert!(r.to_line().is_empty());
        let kept = r.filter_entries(vec![
            entry(1),
            LogEntry::unpack([0, 0, 0]), // unpublished
            LogEntry {
                kind: EventKind::Call,
                counter: 3,
                addr: 0,
                tid: 0,
            }, // torn
            entry(2),
        ]);
        assert_eq!(kept.len(), 2);
        assert_eq!(r.kept, 2);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.count(SalvageReason::TornEntry), 1);
        assert_eq!(r.count(SalvageReason::UnpublishedSlot), 1);
        r.incident(SalvageReason::StalledRotation);
        assert_eq!(r.dropped, 2, "incidents are not entry drops");
        let mut sum = SalvageReport::default();
        sum.absorb(&r);
        sum.absorb(&r);
        assert_eq!(sum.kept, 4);
        assert_eq!(sum.count(SalvageReason::StalledRotation), 2);
        let line = sum.to_line();
        assert!(line.contains("kept 4"), "{line}");
        assert!(line.contains("torn-entry: 2"), "{line}");
    }
}
