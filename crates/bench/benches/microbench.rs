//! Criterion micro-benchmarks over the profiler's building blocks (real
//! wall-clock time of the implementation, not simulated cycles):
//!
//! * `log_write/lock_free` vs `log_write/mutex` — the paper's lock-free
//!   fetch-and-add log against a mutex-guarded alternative, under thread
//!   contention;
//! * `hook_record` — one full enter-event on the hot path;
//! * `analyzer_build` — profile construction over a 20 k-event log;
//! * `query_engine` — a `group … agg …` over the event frame;
//! * `flamegraph_svg` — rendering a 1 000-stack graph;
//! * `vm_dispatch` — raw Mini-C interpreter throughput.

use std::sync::Arc;
use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mcvm::DebugInfo;
use tee_sim::{CostModel, Machine, SharedMem};
use teeperf_analyzer::{Analyzer, Symbolizer};
use teeperf_core::layout::{EventKind, LogEntry, LogHeader, LOG_VERSION};
use teeperf_core::log::{make_header, region_bytes, SharedLog};
use teeperf_core::{LogFile, SimCounter, TeePerfHooks};
use teeperf_flamegraph::{FlameGraph, SvgOptions};

fn bench_log_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_write");
    let entry = LogEntry {
        kind: EventKind::Call,
        counter: 12_345,
        addr: 0x40_0000,
        tid: 0,
    };

    group.bench_function("lock_free", |b| {
        let shm = Arc::new(SharedMem::new(region_bytes(1 << 20)));
        let log = SharedLog::init(shm, &make_header(1, 1 << 20, true, 0, 0));
        b.iter(|| {
            let i = log.reserve();
            log.write_entry(i % (1 << 20), &entry);
        });
    });

    group.bench_function("mutex", |b| {
        // The design alternative the paper rejected: a lock around an
        // append-only vector.
        let log: Mutex<Vec<LogEntry>> = Mutex::new(Vec::with_capacity(1 << 20));
        b.iter(|| {
            let mut guard = log.lock().expect("not poisoned");
            if guard.len() == guard.capacity() {
                guard.clear();
            }
            guard.push(entry);
        });
    });

    group.bench_function("lock_free_4_threads", |b| {
        b.iter_batched(
            || {
                let shm = Arc::new(SharedMem::new(region_bytes(1 << 16)));
                SharedLog::init(shm, &make_header(1, 1 << 16, true, 0, 0))
            },
            |log| {
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        let log = log.clone();
                        s.spawn(move || {
                            for _ in 0..2_000 {
                                let i = log.reserve();
                                log.write_entry(
                                    i % (1 << 16),
                                    &LogEntry {
                                        kind: EventKind::Call,
                                        counter: 1,
                                        addr: 2,
                                        tid: t,
                                    },
                                );
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_hook_record(c: &mut Criterion) {
    c.bench_function("hook_record", |b| {
        let shm = Arc::new(SharedMem::new(region_bytes(1 << 20)));
        let log = SharedLog::init(Arc::clone(&shm), &make_header(1, 1 << 20, true, 0, 0));
        let mut machine = Machine::new(CostModel::sgx_v1());
        machine.map_shared(shm);
        machine.ecall();
        let mut hooks =
            TeePerfHooks::new(log, Box::new(SimCounter::standard(machine.clock().clone())));
        let mut i = 0u64;
        b.iter(|| {
            hooks.record(&mut machine, EventKind::Call, 0x40_0000 + i, 0);
            i += 1;
        });
    });
}

fn synthetic_log(events: usize) -> (LogFile, DebugInfo) {
    let debug = DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5), ("leaf", 4, 9)]);
    let mut entries = Vec::with_capacity(events);
    let mut counter = 0u64;
    // Nested call pattern main -> work -> leaf, repeated.
    while entries.len() + 6 <= events {
        for (kind, f) in [
            (EventKind::Call, 0u16),
            (EventKind::Call, 1),
            (EventKind::Call, 2),
            (EventKind::Return, 2),
            (EventKind::Return, 1),
            (EventKind::Return, 0),
        ] {
            counter += 7;
            entries.push(LogEntry {
                kind,
                counter,
                addr: debug.entry_addr(f),
                tid: (entries.len() % 4) as u64 / 2,
            });
        }
    }
    let header = LogHeader {
        active: false,
        trace_calls: true,
        trace_returns: true,
        multithread: true,
        version: LOG_VERSION,
        pid: 1,
        size: entries.len() as u64,
        tail: entries.len() as u64,
        anchor: debug.entry_addr(0),
        shm_addr: 0,
    };
    (LogFile::new(header, entries), debug)
}

fn bench_analyzer(c: &mut Criterion) {
    let (log, debug) = synthetic_log(20_000);
    c.bench_function("analyzer_build_20k_events", |b| {
        b.iter(|| {
            let analyzer = Analyzer::new(log.clone(), debug.clone()).expect("valid");
            std::hint::black_box(analyzer.profile().total_ticks)
        });
    });

    let analyzer = Analyzer::new(log, debug).expect("valid");
    let frame = analyzer.events_frame();
    c.bench_function("query_group_agg_20k_rows", |b| {
        b.iter(|| {
            let out = teeperf_analyzer::run_query(
                &frame,
                "group method agg count() as n, sum(counter) as total sort total desc",
            )
            .expect("query runs");
            std::hint::black_box(out.len())
        });
    });
}

fn bench_flamegraph(c: &mut Criterion) {
    let folded: Vec<(Vec<String>, u64)> = (0..1_000)
        .map(|i| {
            (
                vec![
                    "main".to_string(),
                    format!("module_{}", i % 20),
                    format!("fn_{i}"),
                ],
                (i % 97 + 1) as u64,
            )
        })
        .collect();
    c.bench_function("flamegraph_svg_1k_stacks", |b| {
        b.iter(|| {
            let fg = FlameGraph::from_folded(&folded);
            std::hint::black_box(fg.to_svg(&SvgOptions::default()).len())
        });
    });
}

fn bench_vm(c: &mut Criterion) {
    let src = "
        fn work(n: int) -> int {
            let s: int = 0;
            for (let i: int = 0; i < n; i = i + 1) { s = s + i * 3 % 7; }
            return s;
        }
        fn main() -> int { return work(5000); }
    ";
    c.bench_function("vm_dispatch_45k_instructions", |b| {
        b.iter_batched(
            || mcvm::compile(src).expect("compiles"),
            |program| {
                let mut vm = mcvm::Vm::new(program, Machine::new(CostModel::native()));
                std::hint::black_box(vm.run().expect("runs"))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_symbolizer(c: &mut Criterion) {
    let debug = DebugInfo::from_functions((0..512).map(|_| ("some_function_name", 16u64, 1u32)));
    let addrs: Vec<u64> = (0..512u16).map(|i| debug.entry_addr(i)).collect();
    let sym = Symbolizer::without_relocation(debug);
    c.bench_function("symbolize_512_functions", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            std::hint::black_box(sym.name_of(addrs[i]))
        });
    });
}

criterion_group!(
    benches,
    bench_log_write,
    bench_hook_record,
    bench_analyzer,
    bench_flamegraph,
    bench_vm,
    bench_symbolizer
);
criterion_main!(benches);
