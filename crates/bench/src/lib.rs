//! # bench — the experiment harness
//!
//! One module per paper artifact, each with a `run_*` function the
//! figure-regenerating binaries (`src/bin/*.rs`) call at full scale and the
//! tests call at reduced scale:
//!
//! | module | regenerates | binary |
//! |---|---|---|
//! | [`fig4`] | Figure 4 — TEE-Perf overhead vs `perf` on Phoenix | `fig4_phoenix_overhead` |
//! | [`fig5`] | Figure 5 — RocksDB `db_bench` flame graph | `fig5_rocksdb_flamegraph` |
//! | [`fig6`] | Figure 6 + §IV-C IOPS table — SPDK case study | `fig6_spdk_casestudy` |
//! | [`ablations`] | sampling bias, counter sources, selective profiling, EPC paging | `ablation_*` |
//! | [`live`] | continuous-monitoring overhead of `teeperf-live` | `live_overhead` |
//! | [`analyze`] | stage-3 analyzer throughput and shard speedup | `analyze_throughput` |
//! | [`contention`] | recorder hot path: batched reservation × switchless transitions | `record_contention` |
//! | [`querybench`] | windowed time-travel query latency vs retained history | `query_latency` |
//! | [`regime`] | overhead-budgeted fidelity regimes under an overload ramp | `regime_bench` |
//!
//! Everything is deterministic; "10 runs" vary the workload seed, exactly
//! like re-running a benchmark binary on fresh inputs.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod analyze;
pub mod contention;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod live;
pub mod querybench;
pub mod regime;
pub mod util;
