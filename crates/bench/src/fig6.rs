//! Figure 6 + the §IV-C numbers: the SPDK case study.
//!
//! Three measured configurations of the `spdk perf` benchmark (random
//! read/write, 80 % reads, 4 KiB blocks):
//!
//! | config | paper IOPS | paper MiB/s |
//! |---|---|---|
//! | native (host) | 223,808 | 874 |
//! | naive SGX port | 15,821 | 61.8 |
//! | optimized SGX port | 232,736 | 909 |
//!
//! plus the two flame graphs: the naive port ~72 % `getpid` / ~20 %
//! `rdtsc`; the optimized port with both gone.

use std::cell::RefCell;
use std::rc::Rc;

use spdk_sim::{run_perf_tool, PerfToolOptions, SpdkEnv};
use tee_sim::{CostModel, Machine};
use teeperf_analyzer::Analyzer;
use teeperf_core::{Profiler, Recorder, RecorderConfig};
use teeperf_flamegraph::{FlameGraph, SvgOptions};

use crate::util::render_table;

/// Harness options.
#[derive(Debug, Clone)]
pub struct Fig6Options {
    /// I/Os for the throughput (unprofiled) measurements.
    pub throughput_ops: u64,
    /// I/Os for the flame-graph (profiled) runs.
    pub profile_ops: u64,
    /// Refresh interval of the optimized timestamp cache.
    pub refresh_interval: u64,
}

impl Default for Fig6Options {
    fn default() -> Self {
        Fig6Options {
            throughput_ops: 8_000,
            profile_ops: 2_000,
            refresh_interval: 128,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Configuration label.
    pub name: &'static str,
    /// Measured IOPS.
    pub iops: f64,
    /// Measured throughput in MiB/s.
    pub throughput_mib_s: f64,
}

/// The whole case study.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// native / naive / optimized rows.
    pub configs: Vec<Fig6Config>,
    /// Optimized-over-naive improvement factor (paper: 14.7×).
    pub improvement: f64,
    /// Flame graph of the naive port.
    pub naive_graph: FlameGraph,
    /// Flame graph of the optimized port.
    pub optimized_graph: FlameGraph,
    /// `getpid` share in the naive graph (paper ≈ 0.72).
    pub naive_getpid_fraction: f64,
    /// `rdtsc` share in the naive graph (paper ≈ 0.20).
    pub naive_rdtsc_fraction: f64,
}

fn throughput(cost: CostModel, env: &mut SpdkEnv, ops: u64) -> (f64, f64) {
    let in_tee = cost.kind != tee_sim::TeeKind::Native;
    let mut machine = Machine::new(cost);
    if in_tee {
        machine.ecall();
    }
    let r = run_perf_tool(
        &mut machine,
        &PerfToolOptions {
            ops,
            ..PerfToolOptions::default()
        },
        env,
        None,
    );
    (r.iops, r.throughput_mib_s)
}

fn profiled_graph(cost: CostModel, env: &mut SpdkEnv, ops: u64) -> FlameGraph {
    let recorder = Recorder::new(&RecorderConfig {
        max_entries: 1 << 23,
        ..RecorderConfig::default()
    });
    let mut machine = Machine::new(cost);
    recorder.attach(&mut machine);
    machine.ecall();
    let profiler = Rc::new(RefCell::new(Profiler::new(
        recorder.sim_hooks(machine.clock().clone()),
    )));
    run_perf_tool(
        &mut machine,
        &PerfToolOptions {
            ops,
            ..PerfToolOptions::default()
        },
        env,
        Some(Rc::clone(&profiler)),
    );
    let log = recorder.finish();
    assert_eq!(log.header.dropped_entries(), 0, "fig6 log overflowed");
    let debug = profiler.borrow().debug_info();
    let analyzer = Analyzer::new(log, debug).expect("fresh log validates");
    FlameGraph::from_folded(&analyzer.profile().folded)
}

/// Run the full case study.
pub fn run_fig6(options: &Fig6Options) -> Fig6Result {
    let (native_iops, native_tp) = throughput(
        CostModel::native(),
        &mut SpdkEnv::naive(),
        options.throughput_ops,
    );
    let (naive_iops, naive_tp) = throughput(
        CostModel::sgx_v1(),
        &mut SpdkEnv::naive(),
        options.throughput_ops,
    );
    let (opt_iops, opt_tp) = throughput(
        CostModel::sgx_v1(),
        &mut SpdkEnv::optimized(options.refresh_interval),
        options.throughput_ops,
    );

    let naive_graph = profiled_graph(
        CostModel::sgx_v1(),
        &mut SpdkEnv::naive(),
        options.profile_ops,
    );
    let optimized_graph = profiled_graph(
        CostModel::sgx_v1(),
        &mut SpdkEnv::optimized(options.refresh_interval),
        options.profile_ops,
    );

    Fig6Result {
        configs: vec![
            Fig6Config {
                name: "native (host)",
                iops: native_iops,
                throughput_mib_s: native_tp,
            },
            Fig6Config {
                name: "naive SGX port",
                iops: naive_iops,
                throughput_mib_s: naive_tp,
            },
            Fig6Config {
                name: "optimized SGX port",
                iops: opt_iops,
                throughput_mib_s: opt_tp,
            },
        ],
        improvement: opt_iops / naive_iops,
        naive_getpid_fraction: naive_graph.fraction("getpid"),
        naive_rdtsc_fraction: naive_graph.fraction("rdtsc"),
        naive_graph,
        optimized_graph,
    }
}

/// Render the §IV-C table plus the headline comparisons.
pub fn render_fig6(result: &Fig6Result) -> String {
    let paper = [
        ("native (host)", 223_808.0, 874.0),
        ("naive SGX port", 15_821.0, 61.8),
        ("optimized SGX port", 232_736.0, 909.0),
    ];
    let rows: Vec<Vec<String>> = result
        .configs
        .iter()
        .zip(paper)
        .map(|(c, (_, p_iops, p_tp))| {
            vec![
                c.name.to_string(),
                format!("{:.0}", c.iops),
                format!("{:.1}", c.throughput_mib_s),
                format!("{p_iops:.0}"),
                format!("{p_tp:.1}"),
            ]
        })
        .collect();
    let mut out = String::from("§IV-C — SPDK perf, random R/W 80% reads, 4 KiB blocks\n\n");
    out.push_str(&render_table(
        &[
            "configuration",
            "IOPS",
            "MiB/s",
            "paper IOPS",
            "paper MiB/s",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\noptimized / naive improvement: {:.1}x (paper: 14.7x)\n",
        result.improvement
    ));
    out.push_str(&format!(
        "naive flame graph: getpid {:.1}% (paper ~72%), rdtsc {:.1}% (paper ~20%)\n",
        result.naive_getpid_fraction * 100.0,
        result.naive_rdtsc_fraction * 100.0
    ));
    out.push_str(&format!(
        "optimized flame graph: getpid {:.2}%, rdtsc {:.2}% (paper: reduced to ~0)\n",
        result.optimized_graph.fraction("getpid") * 100.0,
        result.optimized_graph.fraction("rdtsc") * 100.0
    ));
    out
}

/// A red/blue differential flame graph of the optimization: the optimized
/// port's profile colored by change from the naive one (blue = shrank —
/// expect deep blue on the vanished `getpid`/`rdtsc` towers).
pub fn render_diff_svg(result: &Fig6Result) -> String {
    result.optimized_graph.to_diff_svg(
        &result.naive_graph,
        &SvgOptions::default()
            .with_title("Figure 6 differential — optimized vs naive SPDK port")
            .with_subtitle("red = share grew, blue = share shrank"),
    )
}

/// The two SVGs of Figure 6.
pub fn render_svgs(result: &Fig6Result) -> (String, String) {
    let top = result.naive_graph.to_svg(
        &SvgOptions::default()
            .with_title("Figure 6 (top) — naive SPDK port inside SGX")
            .with_subtitle(format!(
                "getpid {:.1}%, rdtsc {:.1}%",
                result.naive_getpid_fraction * 100.0,
                result.naive_rdtsc_fraction * 100.0
            )),
    );
    let bottom = result.optimized_graph.to_svg(
        &SvgOptions::default()
            .with_title("Figure 6 (bottom) — optimized SPDK port inside SGX")
            .with_subtitle("pid cached, timestamps cached with periodic correction"),
    );
    (top, bottom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reproduces_the_case_study_shape() {
        let r = run_fig6(&Fig6Options {
            throughput_ops: 800,
            profile_ops: 400,
            refresh_interval: 128,
        });
        let native = r.configs[0].iops;
        let naive = r.configs[1].iops;
        let optimized = r.configs[2].iops;

        // Ordering and magnitudes.
        assert!(
            native > naive * 8.0,
            "native {native:.0} vs naive {naive:.0}"
        );
        assert!(
            optimized >= native * 0.95,
            "optimized must recover to native"
        );
        assert!(
            (8.0..25.0).contains(&r.improvement),
            "improvement {:.1}",
            r.improvement
        );
        assert!((150_000.0..320_000.0).contains(&native));
        assert!(naive < 35_000.0);

        // Flame graphs.
        assert!((0.55..0.85).contains(&r.naive_getpid_fraction));
        assert!((0.10..0.32).contains(&r.naive_rdtsc_fraction));
        assert!(r.optimized_graph.fraction("getpid") < 0.10);

        let text = render_fig6(&r);
        assert!(text.contains("14.7x"));
        assert!(text.contains("optimized"));
        let (top, bottom) = render_svgs(&r);
        assert!(top.contains("naive"));
        assert!(bottom.contains("optimized"));
        let diff = render_diff_svg(&r);
        assert!(diff.contains("differential"));
        assert!(diff.contains("share vs before"));
        // The paper's frame chain is visible in the naive graph.
        let folded = r.naive_graph.to_folded();
        assert!(folded.contains("submit_single_io"), "{folded}");
        assert!(folded.contains("allocate_request;getpid"));
    }
}
