//! Recorder hot-path contention: batched slot reservation × switchless
//! transitions.
//!
//! The recorder's append path has two serialization points, one on each
//! side of the enclave boundary:
//!
//! * **inside**: every event performs one fetch-and-add on the shared tail
//!   word — at high writer counts the cache line ping-pongs between cores
//!   and the RMW becomes the bottleneck. Batched reservation
//!   ([`teeperf_core::BatchWriter`]) claims a run of slots per RMW,
//!   dividing the contended operations by the batch size.
//! * **at the boundary**: a measured application that interacts with the
//!   host pays a world switch (~10k cycles on SGX v1, TLB flushed) per
//!   call. Switchless mode ([`tee_sim::TransitionMode::Switchless`])
//!   services those calls through a worker-thread mailbox instead.
//!
//! This benchmark sweeps writer threads × batch size × transition mode and
//! reports, per cell:
//!
//! * `entries_per_sec` / `wall_ms` — real wall throughput of that many OS
//!   writer threads appending into one shared log (real contention on the
//!   real protocol; the transition mode does not enter this path, so wall
//!   numbers for the two modes of one (writers, batch) pair are two
//!   honest samples of the same measurement),
//! * `modeled_cycles_per_event` — deterministic simulated cost of one
//!   recorded event for an application that performs one host call per
//!   event, under that batch size and transition mode (this is where
//!   switchless shows up: with classic transitions the world switch
//!   dominates everything the batching saves),
//! * correctness: zero drops, and the drained entries byte-identical
//!   (after sorting by writer) to the unbatched classic run of the same
//!   writer count.
//!
//! Wall speedups from batching need real parallelism; on a one-core host
//! the JSON carries an explicit note and the numbers measure protocol
//! overhead under oversubscription instead.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use tee_sim::{CostModel, Machine, SharedMem, TransitionMode};
use teeperf_core::layout::{EntryValidity, EventKind, LogEntry};
use teeperf_core::log::{make_header, region_bytes, LogCursor, SharedLog};
use teeperf_core::{Recorder, RecorderConfig};

use crate::util::render_table;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ContentionOptions {
    /// Writer-thread counts to sweep.
    pub writers: Vec<usize>,
    /// Batch sizes (slots per tail reservation) to sweep; 1 is the classic
    /// one-RMW-per-event path.
    pub batch_slots: Vec<u64>,
    /// Entries each writer appends per wall-clock cell.
    pub entries_per_writer: u64,
    /// Events recorded in each deterministic modeled-cost run.
    pub modeled_events: u64,
    /// Wall-clock runs per cell; the minimum (least scheduler-disturbed)
    /// wall is reported and correctness is checked on every run.
    pub repeats: usize,
}

impl Default for ContentionOptions {
    fn default() -> Self {
        ContentionOptions {
            writers: vec![1, 2, 4, 8],
            batch_slots: vec![1, 8, 32, 128],
            entries_per_writer: 100_000,
            modeled_events: 2_000,
            repeats: 5,
        }
    }
}

impl ContentionOptions {
    /// A tiny grid for CI smoke runs (finishes in well under a minute on
    /// one core, still crosses batched × switchless).
    pub fn smoke() -> Self {
        ContentionOptions {
            writers: vec![1, 2],
            batch_slots: vec![1, 8],
            entries_per_writer: 10_000,
            modeled_events: 200,
            repeats: 2,
        }
    }
}

/// One grid cell's measurements.
#[derive(Debug, Clone)]
pub struct ContentionCell {
    /// OS writer threads.
    pub writers: usize,
    /// Slots per tail reservation.
    pub batch_slots: u64,
    /// Transition mode of the modeled run.
    pub mode: TransitionMode,
    /// Wall time for all writers to append their entries, milliseconds.
    pub wall_ms: f64,
    /// Aggregate wall throughput, entries per second.
    pub entries_per_sec: f64,
    /// Shared tail reservations per writer (shows the RMW amortization).
    pub reservations_per_writer: f64,
    /// Entries dropped (must be 0: the log is sized for the run).
    pub dropped: u64,
    /// Batch-run remainder slots left unpublished at writer exit.
    pub abandoned_remainder: u64,
    /// Whether the drain matches the unbatched classic drain byte-for-byte
    /// (after sorting by writer, since cross-thread interleaving is real).
    pub identical_drain: bool,
    /// Deterministic modeled cost of one recorded event (including the
    /// application's one host call per event) under this batch size and
    /// transition mode.
    pub modeled_cycles_per_event: f64,
}

/// The whole benchmark's results.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// Cores the host reported; wall speedups cannot exceed this.
    pub host_cores: usize,
    /// Entries each writer appended per cell.
    pub entries_per_writer: u64,
    /// One cell per (writers, batch, mode).
    pub cells: Vec<ContentionCell>,
}

fn fresh_log(max_entries: u64) -> SharedLog {
    let shm = Arc::new(SharedMem::new(region_bytes(max_entries)));
    SharedLog::init(
        shm,
        &make_header(7, max_entries, true, 0x40_0000, tee_sim::SHM_BASE),
    )
}

/// The deterministic entry writer `t` appends as its `k`-th event. Counters
/// are globally unique and per-thread monotonic, so sorting a drain by
/// (tid, counter) reconstructs each thread's program order.
fn cell_entry(t: u64, k: u64, entries_per_writer: u64) -> LogEntry {
    LogEntry {
        kind: if k.is_multiple_of(2) {
            EventKind::Call
        } else {
            EventKind::Return
        },
        counter: t * entries_per_writer + k + 1,
        addr: 0x40_0000 + (k % 64) * 4,
        tid: t,
    }
}

/// Run one wall-clock cell: `writers` OS threads × `entries_per_writer`
/// appends through the real protocol. Returns (wall seconds, sorted valid
/// drain, reservations, abandoned remainder, dropped).
///
/// Each writer times its own span from the start barrier to its last
/// append and the cell's wall is the slowest writer — timing from the
/// coordinating thread would under-measure whenever the scheduler parks
/// it across the barrier release (routine on a one-core host).
fn wall_cell(
    writers: usize,
    batch: u64,
    entries_per_writer: u64,
) -> (f64, Vec<LogEntry>, u64, u64, u64) {
    // Sized so nothing drops: every reservation (including each writer's
    // final partial run) fits below capacity.
    let capacity = writers as u64 * (entries_per_writer + batch);
    let log = fresh_log(capacity);
    let barrier = Arc::new(Barrier::new(writers));
    let mut handles = Vec::with_capacity(writers);
    for t in 0..writers as u64 {
        let log = log.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut batch_writer = (batch > 1).then(|| log.batch_writer(batch));
            barrier.wait();
            let t0 = Instant::now();
            let mut reservations = 0u64;
            for k in 0..entries_per_writer {
                let entry = cell_entry(t, k, entries_per_writer);
                match &mut batch_writer {
                    Some(w) => {
                        w.append(&entry);
                    }
                    None => {
                        log.write_live(&entry);
                    }
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            if let Some(w) = &batch_writer {
                reservations = w.reservations();
            }
            let remainder = batch_writer.as_ref().map_or(0, |w| w.pending());
            (elapsed, reservations, remainder)
        }));
    }
    let mut wall = 0f64;
    let mut reservations = 0u64;
    let mut remainder = 0u64;
    for h in handles {
        let (elapsed, r, p) = h.join().expect("writer thread panicked");
        wall = wall.max(elapsed);
        reservations += r;
        remainder += p;
    }

    let dropped = log.dropped_total();
    let mut cursor = LogCursor::default();
    let mut drained: Vec<LogEntry> = log
        .rotate(&mut cursor)
        .entries
        .into_iter()
        .filter(|e| e.validity() == EntryValidity::Valid)
        .collect();
    drained.sort_by_key(|e| (e.tid, e.counter));
    if batch <= 1 {
        reservations = writers as u64 * entries_per_writer;
    }
    (wall, drained, reservations, remainder, dropped)
}

/// Deterministic modeled cost per recorded event for an application doing
/// one host call per event, under `batch` and `mode`.
fn modeled_cycles_per_event(batch: u64, mode: TransitionMode, events: u64) -> f64 {
    let config = RecorderConfig {
        max_entries: events + batch,
        pid: 7,
        batch_slots: batch,
        ..RecorderConfig::default()
    };
    let recorder = Recorder::new(&config);
    let mut machine = Machine::new(CostModel::sgx_v1().with_transition_mode(mode));
    recorder.attach(&mut machine);
    machine.ecall();
    let mut hooks = recorder.sim_hooks(machine.clock().clone());
    let t0 = machine.clock().now();
    for k in 0..events {
        machine.ocall(); // the application's host interaction
        let kind = if k.is_multiple_of(2) {
            EventKind::Call
        } else {
            EventKind::Return
        };
        hooks.record(&mut machine, kind, 0x40_0000 + (k % 64) * 4, 0);
    }
    let cycles = machine.clock().now() - t0;
    let file = recorder.finish();
    assert_eq!(
        file.entries.len() as u64,
        events,
        "modeled run must record every event"
    );
    assert_eq!(file.header.dropped_entries(), 0);
    cycles as f64 / events as f64
}

/// Run the whole grid.
pub fn run_contention_bench(options: &ContentionOptions) -> ContentionResult {
    let mut cells = Vec::new();
    // Classic unbatched drains, keyed by writer count — the identity
    // baseline every other cell of that writer count must reproduce.
    let mut baselines: BTreeMap<usize, Vec<LogEntry>> = BTreeMap::new();
    for &writers in &options.writers {
        for &batch in &options.batch_slots {
            for mode in TransitionMode::ALL {
                // Best of `repeats` runs: wall numbers on a loaded (or
                // one-core) host are scheduler-noisy, and the minimum is
                // the least-disturbed sample. Correctness is re-checked on
                // every repeat.
                let mut best: Option<(f64, Vec<LogEntry>, u64, u64)> = None;
                let mut dropped = 0u64;
                let mut repeats_agree = true;
                for _ in 0..options.repeats.max(1) {
                    let (wall, drained, reservations, remainder, run_dropped) =
                        wall_cell(writers, batch, options.entries_per_writer);
                    dropped = dropped.max(run_dropped);
                    match &mut best {
                        None => best = Some((wall, drained, reservations, remainder)),
                        Some((w, d, ..)) => {
                            repeats_agree &= *d == drained;
                            if wall < *w {
                                best = Some((wall, drained, reservations, remainder));
                            }
                        }
                    }
                }
                let (wall, drained, reservations, remainder) =
                    best.expect("at least one repeat ran");
                let baseline = baselines.entry(writers).or_insert_with(|| drained.clone());
                let total = writers as u64 * options.entries_per_writer;
                cells.push(ContentionCell {
                    writers,
                    batch_slots: batch,
                    mode,
                    wall_ms: wall * 1e3,
                    entries_per_sec: total as f64 / wall.max(1e-9),
                    reservations_per_writer: reservations as f64 / writers as f64,
                    dropped,
                    abandoned_remainder: remainder,
                    identical_drain: repeats_agree && *baseline == drained,
                    modeled_cycles_per_event: modeled_cycles_per_event(
                        batch,
                        mode,
                        options.modeled_events,
                    ),
                });
            }
        }
    }
    ContentionResult {
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries_per_writer: options.entries_per_writer,
        cells,
    }
}

impl ContentionResult {
    /// First correctness failure in the grid, if any: a dropped entry or a
    /// drain that differs from the unbatched classic drain.
    pub fn check(&self) -> Result<(), String> {
        for c in &self.cells {
            if c.dropped != 0 {
                return Err(format!(
                    "writers={} batch={} mode={}: {} entries dropped",
                    c.writers, c.batch_slots, c.mode, c.dropped
                ));
            }
            if !c.identical_drain {
                return Err(format!(
                    "writers={} batch={} mode={}: drain differs from the unbatched run",
                    c.writers, c.batch_slots, c.mode
                ));
            }
        }
        Ok(())
    }

    /// Wall-throughput ratio of (writers, batch, classic) over the
    /// unbatched classic cell of the same writer count.
    pub fn batched_speedup(&self, writers: usize, batch: u64) -> Option<f64> {
        let rate = |b: u64| {
            self.cells
                .iter()
                .find(|c| {
                    c.writers == writers && c.batch_slots == b && c.mode == TransitionMode::Classic
                })
                .map(|c| c.entries_per_sec)
        };
        Some(rate(batch)? / rate(1)?.max(1e-9))
    }

    /// The machine-readable artifact (`results/BENCH_record_contention.json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"record_contention\",");
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        if self.host_cores < 4 {
            let _ = writeln!(
                s,
                "  \"note\": \"host has {} core{}; the batched-vs-unbatched wall speedup \
                 target (>=1.5x at >=4 writers) needs a multicore host — wall numbers here \
                 measure protocol overhead under oversubscription, and \
                 modeled_cycles_per_event carries the deterministic comparison\",",
                self.host_cores,
                if self.host_cores == 1 { "" } else { "s" }
            );
        }
        let _ = writeln!(s, "  \"entries_per_writer\": {},", self.entries_per_writer);
        let _ = writeln!(s, "  \"grid\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"writers\": {}, \"batch_slots\": {}, \"mode\": \"{}\", \
                 \"wall_ms\": {:.3}, \"entries_per_sec\": {:.1}, \
                 \"reservations_per_writer\": {:.1}, \"dropped\": {}, \
                 \"abandoned_remainder\": {}, \"identical_drain\": {}, \
                 \"modeled_cycles_per_event\": {:.1}}}",
                c.writers,
                c.batch_slots,
                c.mode,
                c.wall_ms,
                c.entries_per_sec,
                c.reservations_per_writer,
                c.dropped,
                c.abandoned_remainder,
                c.identical_drain,
                c.modeled_cycles_per_event,
            );
            let _ = writeln!(s, "{}", if i + 1 < self.cells.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let body: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.writers.to_string(),
                    c.batch_slots.to_string(),
                    c.mode.to_string(),
                    format!("{:.1}", c.wall_ms),
                    format!("{:.0}", c.entries_per_sec),
                    format!("{:.1}", c.reservations_per_writer),
                    format!("{:.1}", c.modeled_cycles_per_event),
                    if c.dropped == 0 && c.identical_drain {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_string(),
                ]
            })
            .collect();
        let mut out = format!(
            "Recorder contention — batched reservation x transition mode \
             ({} host core{})\n\n",
            self.host_cores,
            if self.host_cores == 1 { "" } else { "s" }
        );
        out.push_str(&render_table(
            &[
                "writers",
                "batch",
                "mode",
                "wall ms",
                "entries/s",
                "rmw/writer",
                "cyc/event",
                "exact",
            ],
            &body,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_exact_and_amortizes_the_tail_rmw() {
        let options = ContentionOptions {
            writers: vec![1, 2],
            batch_slots: vec![1, 8],
            entries_per_writer: 2_000,
            modeled_events: 64,
            repeats: 1,
        };
        let result = run_contention_bench(&options);
        result.check().expect("zero drops, byte-identical drains");
        assert_eq!(result.cells.len(), 2 * 2 * 2);
        let batched = result
            .cells
            .iter()
            .find(|c| c.writers == 2 && c.batch_slots == 8)
            .unwrap();
        assert!(
            batched.reservations_per_writer <= 2_000.0 / 8.0 + 1.0,
            "8-slot batching must divide the tail RMWs by 8, got {}",
            batched.reservations_per_writer
        );
    }

    #[test]
    fn switchless_modeled_cost_undercuts_classic() {
        let classic = modeled_cycles_per_event(8, TransitionMode::Classic, 64);
        let switchless = modeled_cycles_per_event(8, TransitionMode::Switchless, 64);
        assert!(
            switchless * 2.0 < classic,
            "switchless ({switchless}) vs classic ({classic})"
        );
    }

    #[test]
    fn batching_amortization_is_visible_once_transitions_are_switchless() {
        // Under classic transitions the world switch drowns the tail RMW;
        // switchless is what makes batching matter on the modeled path.
        let unbatched = modeled_cycles_per_event(1, TransitionMode::Switchless, 64);
        let batched = modeled_cycles_per_event(64, TransitionMode::Switchless, 64);
        assert!(
            batched < unbatched,
            "batched ({batched}) must undercut unbatched ({unbatched})"
        );
    }
}
