//! Overhead-budgeted profiling under overload: the fidelity-regime ramp.
//!
//! A synthetic workload drives the live writer path through three phases —
//! **calm** (offered load fits the log comfortably), **storm** (offered
//! load several times the log's capacity per pump), **recovery** (calm
//! again) — three ways:
//!
//! 1. **native** — no profiler attached: the ground-truth offered event
//!    stream and the bare workload wall time;
//! 2. **full** — unbudgeted recording: every event is written, so the
//!    storm overflows the log and the stream loss far exceeds any sane
//!    budget (the failure mode the regimes exist to prevent);
//! 3. **budgeted** — the same writes go through a [`FidelityGate`] and the
//!    session carries an [`OverheadBudget`]: the controller degrades
//!    `Full → Sampled(1/N)` until the admitted stream fits, probes back up
//!    between storms, and returns to `Full` during recovery.
//!
//! The measured "overhead" is the budget's own metric — stream loss as a
//! percentage of events offered to the log — because in this recorder
//! loss *is* the profiling overhead that matters: a lost event silently
//! corrupts the profile, while a gate-suppressed event is disclosed and
//! compensated by the estimator. The interesting cells are the storm
//! column (full ≫ budget, budgeted ≤ budget once settled) and the
//! budgeted run's accounting identity: every offered event is either
//! admitted or disclosed-suppressed, and every admitted event is either
//! drained or counted dropped — nothing is silent. Emits
//! `results/BENCH_regime_overhead.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mcvm::DebugInfo;
use tee_sim::SharedMem;
use teeperf_analyzer::symbolize::Symbolizer;
use teeperf_core::layout::{EventKind, LogEntry};
use teeperf_core::log::{make_header, region_bytes};
use teeperf_core::{FidelityGate, Regime, SharedLog};
use teeperf_live::{DrainPolicy, LiveConfig, LiveSession, OverheadBudget, SessionEvent};

/// The three load phases of the ramp, in order.
pub const PHASES: [&str; 3] = ["calm", "storm", "recovery"];

/// Harness options.
#[derive(Debug, Clone)]
pub struct RegimeBenchOptions {
    /// Shared-log capacity in entries.
    pub capacity: u64,
    /// Call/return pairs offered per pump during calm and recovery.
    pub calm_pairs: u64,
    /// Pairs offered per pump during the storm (sized to overflow the log
    /// several times over at full fidelity).
    pub storm_pairs: u64,
    /// Pumps per calm phase.
    pub calm_pumps: usize,
    /// Pumps the storm lasts.
    pub storm_pumps: usize,
    /// Upper bound on recovery pumps (the run also records how many were
    /// actually needed to re-reach `Full`).
    pub recovery_pumps: usize,
    /// Tolerated stream loss, percent.
    pub budget_pct: u8,
}

impl Default for RegimeBenchOptions {
    fn default() -> Self {
        RegimeBenchOptions {
            capacity: 256,
            calm_pairs: 32,
            storm_pairs: 512,
            calm_pumps: 64,
            storm_pumps: 256,
            recovery_pumps: 6_000,
            budget_pct: 10,
        }
    }
}

impl RegimeBenchOptions {
    /// A tiny ramp for CI smoke runs (finishes in well under a second).
    pub fn smoke() -> Self {
        RegimeBenchOptions {
            capacity: 64,
            calm_pairs: 8,
            storm_pairs: 128,
            calm_pumps: 16,
            storm_pumps: 120,
            recovery_pumps: 4_000,
            ..RegimeBenchOptions::default()
        }
    }
}

/// One phase's accounting for one run.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Events the workload produced in this phase.
    pub offered: u64,
    /// Events actually written to the shared log (after the gate, where
    /// one exists).
    pub written: u64,
    /// Events the gate suppressed (disclosed omissions; 0 without a gate).
    pub suppressed: u64,
    /// Events lost to log overflow (accounted drops).
    pub dropped: u64,
}

impl PhaseStats {
    /// Stream loss as a percentage of events written toward the log.
    pub fn loss_pct(&self) -> f64 {
        if self.written == 0 {
            0.0
        } else {
            self.dropped as f64 * 100.0 / self.written as f64
        }
    }
}

/// One configuration's full-ramp outcome.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// "native", "full" or "budgeted".
    pub name: &'static str,
    /// Per-phase accounting, in [`PHASES`] order.
    pub phases: Vec<PhaseStats>,
    /// Loss over the second half of the storm, where the budgeted
    /// controller has settled into a fitting regime.
    pub settled_storm_loss_pct: f64,
    /// Whether the session ever left `Full` (always false for native and
    /// full runs).
    pub reached_sampled: bool,
    /// Regime at the end of the ramp, as its display label.
    pub final_regime: String,
    /// Regime transitions over the whole ramp.
    pub transitions: u64,
    /// Events ingested into the rolling profile.
    pub ingested: u64,
    /// Bias-corrected event estimate (== ingested when never sampled).
    pub estimated: u64,
    /// Pumps the recovery phase needed to re-reach `Full` (recovery_pumps
    /// if it never did; 0 when there is nothing to recover from).
    pub pumps_to_recover: usize,
    /// Host wall time of the ramp, milliseconds.
    pub wall_ms: u128,
    /// Regime lines from the final snapshot's `[events]` block.
    pub event_lines: Vec<String>,
}

/// The whole three-way comparison.
#[derive(Debug, Clone)]
pub struct RegimeBenchResult {
    /// Native, full, budgeted — in that order.
    pub runs: Vec<RunStats>,
    /// The budget the budgeted run carried.
    pub budget_pct: u8,
}

const PID: u64 = 7;

fn debug() -> DebugInfo {
    DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5)])
}

fn fresh_log(capacity: u64) -> SharedLog {
    let shm = Arc::new(SharedMem::new(region_bytes(capacity)));
    SharedLog::init(shm, &make_header(PID, capacity, true, 0, tee_sim::SHM_BASE))
}

/// Offer one call/return pair; returns how many of the two events were
/// written (gate permitting).
fn offer_pair(log: &SharedLog, gate: Option<&mut FidelityGate>, addr: u64, base: u64) -> u64 {
    let call = LogEntry {
        kind: EventKind::Call,
        counter: base,
        addr,
        tid: 0,
    };
    let ret = LogEntry {
        kind: EventKind::Return,
        counter: base + 2,
        addr,
        tid: 0,
    };
    match gate {
        None => {
            log.write_live(&call);
            log.write_live(&ret);
            2
        }
        Some(gate) => {
            let mut written = 0;
            for entry in [call, ret] {
                if gate.needs_refresh() {
                    gate.observe(log.regime_word());
                }
                if gate.admit(entry.tid, entry.kind) {
                    log.write_live(&entry);
                    written += 1;
                }
            }
            written
        }
    }
}

enum Mode {
    /// No log, no session: just the workload generating its event stream.
    Native,
    /// Unbudgeted full-fidelity recording.
    Full,
    /// Budgeted recording through the writer-side gate.
    Budgeted(u8),
}

fn run_one(options: &RegimeBenchOptions, mode: Mode) -> RunStats {
    let name = match mode {
        Mode::Native => "native",
        Mode::Full => "full",
        Mode::Budgeted(_) => "budgeted",
    };
    let budget = match mode {
        Mode::Budgeted(pct) => Some(OverheadBudget { pct }),
        _ => None,
    };
    let session_wanted = !matches!(mode, Mode::Native);
    let log = fresh_log(options.capacity);
    let mut session = session_wanted.then(|| {
        LiveSession::new(
            log.clone(),
            Symbolizer::without_relocation(debug()),
            LiveConfig {
                policy: DrainPolicy { watermark_pct: 50 },
                refresh_events: 0,
                budget,
                ..LiveConfig::default()
            },
        )
    });
    let mut gate = budget.map(|_| FidelityGate::new());
    let addr = debug().entry_addr(1);

    let wall = Instant::now();
    let mut base = 1u64;
    let mut phases = Vec::new();
    let mut storm_first_half = PhaseStats::default();
    let mut pumps_to_recover = 0usize;
    let schedule = [
        ("calm", options.calm_pairs, options.calm_pumps),
        ("storm", options.storm_pairs, options.storm_pumps),
        ("recovery", options.calm_pairs, options.recovery_pumps),
    ];
    for (phase, pairs, pumps) in schedule {
        let mut stats = PhaseStats::default();
        // `dropped_total` is cumulative and already includes the current
        // epoch's pending overflow, so per-phase loss is a delta against
        // the phase-start total — a per-pump before/after delta would read
        // zero (the rotation only moves drops between the two terms).
        let phase_dropped_base = session.as_ref().map_or(0, LiveSession::dropped);
        for pump in 0..pumps {
            for _ in 0..pairs {
                stats.offered += 2;
                if session_wanted {
                    stats.written += offer_pair(&log, gate.as_mut(), addr, base);
                }
                base += 4;
            }
            if let Some(s) = session.as_mut() {
                s.pump();
                stats.dropped = s.dropped() - phase_dropped_base;
            }
            if phase == "storm" && pump + 1 == pumps / 2 {
                storm_first_half = stats.clone();
            }
            if phase == "recovery" {
                let recovered = session.as_ref().is_none_or(|s| s.regime() == Regime::Full);
                if !recovered {
                    pumps_to_recover = pump + 1;
                }
            }
        }
        if matches!(mode, Mode::Native) {
            // Without a log attached "written" is meaningless; report the
            // offered stream as what the workload itself emits.
            stats.written = stats.offered;
        }
        stats.suppressed = stats.offered - stats.written;
        phases.push(stats);
    }

    // Second-half storm loss: total minus the first-half checkpoint.
    let storm = &phases[1];
    let half = PhaseStats {
        offered: storm.offered - storm_first_half.offered,
        written: storm.written - storm_first_half.written,
        suppressed: 0,
        dropped: storm.dropped - storm_first_half.dropped,
    };

    let (reached_sampled, final_regime, transitions, ingested, estimated, event_lines) =
        match session {
            None => (false, Regime::Full.to_string(), 0, 0, 0, Vec::new()),
            Some(mut s) => {
                let transitions = s.regime_transitions();
                let final_regime = s.regime().to_string();
                let snap = s.finish();
                let event_lines = snap
                    .events
                    .iter()
                    .filter(|e| matches!(e, SessionEvent::RegimeChanged { .. }))
                    .map(ToString::to_string)
                    .collect();
                (
                    transitions > 0,
                    final_regime,
                    transitions,
                    snap.status.events,
                    snap.regime
                        .as_ref()
                        .map_or(snap.status.events, |r| r.estimated_events),
                    event_lines,
                )
            }
        };

    RunStats {
        name,
        phases,
        settled_storm_loss_pct: half.loss_pct(),
        reached_sampled,
        final_regime,
        transitions,
        ingested,
        estimated,
        pumps_to_recover,
        wall_ms: wall.elapsed().as_millis(),
        event_lines,
    }
}

/// Run the three-way ramp.
pub fn run_regime_overhead(options: &RegimeBenchOptions) -> RegimeBenchResult {
    RegimeBenchResult {
        runs: vec![
            run_one(options, Mode::Native),
            run_one(options, Mode::Full),
            run_one(options, Mode::Budgeted(options.budget_pct)),
        ],
        budget_pct: options.budget_pct,
    }
}

impl RegimeBenchResult {
    fn run(&self, name: &str) -> &RunStats {
        self.runs
            .iter()
            .find(|r| r.name == name)
            .expect("all three runs present")
    }

    /// Render the comparison as an ASCII table (one row per run × phase).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .flat_map(|r| {
                r.phases.iter().zip(PHASES).map(move |(p, phase)| {
                    vec![
                        r.name.to_string(),
                        phase.to_string(),
                        p.offered.to_string(),
                        p.written.to_string(),
                        p.suppressed.to_string(),
                        p.dropped.to_string(),
                        format!("{:.1}", p.loss_pct()),
                    ]
                })
            })
            .collect();
        crate::util::render_table(
            &[
                "run",
                "phase",
                "offered",
                "written",
                "suppressed",
                "dropped",
                "loss_pct",
            ],
            &rows,
        )
    }

    /// Serialize as the `BENCH_regime_overhead.json` artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"bench\": \"regime_overhead\",");
        let _ = writeln!(s, "  \"budget_pct\": {},", self.budget_pct);
        let _ = writeln!(
            s,
            "  \"note\": \"overhead is stream loss pct (lost events corrupt the profile \
             silently; gate-suppressed events are disclosed and bias-corrected by the \
             estimator); settled_storm_loss_pct covers the storm's second half\","
        );
        let _ = writeln!(s, "  \"runs\": [");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"phases\": [");
            for (j, (p, phase)) in r.phases.iter().zip(PHASES).enumerate() {
                let _ = write!(
                    s,
                    "        {{\"phase\": \"{phase}\", \"offered\": {}, \"written\": {}, \
                     \"suppressed\": {}, \"dropped\": {}, \"loss_pct\": {:.2}}}",
                    p.offered,
                    p.written,
                    p.suppressed,
                    p.dropped,
                    p.loss_pct(),
                );
                let _ = writeln!(s, "{}", if j + 1 < r.phases.len() { "," } else { "" });
            }
            let _ = writeln!(s, "      ],");
            let _ = writeln!(
                s,
                "      \"settled_storm_loss_pct\": {:.2},",
                r.settled_storm_loss_pct
            );
            let _ = writeln!(s, "      \"reached_sampled\": {},", r.reached_sampled);
            let _ = writeln!(s, "      \"final_regime\": \"{}\",", r.final_regime);
            let _ = writeln!(s, "      \"transitions\": {},", r.transitions);
            let _ = writeln!(s, "      \"ingested\": {},", r.ingested);
            let _ = writeln!(s, "      \"estimated\": {},", r.estimated);
            let _ = writeln!(s, "      \"pumps_to_recover\": {},", r.pumps_to_recover);
            let _ = writeln!(s, "      \"wall_ms\": {}", r.wall_ms);
            let _ = writeln!(
                s,
                "    }}{}",
                if i + 1 < self.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// The acceptance criteria of the experiment.
    ///
    /// # Errors
    /// Returns a description of the first violated criterion.
    pub fn check(&self) -> Result<(), String> {
        let budget = f64::from(self.budget_pct);
        let full = self.run("full");
        let budgeted = self.run("budgeted");
        // 1. Unbudgeted full fidelity blows the budget during the storm.
        if full.phases[1].loss_pct() <= budget {
            return Err(format!(
                "full run storm loss {:.1}% did not exceed the {budget}% budget — \
                 the storm is not a storm",
                full.phases[1].loss_pct()
            ));
        }
        // 2. The budgeted controller degraded, settled within budget, and
        //    came back.
        if !budgeted.reached_sampled {
            return Err("budgeted run never left Full".into());
        }
        if budgeted.settled_storm_loss_pct > budget {
            return Err(format!(
                "budgeted settled storm loss {:.1}% exceeds the {budget}% budget",
                budgeted.settled_storm_loss_pct
            ));
        }
        if budgeted.final_regime != "full" {
            return Err(format!(
                "budgeted run ended in {} — never recovered to full",
                budgeted.final_regime
            ));
        }
        if budgeted.transitions < 2 {
            return Err("a degrade and a recovery need at least two transitions".into());
        }
        if budgeted.event_lines.len() < 2 {
            return Err("regime transitions missing from the [events] block".into());
        }
        // 3. Zero *silent* drops: every offered event is written or
        //    disclosed-suppressed, every written event drained or counted
        //    dropped.
        for (p, phase) in budgeted.phases.iter().zip(PHASES) {
            if p.offered != p.written + p.suppressed {
                return Err(format!("{phase}: gate accounting does not balance"));
            }
        }
        let written: u64 = budgeted.phases.iter().map(|p| p.written).sum();
        let dropped: u64 = budgeted.phases.iter().map(|p| p.dropped).sum();
        if budgeted.ingested + dropped != written {
            return Err(format!(
                "silent drops: written {written} != ingested {} + dropped {dropped}",
                budgeted.ingested
            ));
        }
        // 4. The estimator compensates for disclosed suppression: the
        //    corrected total must land far closer to the offered stream
        //    than the raw admitted count does.
        let offered: u64 = budgeted.phases.iter().map(|p| p.offered).sum();
        let err = |v: u64| (v as f64 - offered as f64).abs();
        if budgeted.estimated <= budgeted.ingested
            || err(budgeted.estimated) >= err(budgeted.ingested)
        {
            return Err(format!(
                "estimate {} is no better than the raw count {} against offered {offered}",
                budgeted.estimated, budgeted.ingested
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ramp_degrades_recovers_and_accounts_for_everything() {
        let result = run_regime_overhead(&RegimeBenchOptions::smoke());
        result.check().expect("acceptance criteria");
        let budgeted = result.run("budgeted");
        assert!(
            budgeted.pumps_to_recover > 0,
            "recovery took at least a pump"
        );
        assert!(budgeted
            .event_lines
            .iter()
            .any(|l| l.contains("full -> sampled(1/2)")));
        let table = result.render();
        assert!(table.contains("loss_pct"), "{table}");
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"regime_overhead\""), "{json}");
        let count = |c: char| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn native_run_carries_no_profiler_state() {
        let result = run_regime_overhead(&RegimeBenchOptions::smoke());
        let native = result.run("native");
        assert!(!native.reached_sampled);
        assert_eq!(native.transitions, 0);
        assert_eq!(native.ingested, 0);
        for p in &native.phases {
            assert_eq!(p.dropped, 0);
            assert_eq!(p.offered, p.written);
        }
    }
}
