//! Time-travel query latency: how the windowed query engine scales with
//! the number of retained windows.
//!
//! The retention ring keeps per-window [`Aggregates`] and answers queries
//! by merging the selected slots and materializing the merge — so the
//! interesting axis is the retained-window count: `last:5` should stay
//! flat (it touches five slots no matter how much history exists), the
//! whole-history merge grows linearly, and a two-window diff pays two
//! single-slot materializations plus the frame join.
//!
//! [`run_query_latency`] builds a [`SessionRegistry`] per window count —
//! several pids, a deterministic synthetic trace filling every window with
//! the same number of completed calls — and times the three query shapes
//! the daemon serves over `/query` ([`SessionRegistry::query_text`], the
//! exact serving path minus HTTP framing):
//!
//! * `last5_top10` — `windows=last:5&top=10`, the `teeperf top --window`
//!   steady-state poll;
//! * `all_merge` — `windows=all`, the worst-case whole-history merge;
//! * `diff` — `diff=a,b` over two recent windows.
//!
//! Each cell reports the **minimum** of `repeats` wall measurements (the
//! least scheduler-disturbed sample of a deterministic computation).
//! Latencies are single-threaded over in-memory rings; there is no I/O or
//! concurrency in the measured path, so one host core is enough for
//! honest numbers.
//!
//! [`Aggregates`]: teeperf_analyzer::Aggregates

use std::time::Instant;

use mcvm::DebugInfo;
use teeperf_analyzer::symbolize::Symbolizer;
use teeperf_analyzer::WindowSpec;
use teeperf_core::layout::{EventKind, LogEntry, LogHeader, LOG_VERSION};
use teeperf_core::{FileReplaySource, LogFile};
use teeperf_live::{LiveConfig, RingConfig, SessionRegistry};

use crate::util::render_table;

/// Distinct function names in the synthetic trace (spreads the per-window
/// aggregates over a realistic method table).
const FUNCS: u16 = 16;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct QueryBenchOptions {
    /// Retained-window counts to sweep (ring capacity == windows filled,
    /// so every cell queries exactly this much history).
    pub window_counts: Vec<usize>,
    /// Completed calls per window per pid.
    pub calls_per_window: u64,
    /// Simulated processes feeding the registry.
    pub pids: u64,
    /// Wall measurements per query shape; the minimum is reported.
    pub repeats: usize,
}

impl Default for QueryBenchOptions {
    fn default() -> Self {
        QueryBenchOptions {
            window_counts: vec![8, 32, 128, 512],
            calls_per_window: 200,
            pids: 2,
            repeats: 30,
        }
    }
}

impl QueryBenchOptions {
    /// A tiny sweep for CI smoke runs (finishes in seconds).
    pub fn smoke() -> Self {
        QueryBenchOptions {
            window_counts: vec![4, 8],
            calls_per_window: 20,
            pids: 2,
            repeats: 3,
        }
    }
}

/// One window-count cell's latencies (microseconds, minimum of repeats).
#[derive(Debug, Clone)]
pub struct QueryCell {
    /// Windows retained (and queried) in this cell.
    pub windows: usize,
    /// `windows=last:5&top=10` latency.
    pub last5_top10_us: f64,
    /// `windows=all` whole-history merge latency.
    pub all_merge_us: f64,
    /// `diff=a,b` two-window diff latency.
    pub diff_us: f64,
    /// Bytes of the `windows=all` response body (shows the payload the
    /// latency covers).
    pub all_bytes: usize,
}

/// The whole benchmark's results.
#[derive(Debug, Clone)]
pub struct QueryBenchResult {
    /// Per-window-count cells, in sweep order.
    pub cells: Vec<QueryCell>,
    /// Pids per registry.
    pub pids: u64,
    /// Calls per window per pid.
    pub calls_per_window: u64,
}

impl QueryBenchResult {
    /// Render the sweep as an ASCII table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.windows.to_string(),
                    format!("{:.1}", c.last5_top10_us),
                    format!("{:.1}", c.all_merge_us),
                    format!("{:.1}", c.diff_us),
                    c.all_bytes.to_string(),
                ]
            })
            .collect();
        render_table(
            &[
                "windows",
                "last5_top10_us",
                "all_merge_us",
                "diff_us",
                "all_bytes",
            ],
            &rows,
        )
    }

    /// Serialize as the `BENCH_query_latency.json` artifact.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"query_latency\",");
        let _ = writeln!(s, "  \"pids\": {},", self.pids);
        let _ = writeln!(s, "  \"calls_per_window\": {},", self.calls_per_window);
        let _ = writeln!(
            s,
            "  \"note\": \"latencies are the minimum of repeated wall measurements of \
             a deterministic single-threaded computation (registry query over in-memory \
             retention rings; the daemon's /query path minus HTTP framing)\","
        );
        let _ = writeln!(s, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"windows\": {}, \"last5_top10_us\": {:.2}, \"all_merge_us\": {:.2}, \
                 \"diff_us\": {:.2}, \"all_bytes\": {}}}",
                c.windows, c.last5_top10_us, c.all_merge_us, c.diff_us, c.all_bytes,
            );
            let _ = writeln!(s, "{}", if i + 1 < self.cells.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// Sanity checks on the sweep: every cell answered every query shape.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        for c in &self.cells {
            if c.all_bytes == 0 {
                return Err(format!("windows={}: empty windows=all response", c.windows));
            }
            if c.last5_top10_us <= 0.0 || c.all_merge_us <= 0.0 || c.diff_us <= 0.0 {
                return Err(format!("windows={}: non-positive latency", c.windows));
            }
        }
        Ok(())
    }
}

fn debug() -> DebugInfo {
    let funcs: Vec<(String, u64, u32)> = (0..FUNCS)
        .map(|i| (format!("fn_{i:02}"), 4, u32::from(i) * 4 + 1))
        .collect();
    DebugInfo::from_functions(funcs.iter().map(|(n, s, l)| (n.as_str(), *s, *l)))
}

/// A synthetic single-thread trace for one pid: `calls` flat call/return
/// pairs per window, every one exiting inside its window, function names
/// rotating through the pool so each window aggregates a full method
/// table. Four ticks per call keeps the layout deterministic:
/// call `c` of window `w` spans `w*interval + 4c + 1 ..= +3`.
fn trace(pid: u64, windows: usize, calls: u64) -> LogFile {
    let d = debug();
    let interval = calls * 4 + 4;
    let mut entries = Vec::with_capacity(windows * calls as usize * 2);
    for w in 0..windows as u64 {
        for c in 0..calls {
            let enter = w * interval + c * 4 + 1;
            let addr = d.entry_addr(((w + c + pid) % u64::from(FUNCS)) as u16);
            entries.push(LogEntry {
                kind: EventKind::Call,
                counter: enter,
                addr,
                tid: 0,
            });
            entries.push(LogEntry {
                kind: EventKind::Return,
                counter: enter + 2,
                addr,
                tid: 0,
            });
        }
    }
    let header = LogHeader {
        active: false,
        trace_calls: true,
        trace_returns: true,
        multithread: true,
        version: LOG_VERSION,
        pid,
        size: entries.len() as u64,
        tail: entries.len() as u64,
        anchor: 0,
        shm_addr: 0,
    };
    LogFile::new(header, entries)
}

/// Tick width of one window in [`trace`]'s layout.
fn interval_for(calls: u64) -> u64 {
    calls * 4 + 4
}

/// Build a registry with exactly `windows` retained windows per pid.
fn build_registry(windows: usize, options: &QueryBenchOptions) -> SessionRegistry {
    let config = LiveConfig {
        retention: Some(RingConfig {
            interval: interval_for(options.calls_per_window),
            capacity: windows,
            // Pure eviction: every retained slot stays one window wide, so
            // the cell's "windows" axis is exact.
            max_width: 1,
        }),
        ..LiveConfig::default()
    };
    let mut registry = SessionRegistry::new(config);
    for p in 1..=options.pids {
        let log = trace(p, windows, options.calls_per_window);
        let sym = Symbolizer::without_relocation(debug());
        registry
            .attach(Box::new(FileReplaySource::new(&log)), sym)
            .expect("synthetic pids are unique and nonzero");
    }
    while registry.pump() > 0 {}
    registry
}

/// Minimum wall time of `repeats` runs of `query`, in microseconds; the
/// response text is validated once and its length returned.
fn time_query(registry: &SessionRegistry, spec: &str, repeats: usize) -> (f64, usize) {
    let parsed = WindowSpec::parse(spec).expect("bench specs are well-formed");
    let body = registry
        .query_text(&parsed)
        .expect("bench registries retain data");
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let parsed = WindowSpec::parse(spec).expect("bench specs are well-formed");
        let out = registry.query_text(&parsed);
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        assert!(out.is_some(), "query went unanswerable mid-bench");
        best = best.min(elapsed);
    }
    (best.max(0.01), body.len())
}

/// Run the sweep.
pub fn run_query_latency(options: &QueryBenchOptions) -> QueryBenchResult {
    let mut cells = Vec::new();
    for &windows in &options.window_counts {
        let registry = build_registry(windows, options);
        let retained = registry.windows();
        assert!(
            retained.iter().all(|p| p.windows.len() == windows),
            "every pid must retain exactly the swept window count"
        );
        let newest = retained[0].windows.last().expect("windows retained").first;
        let (last5_top10_us, _) = time_query(&registry, "windows=last:5&top=10", options.repeats);
        let (all_merge_us, all_bytes) = time_query(&registry, "windows=all", options.repeats);
        let diff_spec = format!("diff={},{newest}", newest.saturating_sub(1));
        let (diff_us, _) = time_query(&registry, &diff_spec, options.repeats);
        cells.push(QueryCell {
            windows,
            last5_top10_us,
            all_merge_us,
            diff_us,
            all_bytes,
        });
    }
    QueryBenchResult {
        cells,
        pids: options.pids,
        calls_per_window: options.calls_per_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_answers_all_query_shapes() {
        let options = QueryBenchOptions::smoke();
        let result = run_query_latency(&options);
        assert_eq!(result.cells.len(), options.window_counts.len());
        result.check().expect("all shapes answered");
        let table = result.render();
        assert!(table.contains("last5_top10_us"), "{table}");
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"query_latency\""), "{json}");
        assert!(json.contains("\"windows\": 8"), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
    }
}
