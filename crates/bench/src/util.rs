//! Shared harness helpers: statistics, tables, output files.

use std::path::{Path, PathBuf};

/// Geometric mean of positive samples.
///
/// # Panics
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geomean needs positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// An ASCII bar scaled so that `max` spans `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(n.clamp(if value > 0.0 { 1 } else { 0 }, width))
}

/// The directory figure outputs are written to (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("TEEPERF_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Write a text artifact into the results directory, returning its path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Render a uniform table: header row + rows of cells, right-aligning any
/// cell that parses as a number.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut all: Vec<Vec<String>> = Vec::with_capacity(rows.len() + 1);
    all.push(header.iter().map(|s| s.to_string()).collect());
    all.extend(rows.iter().cloned());
    let cols = header.len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| {
            all.iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    for (i, row) in all.iter().enumerate() {
        for (c, w) in widths.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            let cell = row.get(c).map(String::as_str).unwrap_or("");
            let numeric = cell
                .trim_start_matches(['-', '+'])
                .chars()
                .next()
                .is_some_and(|ch| ch.is_ascii_digit());
            if numeric && i > 0 {
                out.push_str(&format!("{cell:>w$}"));
            } else {
                out.push_str(&format!("{cell:<w$}"));
            }
        }
        out.push('\n');
        if i == 0 {
            for (c, w) in widths.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// True when `path` exists and is non-empty (artifact sanity checks).
pub fn artifact_ok(path: &Path) -> bool {
    std::fs::metadata(path)
        .map(|m| m.len() > 0)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).len(), 5);
        assert_eq!(bar(10.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10).len(), 0);
        assert_eq!(bar(0.01, 10.0, 10).len(), 1, "nonzero values stay visible");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.5".into()],
                vec!["b".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    fn artifacts_round_trip() {
        std::env::set_var(
            "TEEPERF_RESULTS",
            std::env::temp_dir().join("teeperf-results-test"),
        );
        let p = write_artifact("probe.txt", "hello");
        assert!(artifact_ok(&p));
        std::env::remove_var("TEEPERF_RESULTS");
    }
}
