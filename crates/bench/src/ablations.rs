//! Ablation experiments for the design choices the paper calls out.

use mcvm::{RunConfig, Vm};
use perf_sim::{PerfConfig, PerfReport, Sampler};
use tee_sim::{CostModel, Machine, PAGE_SIZE};
use teeperf_analyzer::{Analyzer, Symbolizer};
use teeperf_compiler::{compile_instrumented, profile_program, InstrumentOptions, NameFilter};
use teeperf_core::{Recorder, RecorderConfig, SimCounter, TscCounter};

use crate::util::render_table;

// ---------------------------------------------------------------------------
// Sampling-frequency bias
// ---------------------------------------------------------------------------

/// Result of the sampling-bias demonstration.
#[derive(Debug, Clone)]
pub struct BiasResult {
    /// Ground-truth share of `phase_a` (TEE-Perf exact trace).
    pub true_fraction_a: f64,
    /// `perf`'s estimate with the sampling period aligned to the loop.
    pub aligned_fraction_a: f64,
    /// `perf`'s estimate with a misaligned (co-prime) period.
    pub misaligned_fraction_a: f64,
}

const BIAS_SRC: &str = "
global n: int;
global k: int;
fn phase_a(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
fn phase_b(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
fn main() -> int {
    let s: int = 0;
    for (let j: int = 0; j < k; j = j + 1) {
        s = s + phase_a(n);
        s = s + phase_b(n);
    }
    return s & 1023;
}
";

fn bias_vm(n: i64, k: i64, cost: CostModel) -> Vm {
    let program = mcvm::compile(BIAS_SRC).expect("bias program compiles");
    let mut vm = Vm::with_config(program, Machine::new(cost), RunConfig::default());
    vm.set_global_int("n", n).expect("global exists");
    vm.set_global_int("k", k).expect("global exists");
    vm
}

fn perf_fraction_a(n: i64, k: i64, period: u64) -> f64 {
    let mut vm = bias_vm(n, k, CostModel::sgx_v1());
    let (sampler, store) = Sampler::new(PerfConfig {
        period_cycles: period,
        capture_stacks: false,
    });
    vm.set_observer(Box::new(sampler));
    vm.run().expect("bias program runs");
    let sym = Symbolizer::without_relocation(vm.program().debug.clone());
    let report = PerfReport::build(&store.samples(), &sym);
    let a = report.fraction("phase_a");
    let b = report.fraction("phase_b");
    if a + b == 0.0 {
        0.5
    } else {
        a / (a + b)
    }
}

/// Run the sampling-bias experiment: two identical alternating phases; a
/// sampler whose period equals the loop period lands every sample in the
/// same phase, while TEE-Perf's full trace reports the true 50/50 split.
pub fn run_sampling_bias(k: i64) -> BiasResult {
    let n = 4_000;
    // Calibrate the exact cycles of one (phase_a + phase_b) pair with two
    // differential runs — subtracting cancels the fixed ecall/prologue
    // costs, and the VM is deterministic, so the estimate is exact.
    let measure = |k: i64| {
        let mut vm = bias_vm(n, k, CostModel::sgx_v1());
        vm.run().expect("calibration run");
        vm.machine().clock().now()
    };
    let pair_cycles = (measure(2 * k) - measure(k)) / k as u64;

    // Ground truth from the exact trace.
    let profiled = profile_program(
        compile_instrumented(BIAS_SRC, &InstrumentOptions::default()).expect("compiles"),
        CostModel::sgx_v1(),
        RunConfig::default(),
        &RecorderConfig {
            max_entries: 1 << 20,
            ..RecorderConfig::default()
        },
        |vm| {
            vm.set_global_int("n", n)?;
            vm.set_global_int("k", k)
        },
    )
    .expect("profiled run");
    let analyzer = Analyzer::new(profiled.log, profiled.debug).expect("validates");
    let profile = analyzer.profile();
    let a = profile
        .method("phase_a")
        .map_or(0.0, |m| m.exclusive as f64);
    let b = profile
        .method("phase_b")
        .map_or(0.0, |m| m.exclusive as f64);

    // Each sample costs one AEX, during which the application makes no
    // progress; for the sampler to land at the same loop phase every time,
    // the period must cover one loop pair *plus* that AEX.
    let aex = CostModel::sgx_v1().aex_cycles;
    BiasResult {
        true_fraction_a: a / (a + b),
        aligned_fraction_a: perf_fraction_a(n, k, pair_cycles + aex),
        // A co-prime-ish period drifts across the loop and samples fairly.
        misaligned_fraction_a: perf_fraction_a(n, k, pair_cycles * 37 / 100 + 13),
    }
}

/// Render the bias table.
pub fn render_bias(r: &BiasResult) -> String {
    let mut out =
        String::from("Sampling-frequency bias — share attributed to phase_a (truth: 0.50)\n\n");
    out.push_str(&render_table(
        &["estimator", "phase_a share"],
        &[
            vec![
                "TEE-Perf (full trace)".into(),
                format!("{:.3}", r.true_fraction_a),
            ],
            vec![
                "perf, aligned period".into(),
                format!("{:.3}", r.aligned_fraction_a),
            ],
            vec![
                "perf, misaligned period".into(),
                format!("{:.3}", r.misaligned_fraction_a),
            ],
        ],
    ));
    out
}

// ---------------------------------------------------------------------------
// Counter sources
// ---------------------------------------------------------------------------

/// Result of the counter-source ablation.
#[derive(Debug, Clone)]
pub struct CounterSourceResult {
    /// Per-method exclusive share disagreement (max over methods).
    pub max_fraction_delta: f64,
    /// Run cycles with the software counter.
    pub software_cycles: u64,
    /// Run cycles with the hardware (TSC) counter.
    pub hardware_cycles: u64,
}

/// Profile the same workload with the software counter and with a
/// TSC-style hardware counter, and compare the resulting profiles. The
/// paper's claim: the software counter is "fine and accurate enough" for
/// relative, method-level profiling.
pub fn run_counter_source() -> CounterSourceResult {
    let bench = phoenix::suite(phoenix::Scale::Small, 5).remove(3); // matrix_mult
    let program =
        compile_instrumented(bench.source(), &InstrumentOptions::default()).expect("compiles");

    let run = |hardware: bool| {
        let recorder = Recorder::new(&RecorderConfig {
            max_entries: 1 << 20,
            ..RecorderConfig::default()
        });
        let mut vm = Vm::with_config(
            program.clone(),
            Machine::new(CostModel::sgx_v1()),
            RunConfig::default(),
        );
        recorder.attach(vm.machine_mut());
        let clock = vm.machine().clock().clone();
        let hooks = if hardware {
            recorder.hooks_with(Box::new(TscCounter::new(clock, 30)), None)
        } else {
            recorder.hooks_with(Box::new(SimCounter::standard(clock)), None)
        };
        vm.set_hooks(Box::new(hooks));
        bench.setup(&mut vm).expect("setup");
        vm.run().expect("runs");
        let log = recorder.finish();
        let analyzer = Analyzer::new(log, program.debug.clone()).expect("validates");
        (analyzer.profile(), vm.machine().clock().now())
    };

    let (soft_profile, software_cycles) = run(false);
    let (hard_profile, hardware_cycles) = run(true);

    let mut max_delta = 0.0f64;
    for m in &soft_profile.methods {
        let soft = soft_profile.exclusive_fraction(&m.name);
        let hard = hard_profile.exclusive_fraction(&m.name);
        max_delta = max_delta.max((soft - hard).abs());
    }
    CounterSourceResult {
        max_fraction_delta: max_delta,
        software_cycles,
        hardware_cycles,
    }
}

/// Render the counter-source table.
pub fn render_counter_source(r: &CounterSourceResult) -> String {
    format!(
        "Counter sources (matrix_mult, sgx-v1)\n\n\
         software counter run: {} cycles\n\
         hardware counter run: {} cycles\n\
         max per-method exclusive-share disagreement: {:.4}\n\
         (the software counter loses no method-level accuracy)\n",
        r.software_cycles, r.hardware_cycles, r.max_fraction_delta
    )
}

// ---------------------------------------------------------------------------
// Selective profiling
// ---------------------------------------------------------------------------

/// Result of the selective-profiling ablation.
#[derive(Debug, Clone)]
pub struct SelectiveResult {
    /// Events recorded with full instrumentation.
    pub full_events: u64,
    /// Cycles with full instrumentation.
    pub full_cycles: u64,
    /// Events with only `match_word` instrumented.
    pub selective_events: u64,
    /// Cycles with selective instrumentation.
    pub selective_cycles: u64,
}

/// Instrument only the function the developer cares about and measure the
/// log-size and overhead reduction (§II-C "Selective code profiling").
pub fn run_selective() -> SelectiveResult {
    let bench = phoenix::suite(phoenix::Scale::Small, 9).remove(5); // string_match
    let run = |options: &InstrumentOptions| {
        let program = compile_instrumented(bench.source(), options).expect("compiles");
        let r = profile_program(
            program,
            CostModel::sgx_v1(),
            RunConfig::default(),
            &RecorderConfig {
                max_entries: 1 << 22,
                ..RecorderConfig::default()
            },
            |vm| bench.setup(vm),
        )
        .expect("runs");
        (r.log.entries.len() as u64, r.cycles)
    };
    let (full_events, full_cycles) = run(&InstrumentOptions::default());
    let (selective_events, selective_cycles) = run(&InstrumentOptions {
        filter: Some(NameFilter::include(["match_word"])),
    });
    SelectiveResult {
        full_events,
        full_cycles,
        selective_events,
        selective_cycles,
    }
}

/// Render the selective-profiling table.
pub fn render_selective(r: &SelectiveResult) -> String {
    let mut out = String::from("Selective profiling (string_match, sgx-v1)\n\n");
    out.push_str(&render_table(
        &["configuration", "events", "log bytes", "cycles"],
        &[
            vec![
                "full instrumentation".into(),
                r.full_events.to_string(),
                (r.full_events * 24).to_string(),
                r.full_cycles.to_string(),
            ],
            vec![
                "match_word only".into(),
                r.selective_events.to_string(),
                (r.selective_events * 24).to_string(),
                r.selective_cycles.to_string(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\nlog-size reduction: {:.1}x, runtime reduction: {:.2}x\n",
        r.full_events as f64 / r.selective_events as f64,
        r.full_cycles as f64 / r.selective_cycles as f64
    ));
    out
}

// ---------------------------------------------------------------------------
// Log-reservation modes (lock-free fetch-and-add vs atomic-free partitions)
// ---------------------------------------------------------------------------

/// Result of the reservation-mode ablation.
#[derive(Debug, Clone)]
pub struct ReservationResult {
    /// Cycles with the classic fetch-and-add log.
    pub fetch_add_cycles: u64,
    /// Events the classic log recorded.
    pub fetch_add_events: u64,
    /// Cycles with the atomic-free partitioned log.
    pub partitioned_cycles: u64,
    /// Events the partitioned log recorded.
    pub partitioned_events: u64,
}

/// Profile the same multithreaded workload with both reservation designs
/// (§II-B: the log "does not actually rely on the availability of these
/// \[atomic\] instructions"). Both must capture the identical event stream;
/// the partitioned log dodges tail contention at the price of static
/// capacity splitting.
pub fn run_reservation_modes() -> ReservationResult {
    use std::sync::Arc;
    use teeperf_core::{PartitionedHooks, PartitionedLog, SimCounter};

    let bench = phoenix::suite(phoenix::Scale::Small, 3).remove(5); // string_match
    let program =
        compile_instrumented(bench.source(), &InstrumentOptions::default()).expect("compiles");

    // Classic lock-free log via the standard driver.
    let classic = profile_program(
        program.clone(),
        CostModel::sgx_v1(),
        RunConfig::default(),
        &RecorderConfig {
            max_entries: 1 << 22,
            ..RecorderConfig::default()
        },
        |vm| bench.setup(vm),
    )
    .expect("classic run");

    // Partitioned log: 8 partitions cover the 5 VM threads.
    let (n_partitions, per_partition) = (8u64, 1u64 << 17);
    let shm = Arc::new(tee_sim::SharedMem::new(PartitionedLog::region_bytes(
        n_partitions,
        per_partition,
    )));
    let plog = PartitionedLog::init(
        Arc::clone(&shm),
        &teeperf_core::log::make_header(
            4242,
            n_partitions * per_partition,
            true,
            tee_sim::ENCLAVE_TEXT_BASE,
            tee_sim::SHM_BASE,
        ),
        n_partitions,
        per_partition,
    );
    let mut vm = Vm::with_config(
        program,
        Machine::new(CostModel::sgx_v1()),
        RunConfig::default(),
    );
    vm.machine_mut().map_shared(shm);
    let hooks = PartitionedHooks::new(
        plog.clone(),
        Box::new(SimCounter::standard(vm.machine().clock().clone())),
    );
    vm.set_hooks(Box::new(hooks));
    bench.setup(&mut vm).expect("setup");
    let exit = vm.run().expect("partitioned run");
    assert_eq!(exit, classic.exit_code);
    let plog_file = plog.drain();

    ReservationResult {
        fetch_add_cycles: classic.cycles,
        fetch_add_events: classic.log.entries.len() as u64,
        partitioned_cycles: vm.machine().clock().now(),
        partitioned_events: plog_file.entries.len() as u64,
    }
}

/// Render the reservation-mode table.
pub fn render_reservation(r: &ReservationResult) -> String {
    let mut out =
        String::from("Log reservation modes (string_match, sgx-v1, 4 worker threads)\n\n");
    out.push_str(&render_table(
        &["reservation", "events", "cycles"],
        &[
            vec![
                "fetch-and-add (lock-free)".into(),
                r.fetch_add_events.to_string(),
                r.fetch_add_cycles.to_string(),
            ],
            vec![
                "per-thread partitions (atomic-free)".into(),
                r.partitioned_events.to_string(),
                r.partitioned_cycles.to_string(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\npartitioned/fetch-add runtime: {:.3}x (no contended RMW on the tail)\n",
        r.partitioned_cycles as f64 / r.fetch_add_cycles as f64
    ));
    out
}

// ---------------------------------------------------------------------------
// EPC paging cliff
// ---------------------------------------------------------------------------

/// One point of the paging curve.
#[derive(Debug, Clone, Copy)]
pub struct EpcPoint {
    /// Working-set size as a fraction of the EPC.
    pub ratio: f64,
    /// Average cycles per page access.
    pub cycles_per_access: f64,
}

/// Sweep a sequential page walk across working sets around the EPC size —
/// the mechanism behind the paper's "up to 2000×" slowdown claim for
/// secure paging.
pub fn run_epc_paging(epc_pages: u64) -> Vec<EpcPoint> {
    [0.5, 0.9, 1.1, 2.0, 4.0]
        .into_iter()
        .map(|ratio| {
            let pages = ((epc_pages as f64) * ratio) as u64;
            let mut machine = Machine::new(CostModel::sgx_v1().with_epc_pages(epc_pages));
            machine.ecall();
            // Enough passes that steady-state behaviour dominates the cold
            // first sweep for below-capacity working sets.
            let passes = 50;
            let t0 = machine.clock().now();
            for _ in 0..passes {
                for p in 0..pages {
                    machine.read(tee_sim::ENCLAVE_HEAP_BASE + p * PAGE_SIZE, 8);
                }
            }
            EpcPoint {
                ratio,
                cycles_per_access: (machine.clock().now() - t0) as f64 / (passes * pages) as f64,
            }
        })
        .collect()
}

/// Render the paging curve.
pub fn render_epc(points: &[EpcPoint]) -> String {
    let mut out = String::from("EPC secure-paging cliff (sequential page walk, sgx-v1)\n\n");
    out.push_str(&render_table(
        &["working set / EPC", "cycles per access"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.ratio),
                    format!("{:.0}", p.cycles_per_access),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_bias_demonstrated() {
        let r = run_sampling_bias(150);
        assert!(
            (0.45..0.55).contains(&r.true_fraction_a),
            "teeperf truth {:.3}",
            r.true_fraction_a
        );
        let aligned_skew = (r.aligned_fraction_a - 0.5).abs();
        let misaligned_skew = (r.misaligned_fraction_a - 0.5).abs();
        assert!(
            aligned_skew > 0.35,
            "aligned sampling should be badly skewed, got {:.3}",
            r.aligned_fraction_a
        );
        assert!(
            misaligned_skew < aligned_skew,
            "misaligned ({misaligned_skew:.3}) must beat aligned ({aligned_skew:.3})"
        );
        assert!(render_bias(&r).contains("phase_a"));
    }

    #[test]
    fn counter_sources_agree_on_the_profile() {
        let r = run_counter_source();
        assert!(
            r.max_fraction_delta < 0.05,
            "profiles disagree by {:.4}",
            r.max_fraction_delta
        );
        assert!(render_counter_source(&r).contains("software counter"));
    }

    #[test]
    fn selective_profiling_shrinks_log_and_overhead() {
        let r = run_selective();
        assert!(
            r.selective_events * 3 < r.full_events,
            "selective {} vs full {}",
            r.selective_events,
            r.full_events
        );
        assert!(r.selective_cycles < r.full_cycles);
        assert!(render_selective(&r).contains("reduction"));
    }

    #[test]
    fn reservation_modes_capture_the_same_events() {
        let r = run_reservation_modes();
        assert_eq!(r.fetch_add_events, r.partitioned_events);
        assert!(
            r.partitioned_cycles < r.fetch_add_cycles,
            "partitioned ({}) must be cheaper than contended fetch-add ({})",
            r.partitioned_cycles,
            r.fetch_add_cycles
        );
        assert!(render_reservation(&r).contains("fetch-and-add"));
    }

    #[test]
    fn epc_cliff_appears_past_capacity() {
        let points = run_epc_paging(512);
        let below = points[0].cycles_per_access; // 0.5×
        let above = points[3].cycles_per_access; // 2.0×
        assert!(
            above > below * 50.0,
            "paging cliff missing: {below:.0} -> {above:.0}"
        );
        // Monotone growth across the cliff.
        assert!(points[1].cycles_per_access <= points[2].cycles_per_access);
        assert!(render_epc(&points).contains("cycles per access"));
    }
}
