//! Continuous-monitoring overhead: what does keeping the profiler *always
//! on* cost a long-running service?
//!
//! The paper measures batch recording overhead (Figure 4). This experiment
//! extends it to the `teeperf-live` subsystem: the long-running
//! `db_bench readrandomwriterandom` workload runs three ways —
//!
//! 1. **native** — probe disabled, no recording;
//! 2. **batch** — the paper's mode: one huge log sized for the whole run;
//! 3. **live** — a log three orders of magnitude smaller, rotated under
//!    the running workload by a real drainer thread feeding a rolling
//!    profile.
//!
//! The interesting result is that live costs the *enclave* the same as
//! batch — the drain work happens host-side, outside the TEE — while the
//! log footprint drops from `O(events)` to a fixed window, which is the
//! point of the subsystem. Emits `results/BENCH_live_overhead.json`.

// teeperf-lint: allow(raw-atomics, file): the bench harness's stop flag
// for its OS drainer thread — host-side orchestration, not shared-log
// state (the log is only touched through SharedLog's accessors).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lsm_store::{run_db_bench, BenchOptions};
use tee_sim::{CostModel, Machine};
use teeperf_analyzer::symbolize::Symbolizer;
use teeperf_analyzer::Profile;
use teeperf_core::{Profiler, Recorder, RecorderConfig};
use teeperf_live::{DrainPolicy, Drainer, RollingProfile};

/// Harness options.
#[derive(Debug, Clone)]
pub struct LiveBenchOptions {
    /// db_bench operations (the "long-running" knob).
    pub ops: u64,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Capacity of the live session's rotating log, in entries. The batch
    /// run gets `1 << 24` regardless — it has to hold everything.
    pub live_log_entries: u64,
    /// Rotation watermark percentage for the live drainer.
    pub watermark_pct: u8,
    /// TEE architecture.
    pub cost: CostModel,
}

impl Default for LiveBenchOptions {
    fn default() -> Self {
        LiveBenchOptions {
            ops: 20_000,
            value_bytes: 1_024,
            live_log_entries: 1 << 15,
            watermark_pct: 50,
            cost: CostModel::sgx_v1(),
        }
    }
}

/// Measured outcomes.
#[derive(Debug, Clone)]
pub struct LiveBenchResult {
    /// Virtual cycles with the probe disabled.
    pub native_cycles: u64,
    /// Virtual cycles under batch recording (whole-run log).
    pub batch_cycles: u64,
    /// Virtual cycles under live recording (rotating log + drainer thread).
    pub live_cycles: u64,
    /// Events the batch log captured (== the full event stream).
    pub batch_events: u64,
    /// Events the live session merged.
    pub live_events: u64,
    /// Events the live session lost to overflow (accounted, not silent).
    pub live_dropped: u64,
    /// Epochs the live log rotated through.
    pub epochs: u64,
    /// Host-side wall time of the live run, milliseconds.
    pub live_wall_ms: u128,
    /// The live session's final rolling profile, symbolized.
    pub live_profile: Profile,
    /// The batch analyzer's profile of the same workload.
    pub batch_profile: Profile,
}

impl LiveBenchResult {
    /// Batch recording slowdown over native (virtual cycles).
    pub fn batch_overhead(&self) -> f64 {
        self.batch_cycles as f64 / self.native_cycles as f64
    }

    /// Live recording slowdown over native (virtual cycles).
    pub fn live_overhead(&self) -> f64 {
        self.live_cycles as f64 / self.native_cycles as f64
    }

    /// Top-N methods of a profile as `(name, exclusive)` pairs.
    pub fn top(profile: &Profile, n: usize) -> Vec<(String, u64)> {
        profile
            .methods
            .iter()
            .take(n)
            .map(|m| (m.name.clone(), m.exclusive))
            .collect()
    }
}

/// One shared setup: recorder + entered machine + profiler.
fn profiled_machine(
    cost: &CostModel,
    config: &RecorderConfig,
    live: bool,
) -> (Recorder, Machine, Rc<RefCell<Profiler>>) {
    let recorder = Recorder::new(config);
    let mut machine = Machine::new(cost.clone());
    recorder.attach(&mut machine);
    machine.ecall();
    let hooks = recorder.sim_hooks(machine.clock().clone());
    let hooks = if live {
        hooks.with_live_writes()
    } else {
        hooks
    };
    let profiler = Rc::new(RefCell::new(Profiler::new(hooks)));
    (recorder, machine, profiler)
}

/// Run the three-way comparison.
///
/// # Panics
/// Panics if the batch log overflows (it is sized not to) or if live-mode
/// accounting does not balance against the batch event stream.
pub fn run_live_overhead(options: &LiveBenchOptions) -> LiveBenchResult {
    let bench_options = BenchOptions {
        ops: options.ops,
        value_bytes: options.value_bytes,
        ..BenchOptions::default()
    };

    // 1. Native: probe disabled.
    let mut machine = Machine::new(options.cost.clone());
    machine.ecall();
    run_db_bench(&mut machine, &bench_options, None);
    let native_cycles = machine.clock().now();

    // 2. Batch: the paper's mode, log sized for the whole run.
    let (recorder, mut machine, profiler) = profiled_machine(
        &options.cost,
        &RecorderConfig {
            max_entries: 1 << 24,
            ..RecorderConfig::default()
        },
        false,
    );
    run_db_bench(&mut machine, &bench_options, Some(Rc::clone(&profiler)));
    let batch_cycles = machine.clock().now();
    let batch_log = recorder.finish();
    assert_eq!(
        batch_log.header.dropped_entries(),
        0,
        "batch log overflowed"
    );
    let batch_events = batch_log.entries.len() as u64;
    let batch_debug = profiler.borrow().debug_info();
    let batch_profile = {
        let sym = Symbolizer::new(batch_debug, &batch_log.header);
        teeperf_analyzer::profile::build(&batch_log, &sym)
    };

    // 3. Live: a small rotating log, drained by a real host thread while
    // the enclave workload keeps writing.
    let (recorder, mut machine, profiler) = profiled_machine(
        &options.cost,
        &RecorderConfig {
            max_entries: options.live_log_entries,
            ..RecorderConfig::default()
        },
        true,
    );
    let header = recorder.log().header();
    let stop = Arc::new(AtomicBool::new(false));
    let drain_thread = {
        let log = recorder.log().clone();
        let policy = DrainPolicy {
            watermark_pct: options.watermark_pct,
        };
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drainer = Drainer::new(log, policy);
            let mut rolling = RollingProfile::new();
            loop {
                let batch = drainer.pump();
                rolling.ingest(&batch.entries);
                // ord: Acquire pairs with the Release store below so the
                // drainer observes everything the workload wrote before
                // requesting the final flush.
                if stop.load(Ordering::Acquire) {
                    // Writers are done: flush the final partial epoch.
                    loop {
                        let last = drainer.rotate_now();
                        if last.entries.is_empty() && last.dropped == 0 {
                            break;
                        }
                        rolling.ingest(&last.entries);
                    }
                    break;
                }
                if batch.entries.is_empty() {
                    std::thread::yield_now();
                }
            }
            rolling.finish();
            (drainer.epoch(), drainer.dropped_total(), rolling)
        })
    };
    let wall = std::time::Instant::now();
    run_db_bench(&mut machine, &bench_options, Some(Rc::clone(&profiler)));
    let live_cycles = machine.clock().now();
    // ord: Release pairs with the drainer's Acquire poll above.
    stop.store(true, Ordering::Release);
    let (epochs, live_dropped, rolling) = drain_thread.join().expect("drainer thread");
    let live_wall_ms = wall.elapsed().as_millis();
    let live_events = rolling.events();
    assert_eq!(
        live_events + live_dropped,
        batch_events,
        "live accounting must balance against the batch event stream"
    );
    let live_profile = {
        let sym = Symbolizer::new(profiler.borrow().debug_info(), &header);
        rolling.snapshot(&sym, live_dropped)
    };

    LiveBenchResult {
        native_cycles,
        batch_cycles,
        live_cycles,
        batch_events,
        live_events,
        live_dropped,
        epochs,
        live_wall_ms,
        live_profile,
        batch_profile,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialize the result as the `BENCH_live_overhead.json` artifact (no
/// external serialization crates in this workspace).
pub fn to_json(result: &LiveBenchResult, options: &LiveBenchOptions) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"live_overhead\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"lsm-store db_bench readrandomwriterandom\","
    );
    let _ = writeln!(out, "  \"arch\": \"{}\",", options.cost.kind);
    let _ = writeln!(out, "  \"ops\": {},", options.ops);
    let _ = writeln!(out, "  \"live_log_entries\": {},", options.live_log_entries);
    let _ = writeln!(out, "  \"watermark_pct\": {},", options.watermark_pct);
    let _ = writeln!(out, "  \"native_cycles\": {},", result.native_cycles);
    let _ = writeln!(out, "  \"batch_cycles\": {},", result.batch_cycles);
    let _ = writeln!(out, "  \"live_cycles\": {},", result.live_cycles);
    let _ = writeln!(out, "  \"batch_overhead\": {:.4},", result.batch_overhead());
    let _ = writeln!(out, "  \"live_overhead\": {:.4},", result.live_overhead());
    let _ = writeln!(out, "  \"batch_events\": {},", result.batch_events);
    let _ = writeln!(out, "  \"live_events\": {},", result.live_events);
    let _ = writeln!(out, "  \"live_dropped\": {},", result.live_dropped);
    let _ = writeln!(out, "  \"epochs\": {},", result.epochs);
    let _ = writeln!(out, "  \"live_wall_ms\": {},", result.live_wall_ms);
    out.push_str("  \"top5\": [\n");
    let top = LiveBenchResult::top(&result.live_profile, 5);
    for (i, (name, exclusive)) in top.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"method\": \"{}\", \"exclusive\": {}}}",
            json_escape(name),
            exclusive
        );
        out.push_str(if i + 1 < top.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test scale: the log is bigger than the whole event stream (~10k
    /// events at 800 ops), so overflow is *structurally* impossible no
    /// matter how the OS schedules the drainer thread — while the 10%
    /// watermark still forces several rotations. The default options keep
    /// the interesting small-log configuration; there drop counts are an
    /// honest measurement, not a test invariant.
    fn small() -> LiveBenchOptions {
        LiveBenchOptions {
            ops: 800,
            live_log_entries: 1 << 14,
            watermark_pct: 10,
            ..LiveBenchOptions::default()
        }
    }

    #[test]
    fn live_matches_batch_and_rotates() {
        let r = run_live_overhead(&small());
        // The enclave pays for recording either way; draining is host-side.
        assert!(r.batch_overhead() > 1.0);
        assert!(r.live_overhead() > 1.0);
        let ratio = r.live_cycles as f64 / r.batch_cycles as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "live should cost the enclave about what batch does, ratio {ratio:.3}"
        );
        // Capacity exceeds the stream, so nothing can be lost...
        assert!(r.batch_events < small().live_log_entries);
        assert_eq!(r.live_dropped, 0);
        assert_eq!(r.live_events, r.batch_events);
        // ...and the watermark still rotated the log repeatedly.
        assert!(r.epochs >= 3, "only {} epochs", r.epochs);
        // With a complete stream the rolling profile agrees with batch on
        // the hot methods. (Exclusive ticks differ slightly — entry writes
        // land at different shared-memory addresses across the two runs,
        // and the memory model's cost is address-dependent — so compare
        // the top-5 as a set, not ranks or cycles: near-equal methods can
        // swap places whenever the log header layout shifts addresses.)
        let names = |p: &Profile| {
            let mut v = p
                .methods
                .iter()
                .take(5)
                .map(|m| m.name.clone())
                .collect::<Vec<_>>();
            v.sort();
            v
        };
        assert_eq!(names(&r.live_profile), names(&r.batch_profile));
        for m in &r.live_profile.methods {
            let b = r
                .batch_profile
                .method(&m.name)
                .unwrap_or_else(|| panic!("{} missing in batch", m.name));
            assert_eq!(m.calls, b.calls, "{}", m.name);
        }
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let options = small();
        let r = run_live_overhead(&options);
        let json = to_json(&r, &options);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        for key in [
            "\"bench\"",
            "\"native_cycles\"",
            "\"live_overhead\"",
            "\"epochs\"",
            "\"top5\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the workspace.
        let count = |c: char| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
