//! Ablation: software counter vs hardware timestamp counter (the paper's
//! §II-B claim that the architecture-independent software counter is
//! "fine and accurate enough" for method-level relative profiling).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_counter_source
//! ```

use bench::ablations::{render_counter_source, run_counter_source};
use bench::util::write_artifact;

fn main() {
    eprintln!("profiling matrix_mult with both counter sources...");
    let result = run_counter_source();
    let text = render_counter_source(&result);
    let path = write_artifact("ablation_counter_source.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
