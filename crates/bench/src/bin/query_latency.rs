//! Windowed-query latency benchmark (see [`bench::querybench`]).
//!
//! Sweeps retained-window counts and times the three `/query` shapes the
//! daemon serves (`last:5` top-10, whole-history merge, two-window diff),
//! then writes `results/BENCH_query_latency.json`.
//!
//! Usage: `query_latency [--smoke]` — `--smoke` runs the tiny CI sweep.

use std::process::ExitCode;

use bench::querybench::{run_query_latency, QueryBenchOptions};
use bench::util::write_artifact;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let options = if smoke {
        QueryBenchOptions::smoke()
    } else {
        QueryBenchOptions::default()
    };
    println!(
        "query_latency: windows {:?}, {} calls/window x {} pids{}",
        options.window_counts,
        options.calls_per_window,
        options.pids,
        if smoke { " (smoke)" } else { "" }
    );

    let result = run_query_latency(&options);
    println!("\n{}", result.render());

    let path = write_artifact("BENCH_query_latency.json", &result.to_json());
    println!("wrote {}", path.display());

    if let Err(violation) = result.check() {
        eprintln!("FAIL: {violation}");
        return ExitCode::FAILURE;
    }
    println!("OK: every window count answered last:5, all-merge and diff queries");
    ExitCode::SUCCESS
}
