//! Ablation: log-reservation designs — the paper's lock-free
//! fetch-and-add tail vs. the atomic-free per-thread-partition alternative
//! it sketches for ISAs without atomic RMW instructions (§II-B).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_reservation
//! ```

use bench::ablations::{render_reservation, run_reservation_modes};
use bench::util::write_artifact;

fn main() {
    eprintln!("profiling string_match with both reservation designs...");
    let result = run_reservation_modes();
    let text = render_reservation(&result);
    let path = write_artifact("ablation_reservation.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
