//! Recorder hot-path contention benchmark (see [`bench::contention`]).
//!
//! Sweeps writer threads × batch size × transition mode, checks the runs
//! are exact (zero drops, drains byte-identical to the unbatched classic
//! run), and writes `results/BENCH_record_contention.json`.
//!
//! Usage: `record_contention [--smoke]` — `--smoke` runs the tiny CI grid.

use std::process::ExitCode;

use bench::contention::{run_contention_bench, ContentionOptions};
use bench::util::write_artifact;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let options = if smoke {
        ContentionOptions::smoke()
    } else {
        ContentionOptions::default()
    };
    println!(
        "record_contention: writers {:?} x batch {:?}{}",
        options.writers,
        options.batch_slots,
        if smoke { " (smoke)" } else { "" }
    );

    let result = run_contention_bench(&options);
    println!("\n{}", result.render());

    let path = write_artifact("BENCH_record_contention.json", &result.to_json());
    println!("wrote {}", path.display());

    if let Err(violation) = result.check() {
        eprintln!("FAIL: {violation}");
        return ExitCode::FAILURE;
    }
    for &writers in &options.writers {
        for &batch in options.batch_slots.iter().filter(|&&b| b > 1) {
            if let Some(speedup) = result.batched_speedup(writers, batch) {
                println!("speedup writers={writers} batch={batch}: {speedup:.2}x");
            }
        }
    }
    if result.host_cores < 4 {
        println!(
            "note: {} host core(s) — wall speedup targets need a multicore host; \
             see the note field in the JSON",
            result.host_cores
        );
    }
    println!("OK: zero drops, all drains identical to the unbatched classic run");
    ExitCode::SUCCESS
}
