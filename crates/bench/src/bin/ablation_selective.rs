//! Ablation: selective code profiling (§II-C) — log-size and overhead
//! reduction when only the functions under investigation are instrumented.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_selective
//! ```

use bench::ablations::{render_selective, run_selective};
use bench::util::write_artifact;

fn main() {
    eprintln!("running string_match with full and selective instrumentation...");
    let result = run_selective();
    let text = render_selective(&result);
    let path = write_artifact("ablation_selective.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
