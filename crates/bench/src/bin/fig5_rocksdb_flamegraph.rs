//! Regenerate Figure 5: the RocksDB `db_bench` flame graph under TEE-Perf.
//!
//! ```text
//! cargo run --release -p bench --bin fig5_rocksdb_flamegraph
//! ```
//!
//! Writes `results/fig5_rocksdb.svg`, `results/fig5_rocksdb.folded` and
//! `results/fig5_report.txt`.

use bench::fig5::{render_svg, run_fig5, Fig5Options};
use bench::util::write_artifact;

fn main() {
    let options = Fig5Options::default();
    eprintln!(
        "profiling db_bench readrandomwriterandom ({} ops, 80% reads) on {}...",
        options.ops, options.cost.kind
    );
    let result = run_fig5(&options);
    let svg_path = write_artifact("fig5_rocksdb.svg", &render_svg(&result, &options));
    write_artifact("fig5_rocksdb.folded", &result.graph.to_folded());
    write_artifact("fig5_report.txt", &result.report);

    println!("{}", result.report);
    println!("flame graph (terminal view):");
    println!("{}", result.graph.to_ascii(70));
    println!(
        "hotspots: rocksdb::Stats::Now {:.1}%, rocksdb::RandomGenerator {:.1}% \
         (paper: these two dominate the enclave profile)",
        result.stats_now_fraction * 100.0,
        result.random_generator_fraction * 100.0
    );
    println!("throughput: {:.0} ops/s (virtual)", result.ops_per_sec);
    eprintln!("wrote {}", svg_path.display());
}
