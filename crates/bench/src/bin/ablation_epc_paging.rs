//! Ablation: the EPC secure-paging cliff — the mechanism behind §I's
//! "EPC paging … can slow down application performance up to 2000×".
//!
//! ```text
//! cargo run --release -p bench --bin ablation_epc_paging
//! ```

use bench::ablations::{render_epc, run_epc_paging};
use bench::util::write_artifact;

fn main() {
    eprintln!("sweeping working-set sizes across the EPC capacity...");
    let points = run_epc_paging(2_048);
    let text = render_epc(&points);
    let path = write_artifact("ablation_epc_paging.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
