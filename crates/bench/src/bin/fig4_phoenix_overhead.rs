//! Regenerate Figure 4: TEE-Perf overhead relative to `perf` for the
//! Phoenix suite inside the simulated SGX TEE.
//!
//! ```text
//! cargo run --release -p bench --bin fig4_phoenix_overhead
//! ```
//!
//! Writes `results/fig4_phoenix_overhead.txt` and prints it.

use bench::fig4::{render_fig4, run_fig4, Fig4Options};
use bench::util::write_artifact;

fn main() {
    let options = Fig4Options::default();
    eprintln!(
        "running Phoenix suite ({} benchmarks x 3 configurations x {} seeds)...",
        7, options.runs
    );
    let rows = run_fig4(&options);
    let text = render_fig4(&rows, &options);
    let path = write_artifact("fig4_phoenix_overhead.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
