//! Regenerate Figure 6 and the §IV-C IOPS table: the SPDK case study.
//!
//! ```text
//! cargo run --release -p bench --bin fig6_spdk_casestudy
//! ```
//!
//! Writes `results/fig6_table.txt`, `results/fig6_naive.svg` and
//! `results/fig6_optimized.svg`.

use bench::fig6::{render_diff_svg, render_fig6, render_svgs, run_fig6, Fig6Options};
use bench::util::write_artifact;

fn main() {
    let options = Fig6Options::default();
    eprintln!(
        "running spdk perf (native / naive SGX / optimized SGX, {} ops each)...",
        options.throughput_ops
    );
    let result = run_fig6(&options);
    let text = render_fig6(&result);
    write_artifact("fig6_table.txt", &text);
    let (top, bottom) = render_svgs(&result);
    let top_path = write_artifact("fig6_naive.svg", &top);
    let bottom_path = write_artifact("fig6_optimized.svg", &bottom);
    write_artifact("fig6_diff.svg", &render_diff_svg(&result));

    print!("{text}");
    println!("\nnaive port flame graph (terminal view):");
    println!("{}", result.naive_graph.to_ascii(70));
    println!("optimized port flame graph (terminal view):");
    println!("{}", result.optimized_graph.to_ascii(70));
    eprintln!("wrote {} and {}", top_path.display(), bottom_path.display());
}
