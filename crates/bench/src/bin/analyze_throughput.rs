//! Measure stage-3 analyzer throughput: sequential entries/sec, the
//! sharded pipeline's speedup at 1/2/4/8 worker shards, and the symbol
//! cache's hit rate — on a ≥ 1M-entry synthetic multi-thread log and the
//! Phoenix profiling logs.
//!
//! ```text
//! cargo run --release -p bench --bin analyze_throughput [-- --smoke]
//! ```
//!
//! Writes `results/BENCH_analyze_throughput.json`. With `--smoke` a small
//! log and shards {1, 2} only (no Phoenix), asserting the artifact exists
//! and the model speedup at 2 shards is ≥ 1.0 — exits non-zero otherwise.

use bench::analyze::{run_analyze_bench, AnalyzeBenchOptions};
use bench::util::write_artifact;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let options = if smoke {
        AnalyzeBenchOptions::smoke()
    } else {
        AnalyzeBenchOptions::default()
    };
    eprintln!(
        "analyzing a {}-entry synthetic log ({} threads, {} functions) at shard counts {:?}{}...",
        options.entries,
        options.threads,
        options.functions,
        options.shard_counts,
        if options.include_phoenix {
            " plus phoenix small-scale logs"
        } else {
            ""
        }
    );
    let result = run_analyze_bench(&options);
    let path = write_artifact("BENCH_analyze_throughput.json", &result.to_json());

    print!("{}", result.render());
    eprintln!("wrote {}", path.display());

    if smoke {
        if !path.is_file() {
            eprintln!("smoke FAILED: artifact missing at {}", path.display());
            std::process::exit(1);
        }
        let identical = result
            .workloads
            .iter()
            .all(|w| w.timings.iter().all(|t| t.identical));
        if !identical {
            eprintln!("smoke FAILED: sharded profile differs from sequential");
            std::process::exit(1);
        }
        match result.speedup("synthetic", 2) {
            Some(s) if s >= 1.0 => eprintln!("smoke OK: model speedup at 2 shards = {s:.2}x"),
            Some(s) => {
                eprintln!("smoke FAILED: model speedup at 2 shards = {s:.2}x < 1.0");
                std::process::exit(1);
            }
            None => {
                eprintln!("smoke FAILED: 2-shard sweep missing");
                std::process::exit(1);
            }
        }
    }
}
