//! Fidelity-regime overhead ramp (see [`bench::regime`]).
//!
//! Drives a calm → storm → recovery load ramp three ways (native,
//! unbudgeted full fidelity, overhead-budgeted) and writes
//! `results/BENCH_regime_overhead.json`. The run fails unless the
//! budgeted session degrades into `Sampled` during the storm, settles
//! within its loss budget, accounts for every offered event, and returns
//! to `Full` during recovery — while the unbudgeted run blows the budget.
//!
//! Usage: `regime_bench [--smoke]` — `--smoke` runs the tiny CI ramp.

use std::process::ExitCode;

use bench::regime::{run_regime_overhead, RegimeBenchOptions};
use bench::util::write_artifact;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let options = if smoke {
        RegimeBenchOptions::smoke()
    } else {
        RegimeBenchOptions::default()
    };
    println!(
        "regime_bench: capacity {}, calm {} / storm {} pairs per pump, \
         budget {}%{}",
        options.capacity,
        options.calm_pairs,
        options.storm_pairs,
        options.budget_pct,
        if smoke { " (smoke)" } else { "" }
    );

    let result = run_regime_overhead(&options);
    println!("\n{}", result.render());
    for run in &result.runs {
        println!(
            "{}: final regime {}, {} transitions, settled storm loss {:.1}%, \
             recovery took {} pumps",
            run.name,
            run.final_regime,
            run.transitions,
            run.settled_storm_loss_pct,
            run.pumps_to_recover
        );
        for line in &run.event_lines {
            println!("  [events] {line}");
        }
    }

    let path = write_artifact("BENCH_regime_overhead.json", &result.to_json());
    println!("wrote {}", path.display());

    if let Err(violation) = result.check() {
        eprintln!("FAIL: {violation}");
        return ExitCode::FAILURE;
    }
    println!(
        "OK: budgeted run stayed within its {}% loss budget where full \
         fidelity exceeded it, with every event accounted",
        result.budget_pct
    );
    ExitCode::SUCCESS
}
