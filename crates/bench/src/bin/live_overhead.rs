//! Measure the continuous-monitoring overhead of `teeperf-live` on the
//! long-running lsm-store workload.
//!
//! ```text
//! cargo run --release -p bench --bin live_overhead
//! ```
//!
//! Writes `results/BENCH_live_overhead.json`.

use bench::live::{run_live_overhead, to_json, LiveBenchOptions, LiveBenchResult};
use bench::util::write_artifact;

fn main() {
    let options = LiveBenchOptions::default();
    eprintln!(
        "db_bench readrandomwriterandom, {} ops on {}: native vs batch vs live \
         ({}-entry rotating log, watermark {}%)...",
        options.ops, options.cost.kind, options.live_log_entries, options.watermark_pct
    );
    let result = run_live_overhead(&options);
    let path = write_artifact("BENCH_live_overhead.json", &to_json(&result, &options));

    println!(
        "native  {:>14} cycles\nbatch   {:>14} cycles  ({:.2}x)\nlive    {:>14} cycles  ({:.2}x)",
        result.native_cycles,
        result.batch_cycles,
        result.batch_overhead(),
        result.live_cycles,
        result.live_overhead()
    );
    println!(
        "live session: {} events over {} epochs of a {}-entry log, {} dropped, {} ms wall",
        result.live_events,
        result.epochs,
        options.live_log_entries,
        result.live_dropped,
        result.live_wall_ms
    );
    println!("top-5 (live rolling profile, exclusive cycles):");
    for (name, exclusive) in LiveBenchResult::top(&result.live_profile, 5) {
        println!("  {exclusive:>12}  {name}");
    }
    eprintln!("wrote {}", path.display());
}
