//! Ablation: sampling-frequency bias (the accuracy argument of §I —
//! "TEE-Perf does not suffer from sampling frequency bias, which can occur
//! with threads scheduled to align to the sampling frequency").
//!
//! ```text
//! cargo run --release -p bench --bin ablation_sampling_bias
//! ```

use bench::ablations::{render_bias, run_sampling_bias};
use bench::util::write_artifact;

fn main() {
    eprintln!("running two-phase alignment experiment...");
    let result = run_sampling_bias(400);
    let text = render_bias(&result);
    let path = write_artifact("ablation_sampling_bias.txt", &text);
    print!("{text}");
    eprintln!("wrote {}", path.display());
}
