//! Figure 5: the RocksDB `db_bench` flame graph.
//!
//! Runs `readrandomwriterandom` (80 % reads) under TEE-Perf inside the
//! simulated SGX TEE, then renders the flame graph. The paper's finding:
//! the benchmark "spent most of its time in getting a current timestamp
//! (`rocksdb::Stats::Now`) and generating random numbers
//! (`rocksdb::RandomGenerator::RandomGenerator`)".

use std::cell::RefCell;
use std::rc::Rc;

use lsm_store::{run_db_bench, BenchOptions};
use tee_sim::{CostModel, Machine};
use teeperf_analyzer::Analyzer;
use teeperf_core::{Profiler, Recorder, RecorderConfig};
use teeperf_flamegraph::{FlameGraph, SvgOptions};

/// Harness options.
#[derive(Debug, Clone)]
pub struct Fig5Options {
    /// db_bench operations.
    pub ops: u64,
    /// Value size (the paper-shaped profile needs RocksDB-style
    /// compressible-value generation to be visible: 4 KiB).
    pub value_bytes: usize,
    /// TEE architecture.
    pub cost: CostModel,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Fig5Options {
            ops: 12_000,
            value_bytes: 4_096,
            cost: CostModel::sgx_v1(),
        }
    }
}

/// Figure outputs.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The flame graph.
    pub graph: FlameGraph,
    /// The analyzer's sorted method report.
    pub report: String,
    /// Share of total time inside `rocksdb::Stats::Now`.
    pub stats_now_fraction: f64,
    /// Share of total time inside the value generator.
    pub random_generator_fraction: f64,
    /// Benchmark throughput (ops per virtual second).
    pub ops_per_sec: f64,
}

/// Run the profiled benchmark and build the figure.
pub fn run_fig5(options: &Fig5Options) -> Fig5Result {
    let recorder = Recorder::new(&RecorderConfig {
        max_entries: 1 << 24,
        ..RecorderConfig::default()
    });
    let mut machine = Machine::new(options.cost.clone());
    recorder.attach(&mut machine);
    machine.ecall();
    let profiler = Rc::new(RefCell::new(Profiler::new(
        recorder.sim_hooks(machine.clock().clone()),
    )));

    let bench = run_db_bench(
        &mut machine,
        &BenchOptions {
            ops: options.ops,
            value_bytes: options.value_bytes,
            ..BenchOptions::default()
        },
        Some(Rc::clone(&profiler)),
    );

    let log = recorder.finish();
    assert_eq!(log.header.dropped_entries(), 0, "fig5 log overflowed");
    let debug = profiler.borrow().debug_info();
    let analyzer = Analyzer::new(log, debug).expect("fresh log validates");
    let profile = analyzer.profile();
    let graph = FlameGraph::from_folded(&profile.folded);

    Fig5Result {
        stats_now_fraction: graph.fraction("rocksdb::Stats::Now"),
        random_generator_fraction: graph.fraction("rocksdb::RandomGenerator::RandomGenerator"),
        report: analyzer.report(),
        ops_per_sec: bench.ops_per_sec,
        graph,
    }
}

/// Render the SVG exactly as the figure shows it.
pub fn render_svg(result: &Fig5Result, options: &Fig5Options) -> String {
    result.graph.to_svg(
        &SvgOptions::default()
            .with_title("Figure 5 — RocksDB db_bench under TEE-Perf")
            .with_subtitle(format!(
                "readrandomwriterandom, 80% reads, {} on {} — Stats::Now {:.1}%, RandomGenerator {:.1}%",
                options.ops,
                options.cost.kind,
                result.stats_now_fraction * 100.0,
                result.random_generator_fraction * 100.0
            )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_hotspots_match_paper() {
        let options = Fig5Options {
            ops: 1_500,
            ..Fig5Options::default()
        };
        let r = run_fig5(&options);
        // The two paper hotspots dominate...
        assert!(
            r.stats_now_fraction > 0.25,
            "Stats::Now fraction {:.2}",
            r.stats_now_fraction
        );
        assert!(
            r.random_generator_fraction > 0.08,
            "RandomGenerator fraction {:.2}",
            r.random_generator_fraction
        );
        // ...and together account for most of the time.
        assert!(
            r.stats_now_fraction + r.random_generator_fraction > 0.4,
            "combined {:.2}",
            r.stats_now_fraction + r.random_generator_fraction
        );
        // The report and graph carry RocksDB-shaped names.
        assert!(r.report.contains("rocksdb::Stats::Now"));
        assert!(r
            .graph
            .to_folded()
            .contains("rocksdb::Benchmark::ReadRandomWriteRandom"));
        let svg = render_svg(&r, &options);
        assert!(svg.contains("Figure 5"));
        assert!(svg.contains("Stats::Now"));
    }

    #[test]
    fn native_run_is_not_timestamp_bound() {
        // Control experiment: on the host the ocall tax disappears, so
        // Stats::Now shrinks drastically — the distortion is TEE-specific,
        // which is the paper's whole premise.
        let sgx = run_fig5(&Fig5Options {
            ops: 1_000,
            ..Fig5Options::default()
        });
        let native = run_fig5(&Fig5Options {
            ops: 1_000,
            cost: CostModel::native(),
            ..Fig5Options::default()
        });
        assert!(
            sgx.stats_now_fraction > native.stats_now_fraction * 3.0,
            "sgx {:.2} vs native {:.2}",
            sgx.stats_now_fraction,
            native.stats_now_fraction
        );
    }
}
