//! Analyze-throughput benchmark: how fast does the stage-3 analyzer chew
//! through a recorded log, and what does the sharded per-thread pipeline
//! buy over the sequential build?
//!
//! Two workload families:
//!
//! * a **synthetic** multi-thread log (balanced call/return nesting over a
//!   configurable function universe) sized well past a million entries, and
//! * the **Phoenix** profiling logs from real instrumented runs at small
//!   scale (the same logs Figure 4 analyzes).
//!
//! For every shard count we time the three pipeline phases separately —
//! grouping, per-shard reconstruction+aggregation, merge+materialize — and
//! report two speedups:
//!
//! * `speedup` — the critical-path model `T_seq / (t_group + max(shard) +
//!   t_merge)`. Shard work is timed one shard at a time, so this is what a
//!   machine with enough cores gets from the partition; it is the honest
//!   headline on a CI host with a single core, where true parallel wall
//!   time cannot beat sequential.
//! * `speedup_wall` — sequential wall time over the real
//!   `build_with_shards` wall time, parallelism and thread-spawn overhead
//!   included. On a many-core host this approaches the model; on a
//!   single-core host it sits near (or below) 1.0.
//!
//! Every sharded profile is checked byte-identical (`==`, plus the folded
//! text) against the sequential one, and the symbolizer's intern-cache
//! hit/miss counters are captured from a cold cache per workload.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mcvm::DebugInfo;
use phoenix::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tee_sim::CostModel;
use teeperf_analyzer::profile::{self, analyze_shard, partition_by_load};
use teeperf_analyzer::reader::{self, Event};
use teeperf_analyzer::Symbolizer;
use teeperf_compiler::{compile_instrumented, profile_program, InstrumentOptions};
use teeperf_core::layout::{EventKind, LogEntry, LogHeader, LOG_VERSION};
use teeperf_core::{LogFile, RecorderConfig};

use crate::util::render_table;

/// Harness options.
#[derive(Debug, Clone)]
pub struct AnalyzeBenchOptions {
    /// Entries in the synthetic log (the acceptance bar is ≥ 1M).
    pub entries: usize,
    /// Recorder threads interleaved in the synthetic log.
    pub threads: u64,
    /// Distinct functions in the synthetic binary.
    pub functions: u16,
    /// Maximum call depth in the synthetic trace.
    pub max_depth: usize,
    /// Shard counts to sweep (1 is the sequential baseline).
    pub shard_counts: Vec<usize>,
    /// RNG seed for the synthetic trace.
    pub seed: u64,
    /// Also analyze Phoenix profiling logs (small scale).
    pub include_phoenix: bool,
    /// Timing repetitions per measurement (minimum is reported, the
    /// standard noise shield for sub-second phases).
    pub repeats: usize,
}

impl Default for AnalyzeBenchOptions {
    fn default() -> Self {
        AnalyzeBenchOptions {
            entries: 1 << 20,
            threads: 8,
            functions: 48,
            max_depth: 12,
            shard_counts: vec![1, 2, 4, 8],
            seed: 42,
            include_phoenix: true,
            repeats: 3,
        }
    }
}

impl AnalyzeBenchOptions {
    /// A fast configuration for CI smoke runs: a small log, shards 1 and 2,
    /// no Phoenix runs.
    pub fn smoke() -> AnalyzeBenchOptions {
        AnalyzeBenchOptions {
            entries: 1 << 16,
            shard_counts: vec![1, 2],
            include_phoenix: false,
            ..AnalyzeBenchOptions::default()
        }
    }
}

/// Timings for one shard count on one workload.
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// Worker shard count.
    pub shards: usize,
    /// OS worker threads the build actually spawned: `shards` clamped to
    /// the host's available parallelism (see
    /// `teeperf_analyzer::profile::shard_workers`). When this is 1 the
    /// "sharded" build ran sequentially and `speedup_wall` should read as
    /// overhead-of-sharding, not parallel speedup.
    pub workers: usize,
    /// Real `build_with_shards` wall time, milliseconds.
    pub wall_ms: f64,
    /// Critical-path model time, milliseconds.
    pub model_ms: f64,
    /// Model speedup vs the sequential baseline.
    pub speedup: f64,
    /// Wall speedup vs the sequential baseline.
    pub speedup_wall: f64,
    /// Whether the sharded profile equals the sequential one byte-for-byte.
    pub identical: bool,
}

/// Results for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Log entries analyzed.
    pub entries: u64,
    /// Threads in the log.
    pub threads: u64,
    /// Sequential analyzer throughput, entries per second.
    pub entries_per_sec: f64,
    /// Symbol-cache hits during one cold-cache sequential build.
    pub cache_hits: u64,
    /// Symbol-cache misses (= unique addresses resolved).
    pub cache_misses: u64,
    /// Hit fraction of the above.
    pub cache_hit_rate: f64,
    /// One entry per swept shard count.
    pub timings: Vec<ShardTiming>,
}

/// Results for the whole benchmark.
#[derive(Debug, Clone)]
pub struct AnalyzeBenchResult {
    /// Cores the host reported (`available_parallelism`); wall speedups
    /// cannot exceed this.
    pub host_cores: usize,
    /// One entry per workload.
    pub workloads: Vec<WorkloadResult>,
}

/// Build a synthetic multi-thread log: `threads` writers interleaved in
/// random bursts, each walking balanced call/return nests over a
/// `functions`-sized binary. Deterministic in `seed`.
///
/// Call targets follow a static call graph (every function has two
/// possible callees) rather than a uniform random walk: like a real
/// program, the trace then has a bounded set of unique stacks, so the
/// folded table stays flame-graph-sized and the benchmark exercises the
/// per-thread reconstruction phase — the part sharding parallelizes —
/// instead of drowning in a pathological merge.
pub fn synthetic_log(options: &AnalyzeBenchOptions) -> (LogFile, DebugInfo) {
    let names: Vec<String> = (0..options.functions)
        .map(|i| format!("synthetic_fn_{i:03}"))
        .collect();
    let debug = DebugInfo::from_functions(names.iter().map(|n| (n.as_str(), 4u64, 1u32)));
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut entries = Vec::with_capacity(options.entries);
    let mut stacks: Vec<Vec<u16>> = vec![Vec::new(); options.threads as usize];
    let mut clock = 1_000u64;
    let roots = options.functions.clamp(1, 4);

    while entries.len() < options.entries {
        let tid = rng.gen_range(0..options.threads);
        let burst = rng
            .gen_range(1..=8usize)
            .min(options.entries - entries.len());
        for _ in 0..burst {
            let stack = &mut stacks[tid as usize];
            clock += rng.gen_range(1..=24u64);
            // Bias toward calls so stacks stay deep; always call when
            // empty, always return at the depth cap.
            let call =
                stack.is_empty() || (stack.len() < options.max_depth && rng.gen_range(0..5u32) < 3);
            let (kind, f) = if call {
                let f = match stack.last() {
                    None => rng.gen_range(0..roots),
                    Some(&parent) if rng.gen_range(0..2u32) == 0 => {
                        (parent * 2 + 1) % options.functions
                    }
                    Some(&parent) => (parent * 3 + 2) % options.functions,
                };
                stack.push(f);
                (EventKind::Call, f)
            } else {
                (EventKind::Return, stack.pop().expect("non-empty"))
            };
            entries.push(LogEntry {
                kind,
                counter: clock,
                addr: debug.entry_addr(f),
                tid,
            });
        }
    }
    // Open frames at the cut-off are intentional: the analyzer must charge
    // truncated frames without panicking, exactly as with a real snapshot.
    let n = entries.len() as u64;
    let log = LogFile::new(
        LogHeader {
            active: false,
            trace_calls: true,
            trace_returns: true,
            multithread: true,
            version: LOG_VERSION,
            pid: 7,
            size: n,
            tail: n,
            anchor: 0,
            shm_addr: 0,
        },
        entries,
    );
    (log, debug)
}

/// Run `f` `repeats` times; return the fastest duration and the last value.
fn min_time<R>(repeats: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let repeats = repeats.max(1);
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed();
    for _ in 1..repeats {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed());
    }
    (best, out)
}

/// Time one workload (a validated log + debug info) over the shard sweep.
fn bench_workload(
    name: &str,
    log: &LogFile,
    debug: &DebugInfo,
    shard_counts: &[usize],
    repeats: usize,
) -> WorkloadResult {
    let symbolizer = Symbolizer::new(debug.clone(), &log.header);

    // Warm-up pass so the first timed configuration isn't charged for
    // one-time costs (page faults on the log, allocator growth).
    let _ = profile::build_with_shards(log, &symbolizer.clone(), 1);

    // Phase timings, sequential: group then a single shard then
    // materialize. A cold symbolizer clone isolates this workload's
    // cache accounting.
    let (t_group, grouped) = min_time(repeats, || reader::group_by_thread(log));
    let threads: Vec<(u64, Vec<Event>)> = grouped.threads.into_iter().collect();
    let views: Vec<(u64, &[Event])> = threads
        .iter()
        .map(|(tid, events)| (*tid, events.as_slice()))
        .collect();
    let (t_seq_shard, (agg, calls)) = min_time(repeats, || analyze_shard(&views));
    let per_thread: BTreeMap<_, _> = calls.into_iter().collect();
    let anomalies = teeperf_analyzer::profile::Anomalies {
        incomplete_entries: grouped.incomplete,
        dropped_entries: log.header.dropped_entries(),
        orphan_returns: agg.orphan_returns,
        truncated_frames: agg.truncated_frames,
    };
    // The first materialize runs on the cold clone so the cache counters
    // describe exactly one cold build; repeats use fresh clones.
    let cold = symbolizer.clone();
    let t2 = Instant::now();
    let mut sequential = agg.materialize(&cold, per_thread.clone(), anomalies);
    let mut t_merge = t2.elapsed();
    let stats = cold.cache_stats();
    for _ in 1..repeats.max(1) {
        let fresh = symbolizer.clone();
        let t = Instant::now();
        let p = agg.materialize(&fresh, per_thread.clone(), anomalies);
        t_merge = t_merge.min(t.elapsed());
        assert_eq!(p, sequential, "{name}: materialize must be deterministic");
    }
    // The hand-rolled phase pipeline ends at materialize; the public build
    // additionally stamps the log's pid on the profile, so match it before
    // comparing against rebuilds.
    sequential.pids = std::collections::BTreeSet::from([log.header.pid]);

    let model_seq = t_group + t_seq_shard + t_merge;
    let (wall_seq, seq_rebuild) = min_time(repeats, || {
        profile::build_with_shards(log, &symbolizer.clone(), 1)
    });
    assert_eq!(
        seq_rebuild, sequential,
        "{name}: sequential rebuild must agree"
    );

    let loads: Vec<usize> = threads.iter().map(|(_, events)| events.len()).collect();
    let mut timings = Vec::new();
    for &shards in shard_counts {
        if shards <= 1 {
            timings.push(ShardTiming {
                shards: 1,
                workers: 1,
                wall_ms: ms(wall_seq),
                model_ms: ms(model_seq),
                speedup: 1.0,
                speedup_wall: 1.0,
                identical: true,
            });
            continue;
        }
        // Model: run each shard's work serially, keep the slowest.
        let partition = partition_by_load(&loads, shards);
        let mut max_shard = Duration::ZERO;
        for bucket in &partition {
            let bucket_views: Vec<(u64, &[Event])> = bucket
                .iter()
                .map(|i| (threads[*i].0, threads[*i].1.as_slice()))
                .collect();
            let (best, _) = min_time(repeats, || analyze_shard(&bucket_views));
            max_shard = max_shard.max(best);
        }
        let model = t_group + max_shard + t_merge;

        // Wall: the real scoped-thread build, then the identity check.
        let (wall, parallel) = min_time(repeats, || {
            profile::build_with_shards(log, &symbolizer.clone(), shards)
        });
        let identical = parallel == sequential
            && teeperf_flamegraph::FlameGraph::from_folded_ids(
                &parallel.symbols,
                &parallel.folded_ids,
            )
            .to_folded()
                == teeperf_flamegraph::FlameGraph::from_folded_ids(
                    &sequential.symbols,
                    &sequential.folded_ids,
                )
                .to_folded();

        timings.push(ShardTiming {
            shards,
            workers: profile::shard_workers(shards),
            wall_ms: ms(wall),
            model_ms: ms(model),
            speedup: ratio(model_seq.as_secs_f64(), model.as_secs_f64()),
            speedup_wall: ratio(wall_seq.as_secs_f64(), wall.as_secs_f64()),
            identical,
        });
    }

    WorkloadResult {
        name: name.to_string(),
        entries: log.entries.len() as u64,
        threads: threads.len() as u64,
        entries_per_sec: log.entries.len() as f64 / wall_seq.as_secs_f64().max(1e-9),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_hit_rate: stats.hit_rate(),
        timings,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Phoenix profiling logs at small scale: the first `count` suite members.
fn phoenix_logs(count: usize) -> Vec<(String, LogFile, DebugInfo)> {
    let mut out = Vec::new();
    for bench in phoenix::suite(Scale::Small, 9_000).into_iter().take(count) {
        let profiled = profile_program(
            compile_instrumented(bench.source(), &InstrumentOptions::default())
                .expect("benchmarks compile"),
            CostModel::sgx_v1(),
            mcvm::RunConfig::default(),
            &RecorderConfig {
                max_entries: 1 << 22,
                ..RecorderConfig::default()
            },
            |vm| bench.setup(vm),
        )
        .expect("profiled run");
        out.push((
            format!("phoenix/{}", bench.name()),
            profiled.log,
            profiled.debug,
        ));
    }
    out
}

/// Run the whole benchmark.
pub fn run_analyze_bench(options: &AnalyzeBenchOptions) -> AnalyzeBenchResult {
    let mut workloads = Vec::new();
    let (log, debug) = synthetic_log(options);
    workloads.push(bench_workload(
        "synthetic",
        &log,
        &debug,
        &options.shard_counts,
        options.repeats,
    ));
    if options.include_phoenix {
        for (name, log, debug) in phoenix_logs(3) {
            workloads.push(bench_workload(
                &name,
                &log,
                &debug,
                &options.shard_counts,
                options.repeats,
            ));
        }
    }
    AnalyzeBenchResult {
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workloads,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl AnalyzeBenchResult {
    /// The machine-readable artifact (`results/BENCH_analyze_throughput.json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"analyze_throughput\",");
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let clamped = self
            .workloads
            .iter()
            .any(|w| w.timings.iter().any(|t| t.workers < t.shards));
        if clamped {
            let _ = writeln!(
                s,
                "  \"note\": \"worker threads clamped to {} host core{}; clamped rows run \
                 (partially) sequentially and their speedup_wall measures sharding overhead, \
                 not parallelism\",",
                self.host_cores,
                if self.host_cores == 1 { "" } else { "s" }
            );
        }
        let _ = writeln!(s, "  \"workloads\": [");
        for (wi, w) in self.workloads.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&w.name));
            let _ = writeln!(s, "      \"entries\": {},", w.entries);
            let _ = writeln!(s, "      \"threads\": {},", w.threads);
            let _ = writeln!(s, "      \"entries_per_sec\": {:.1},", w.entries_per_sec);
            let _ = writeln!(s, "      \"cache_hits\": {},", w.cache_hits);
            let _ = writeln!(s, "      \"cache_misses\": {},", w.cache_misses);
            let _ = writeln!(s, "      \"cache_hit_rate\": {:.4},", w.cache_hit_rate);
            let _ = writeln!(s, "      \"shards\": [");
            for (ti, t) in w.timings.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"shards\": {}, \"workers\": {}, \"wall_ms\": {:.3}, \
                     \"model_ms\": {:.3}, \"speedup\": {:.3}, \"speedup_wall\": {:.3}, \
                     \"identical\": {}}}",
                    t.shards,
                    t.workers,
                    t.wall_ms,
                    t.model_ms,
                    t.speedup,
                    t.speedup_wall,
                    t.identical
                );
                let _ = writeln!(s, "{}", if ti + 1 < w.timings.len() { "," } else { "" });
            }
            let _ = writeln!(s, "      ]");
            let _ = write!(s, "    }}");
            let _ = writeln!(
                s,
                "{}",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut body = Vec::new();
        for w in &self.workloads {
            for t in &w.timings {
                body.push(vec![
                    w.name.clone(),
                    w.entries.to_string(),
                    t.shards.to_string(),
                    format!("{:.1}", t.wall_ms),
                    format!("{:.1}", t.model_ms),
                    format!("{:.2}", t.speedup),
                    format!("{:.2}", t.speedup_wall),
                    if t.identical { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
        let mut out = format!(
            "Analyze throughput — sharded analyzer pipeline ({} host core{})\n\n",
            self.host_cores,
            if self.host_cores == 1 { "" } else { "s" }
        );
        out.push_str(&render_table(
            &[
                "workload",
                "entries",
                "shards",
                "wall ms",
                "model ms",
                "speedup",
                "wall spd",
                "identical",
            ],
            &body,
        ));
        for w in &self.workloads {
            out.push_str(&format!(
                "\n{}: {:.0} entries/s sequential, symbol cache {:.1}% hits ({} hits / {} misses)\n",
                w.name,
                w.entries_per_sec,
                100.0 * w.cache_hit_rate,
                w.cache_hits,
                w.cache_misses
            ));
        }
        out
    }

    /// Model speedup for a workload at a shard count, if swept.
    pub fn speedup(&self, workload: &str, shards: usize) -> Option<f64> {
        self.workloads
            .iter()
            .find(|w| w.name == workload)?
            .timings
            .iter()
            .find(|t| t.shards == shards)
            .map(|t| t.speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_log_is_deterministic_and_multithreaded() {
        let options = AnalyzeBenchOptions {
            entries: 4_000,
            threads: 4,
            ..AnalyzeBenchOptions::default()
        };
        let (a, _) = synthetic_log(&options);
        let (b, _) = synthetic_log(&options);
        assert_eq!(a.entries, b.entries, "same seed, same log");
        assert_eq!(a.entries.len(), 4_000);
        let tids: std::collections::BTreeSet<u64> = a.entries.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "all threads emit");
        assert_eq!(a.header.dropped_entries(), 0);
    }

    #[test]
    fn smoke_bench_reports_identical_profiles_and_sane_speedup() {
        let options = AnalyzeBenchOptions {
            entries: 20_000,
            threads: 4,
            shard_counts: vec![1, 2],
            include_phoenix: false,
            ..AnalyzeBenchOptions::default()
        };
        let result = run_analyze_bench(&options);
        assert_eq!(result.workloads.len(), 1);
        let w = &result.workloads[0];
        assert_eq!(w.entries, 20_000);
        assert!(w.timings.iter().all(|t| t.identical), "byte-identical");
        assert!(w.entries_per_sec > 0.0);
        assert!(w.cache_misses > 0, "cold cache resolves every address once");
        assert!(w.cache_hit_rate > 0.0, "repeat addresses hit the cache");
        let s2 = result.speedup("synthetic", 2).expect("swept");
        assert!(s2 > 0.5, "model speedup at 2 shards: {s2:.2}");
    }

    #[test]
    fn json_artifact_is_balanced_and_carries_the_key_fields() {
        let options = AnalyzeBenchOptions {
            entries: 8_000,
            threads: 2,
            shard_counts: vec![1, 2],
            include_phoenix: false,
            ..AnalyzeBenchOptions::default()
        };
        let result = run_analyze_bench(&options);
        let json = result.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        for key in [
            "\"bench\": \"analyze_throughput\"",
            "\"host_cores\"",
            "\"entries_per_sec\"",
            "\"cache_hit_rate\"",
            "\"speedup\"",
            "\"speedup_wall\"",
            "\"identical\": true",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let text = result.render();
        assert!(text.contains("synthetic"));
        assert!(text.contains("entries/s"));
    }
}
