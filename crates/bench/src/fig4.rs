//! Figure 4: profiling overhead of TEE-Perf relative to Linux `perf` for
//! the Phoenix suite inside the (simulated) Intel SGX TEE.
//!
//! Methodology mirrors the paper's Fex setup: every benchmark runs under
//! three configurations — uninstrumented (native), sampled (`perf-sim`),
//! and fully traced (TEE-Perf) — over `runs` seeds, and we report the
//! geometric mean. The headline series is `teeperf / perf` (the y-axis of
//! Figure 4); the paper's values are mean ≈ 1.9×, `string_match` ≈ 5.7×,
//! `linear_regression` ≈ 0.92× (TEE-Perf *faster* than perf).

use mcvm::{RunConfig, Vm};
use perf_sim::{PerfConfig, Sampler};
use phoenix::{Benchmark, Scale};
use tee_sim::{CostModel, Machine};
use teeperf_compiler::{compile_instrumented, profile_program, run_native, InstrumentOptions};
use teeperf_core::RecorderConfig;

use crate::util::{bar, geomean, render_table};

/// Sampling period used for the `perf` baseline. The paper samples at
/// perf's defaults; we run the sampler at 20 kHz-equivalent (180 k cycles
/// at 3.6 GHz) so sampling overhead is visible on millisecond-scale
/// simulated runs the way seconds-scale runs show it on real hardware
/// (≈ 8 % — matching the margin by which TEE-Perf beats perf on
/// linear_regression in the paper).
pub const PERF_PERIOD_CYCLES: u64 = 180_000;

/// Harness options.
#[derive(Debug, Clone)]
pub struct Fig4Options {
    /// Workload scale.
    pub scale: Scale,
    /// Seeds per configuration (the paper uses 10 runs).
    pub runs: u64,
    /// First seed.
    pub base_seed: u64,
    /// TEE architecture (the paper: SGX v1 via SCONE).
    pub cost: CostModel,
    /// Sampling period for the baseline.
    pub perf_period: u64,
}

impl Default for Fig4Options {
    fn default() -> Self {
        Fig4Options {
            scale: Scale::Full,
            runs: 10,
            base_seed: 1_000,
            cost: CostModel::sgx_v1(),
            perf_period: PERF_PERIOD_CYCLES,
        }
    }
}

/// Results for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Geometric-mean cycles, uninstrumented.
    pub native_cycles: f64,
    /// Geometric-mean cycles under the sampling baseline.
    pub perf_cycles: f64,
    /// Geometric-mean cycles under TEE-Perf.
    pub teeperf_cycles: f64,
    /// Events TEE-Perf recorded (last run).
    pub events: u64,
}

impl Fig4Row {
    /// The Figure-4 y-value: TEE-Perf runtime relative to `perf`.
    pub fn teeperf_vs_perf(&self) -> f64 {
        self.teeperf_cycles / self.perf_cycles
    }

    /// TEE-Perf slowdown over the uninstrumented run.
    pub fn teeperf_vs_native(&self) -> f64 {
        self.teeperf_cycles / self.native_cycles
    }

    /// `perf` slowdown over the uninstrumented run.
    pub fn perf_vs_native(&self) -> f64 {
        self.perf_cycles / self.native_cycles
    }
}

fn run_one(bench: &dyn Benchmark, options: &Fig4Options) -> (u64, u64, u64, u64) {
    let run_config = RunConfig::default();

    let native = run_native(
        mcvm::compile(bench.source()).expect("benchmarks compile"),
        options.cost.clone(),
        run_config.clone(),
        |vm| bench.setup(vm),
    )
    .expect("native run");

    let profiled = profile_program(
        compile_instrumented(bench.source(), &InstrumentOptions::default())
            .expect("benchmarks compile"),
        options.cost.clone(),
        run_config.clone(),
        &RecorderConfig {
            max_entries: 1 << 22,
            ..RecorderConfig::default()
        },
        |vm| bench.setup(vm),
    )
    .expect("teeperf run");
    assert_eq!(native.exit_code, profiled.exit_code, "{}", bench.name());
    assert_eq!(
        profiled.log.header.dropped_entries(),
        0,
        "{}: log overflowed — raise max_entries",
        bench.name()
    );

    let perf_cycles = {
        let program = mcvm::compile(bench.source()).expect("benchmarks compile");
        let mut vm = Vm::with_config(program, Machine::new(options.cost.clone()), run_config);
        let (sampler, _store) = Sampler::new(PerfConfig {
            period_cycles: options.perf_period,
            capture_stacks: true,
        });
        vm.set_observer(Box::new(sampler));
        bench.setup(&mut vm).expect("setup");
        let exit = vm.run().expect("perf run");
        assert_eq!(exit, native.exit_code);
        vm.machine().clock().now()
    };

    (
        native.cycles,
        perf_cycles,
        profiled.cycles,
        profiled.log.entries.len() as u64,
    )
}

/// Run the whole figure.
pub fn run_fig4(options: &Fig4Options) -> Vec<Fig4Row> {
    let names: Vec<&'static str> = phoenix::suite(options.scale, 0)
        .iter()
        .map(|b| b.name())
        .collect();
    let mut rows = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let mut native = Vec::new();
        let mut perf = Vec::new();
        let mut teeperf = Vec::new();
        let mut events = 0;
        for r in 0..options.runs {
            let bench = phoenix::suite(options.scale, options.base_seed + r).remove(idx);
            let (n, p, t, e) = run_one(bench.as_ref(), options);
            native.push(n as f64);
            perf.push(p as f64);
            teeperf.push(t as f64);
            events = e;
        }
        rows.push(Fig4Row {
            name,
            native_cycles: geomean(&native),
            perf_cycles: geomean(&perf),
            teeperf_cycles: geomean(&teeperf),
            events,
        });
    }
    rows
}

/// Geometric mean of the per-benchmark `teeperf/perf` ratios.
pub fn mean_relative_overhead(rows: &[Fig4Row]) -> f64 {
    geomean(
        &rows
            .iter()
            .map(Fig4Row::teeperf_vs_perf)
            .collect::<Vec<_>>(),
    )
}

/// Render the figure as a table plus an ASCII bar chart.
pub fn render_fig4(rows: &[Fig4Row], options: &Fig4Options) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.3e}", r.native_cycles),
                format!("{:.3e}", r.perf_cycles),
                format!("{:.3e}", r.teeperf_cycles),
                format!("{:.2}", r.perf_vs_native()),
                format!("{:.2}", r.teeperf_vs_native()),
                format!("{:.2}", r.teeperf_vs_perf()),
                r.events.to_string(),
            ]
        })
        .collect();
    let mean = mean_relative_overhead(rows);
    body.push(vec![
        "geo-mean".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{mean:.2}"),
        String::new(),
    ]);

    let mut out = format!(
        "Figure 4 — TEE-Perf overhead relative to perf (Phoenix on {}, {} runs)\n\n",
        options.cost.kind, options.runs
    );
    out.push_str(&render_table(
        &[
            "benchmark",
            "native cyc",
            "perf cyc",
            "teeperf cyc",
            "perf/nat",
            "tee/nat",
            "tee/perf",
            "events",
        ],
        &body,
    ));
    out.push('\n');
    let max = rows
        .iter()
        .map(Fig4Row::teeperf_vs_perf)
        .fold(1.0f64, f64::max);
    for r in rows {
        out.push_str(&format!(
            "{:18} {:5.2}x |{}|\n",
            r.name,
            r.teeperf_vs_perf(),
            bar(r.teeperf_vs_perf(), max, 50)
        ));
    }
    out.push_str(&format!(
        "\npaper: mean 1.9x, string_match 5.7x, linear_regression 0.92x\nmeasured mean: {mean:.2}x\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> Fig4Options {
        Fig4Options {
            scale: Scale::Small,
            runs: 2,
            ..Fig4Options::default()
        }
    }

    #[test]
    fn fig4_shape_holds_at_small_scale() {
        let options = quick_options();
        let rows = run_fig4(&options);
        assert_eq!(rows.len(), 7);

        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.name == n)
                .expect("benchmark present")
        };
        let sm = by_name("string_match");
        let lr = by_name("linear_regression");

        // The paper's ordering: string_match is the worst case for
        // instrumentation; linear_regression beats perf.
        assert!(
            sm.teeperf_vs_perf() > 3.0,
            "string_match tee/perf = {:.2}",
            sm.teeperf_vs_perf()
        );
        assert!(
            lr.teeperf_vs_perf() < 1.05,
            "linear_regression tee/perf = {:.2}",
            lr.teeperf_vs_perf()
        );
        assert!(
            sm.teeperf_vs_perf() > by_name("histogram").teeperf_vs_perf(),
            "string_match must be the most expensive"
        );

        // Every benchmark: TEE-Perf costs more than native; perf costs a
        // little more than native.
        for r in &rows {
            assert!(r.teeperf_vs_native() >= 1.0, "{}", r.name);
            assert!(r.perf_vs_native() >= 1.0, "{}", r.name);
        }

        let mean = mean_relative_overhead(&rows);
        assert!((1.2..3.2).contains(&mean), "mean tee/perf = {mean:.2}");

        let text = render_fig4(&rows, &options);
        assert!(text.contains("geo-mean"));
        assert!(text.contains("string_match"));
    }
}
