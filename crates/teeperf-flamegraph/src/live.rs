//! Rendering for continuous profiling: re-emit the flame graph from a
//! rolling aggregate on every refresh, with a status banner describing how
//! much of the stream the picture covers. `teeperf live` calls this once
//! per refresh interval; unlike the batch renderers there is no final log —
//! the folded stacks come straight from `teeperf-live`'s rolling profile.

use crate::{FlameGraph, SvgOptions};

/// Momentary state of a live session, displayed above the graph so a
/// reader knows which slice of the stream they are looking at.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveStatus {
    /// Drain epochs completed so far.
    pub epoch: u64,
    /// Events merged into the rolling profile.
    pub events: u64,
    /// Events dropped on log overflow (accounted, not silently lost).
    pub dropped: u64,
    /// Threads observed.
    pub threads: u64,
    /// Calls still open (no return seen yet); their time is not in the
    /// graph until they complete or the session finishes.
    pub open_frames: u64,
}

impl LiveStatus {
    /// One-line banner, e.g.
    /// `live · epoch 3 · 12000 events · 2 threads · 1 open · 0 dropped`.
    pub fn banner(&self) -> String {
        format!(
            "live · epoch {} · {} events · {} threads · {} open · {} dropped",
            self.epoch, self.events, self.threads, self.open_frames, self.dropped
        )
    }
}

/// Render the rolling aggregate for a terminal: status banner plus the
/// ASCII flame graph.
pub fn render_ascii(folded: &[(Vec<String>, u64)], status: &LiveStatus, width: usize) -> String {
    let graph = FlameGraph::from_folded(folded);
    let mut out = String::new();
    out.push_str(&status.banner());
    out.push('\n');
    if graph.total_ticks() == 0 {
        out.push_str("(no completed calls yet)\n");
    } else {
        out.push_str(&graph.to_ascii(width));
    }
    out
}

/// Render the rolling aggregate as SVG, with the status banner as the
/// subtitle (the caller's title is preserved).
pub fn render_svg(
    folded: &[(Vec<String>, u64)],
    status: &LiveStatus,
    options: &SvgOptions,
) -> String {
    let graph = FlameGraph::from_folded(folded);
    let opts = options.clone().with_subtitle(status.banner());
    graph.to_svg(&opts)
}

/// One process's folded stacks, keyed by its pid — the per-process slice
/// handed to the multi-process renderers.
pub type PidFolded<'a> = (u64, &'a [(Vec<String>, u64)]);

/// Group several processes' folded stacks under per-process root frames:
/// each pid's stacks are prefixed with a synthetic `pid <n>` frame, so the
/// flame graph of the result shows one tower per process whose width is
/// that process's share of the merged session. The output is sorted (the
/// invariant the flame-graph trie builders expect).
pub fn merge_folded_by_process(parts: &[PidFolded<'_>]) -> Vec<(Vec<String>, u64)> {
    let mut out = Vec::new();
    for (pid, folded) in parts {
        let root = format!("pid {pid}");
        for (path, ticks) in folded.iter() {
            let mut prefixed = Vec::with_capacity(path.len() + 1);
            prefixed.push(root.clone());
            prefixed.extend(path.iter().cloned());
            out.push((prefixed, *ticks));
        }
    }
    out.sort();
    out
}

/// Render a multi-process session for a terminal: the merged status banner
/// plus one per-process tower (see [`merge_folded_by_process`]).
pub fn render_ascii_multi(parts: &[PidFolded<'_>], status: &LiveStatus, width: usize) -> String {
    render_ascii(&merge_folded_by_process(parts), status, width)
}

/// Render a multi-process session as SVG, one per-process tower, merged
/// status banner as the subtitle.
pub fn render_svg_multi(
    parts: &[PidFolded<'_>],
    status: &LiveStatus,
    options: &SvgOptions,
) -> String {
    render_svg(&merge_folded_by_process(parts), status, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded() -> Vec<(Vec<String>, u64)> {
        vec![
            (vec!["main".into(), "work".into()], 80),
            (vec!["main".into()], 20),
        ]
    }

    fn status() -> LiveStatus {
        LiveStatus {
            epoch: 3,
            events: 12_000,
            dropped: 7,
            threads: 2,
            open_frames: 1,
        }
    }

    #[test]
    fn ascii_leads_with_banner() {
        let out = render_ascii(&folded(), &status(), 60);
        let first = out.lines().next().unwrap();
        assert_eq!(
            first,
            "live · epoch 3 · 12000 events · 2 threads · 1 open · 7 dropped"
        );
        assert!(out.contains("work"));
    }

    #[test]
    fn ascii_handles_empty_aggregate() {
        let out = render_ascii(&[], &LiveStatus::default(), 60);
        assert!(out.contains("no completed calls yet"));
    }

    #[test]
    fn svg_carries_banner_as_subtitle() {
        let opts = SvgOptions::default().with_title("rolling profile");
        let out = render_svg(&folded(), &status(), &opts);
        assert!(out.contains("rolling profile"));
        assert!(out.contains("epoch 3"));
        assert!(out.contains("work"));
    }

    #[test]
    fn per_process_grouping_prefixes_pid_roots() {
        let a = folded();
        let b = vec![(vec!["main".into()], 40u64)];
        let merged = merge_folded_by_process(&[(11, a.as_slice()), (22, b.as_slice())]);
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().any(|(p, t)| p
            == &vec!["pid 11".to_string(), "main".into(), "work".into()]
            && *t == 80));
        assert!(merged
            .iter()
            .any(|(p, t)| p == &vec!["pid 22".to_string(), "main".into()] && *t == 40));
        let total: u64 = merged.iter().map(|(_, t)| t).sum();
        assert_eq!(total, 140, "grouping must preserve every tick");
        let mut sorted = merged.clone();
        sorted.sort();
        assert_eq!(sorted, merged, "output must be sorted");
    }

    #[test]
    fn multi_render_shows_one_tower_per_process() {
        let a = folded();
        let b = vec![(vec!["main".into()], 40u64)];
        let parts = [(11u64, a.as_slice()), (22u64, b.as_slice())];
        let ascii = render_ascii_multi(&parts, &status(), 60);
        assert!(ascii.contains("pid 11"));
        assert!(ascii.contains("pid 22"));
        let svg = render_svg_multi(&parts, &status(), &SvgOptions::default());
        assert!(svg.contains("pid 11"));
        assert!(svg.contains("pid 22"));
    }
}
