//! Rendering for continuous profiling: re-emit the flame graph from a
//! rolling aggregate on every refresh, with a status banner describing how
//! much of the stream the picture covers. `teeperf live` calls this once
//! per refresh interval; unlike the batch renderers there is no final log —
//! the folded stacks come straight from `teeperf-live`'s rolling profile.

use crate::{FlameGraph, SvgOptions};

/// Momentary state of a live session, displayed above the graph so a
/// reader knows which slice of the stream they are looking at.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveStatus {
    /// Drain epochs completed so far.
    pub epoch: u64,
    /// Events merged into the rolling profile.
    pub events: u64,
    /// Events dropped on log overflow (accounted, not silently lost).
    pub dropped: u64,
    /// Threads observed.
    pub threads: u64,
    /// Calls still open (no return seen yet); their time is not in the
    /// graph until they complete or the session finishes.
    pub open_frames: u64,
}

impl LiveStatus {
    /// One-line banner, e.g.
    /// `live · epoch 3 · 12000 events · 2 threads · 1 open · 0 dropped`.
    pub fn banner(&self) -> String {
        format!(
            "live · epoch {} · {} events · {} threads · {} open · {} dropped",
            self.epoch, self.events, self.threads, self.open_frames, self.dropped
        )
    }
}

/// Render the rolling aggregate for a terminal: status banner plus the
/// ASCII flame graph.
pub fn render_ascii(folded: &[(Vec<String>, u64)], status: &LiveStatus, width: usize) -> String {
    let graph = FlameGraph::from_folded(folded);
    let mut out = String::new();
    out.push_str(&status.banner());
    out.push('\n');
    if graph.total_ticks() == 0 {
        out.push_str("(no completed calls yet)\n");
    } else {
        out.push_str(&graph.to_ascii(width));
    }
    out
}

/// Render the rolling aggregate as SVG, with the status banner as the
/// subtitle (the caller's title is preserved).
pub fn render_svg(
    folded: &[(Vec<String>, u64)],
    status: &LiveStatus,
    options: &SvgOptions,
) -> String {
    let graph = FlameGraph::from_folded(folded);
    let opts = options.clone().with_subtitle(status.banner());
    graph.to_svg(&opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded() -> Vec<(Vec<String>, u64)> {
        vec![
            (vec!["main".into(), "work".into()], 80),
            (vec!["main".into()], 20),
        ]
    }

    fn status() -> LiveStatus {
        LiveStatus {
            epoch: 3,
            events: 12_000,
            dropped: 7,
            threads: 2,
            open_frames: 1,
        }
    }

    #[test]
    fn ascii_leads_with_banner() {
        let out = render_ascii(&folded(), &status(), 60);
        let first = out.lines().next().unwrap();
        assert_eq!(
            first,
            "live · epoch 3 · 12000 events · 2 threads · 1 open · 7 dropped"
        );
        assert!(out.contains("work"));
    }

    #[test]
    fn ascii_handles_empty_aggregate() {
        let out = render_ascii(&[], &LiveStatus::default(), 60);
        assert!(out.contains("no completed calls yet"));
    }

    #[test]
    fn svg_carries_banner_as_subtitle() {
        let opts = SvgOptions::default().with_title("rolling profile");
        let out = render_svg(&folded(), &status(), &opts);
        assert!(out.contains("rolling profile"));
        assert!(out.contains("epoch 3"));
        assert!(out.contains("work"));
    }
}
