//! Deterministic frame coloring.

/// Color schemes for flame graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Palette {
    /// The classic warm (red–orange–yellow) flamegraph.pl look.
    #[default]
    Warm,
    /// Blue–green tones (the "io" palette).
    Cool,
    /// Grayscale (for print).
    Gray,
}

/// FNV-1a hash for stable per-name variation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Palette {
    /// The fill color for a frame with the given name, as `rgb(r,g,b)`.
    /// The same name always maps to the same color (so the same function is
    /// recognizable across graphs), with hue jitter within the scheme.
    pub fn color_for(self, name: &str) -> String {
        let h = fnv1a(name);
        let v1 = (h & 0xff) as u32; // 0..255
        let v2 = ((h >> 8) & 0xff) as u32; // 0..255
        let (r, g, b) = match self {
            Palette::Warm => (205 + v1 * 50 / 255, 50 + v2 * 130 / 255, v1 * 30 / 255),
            Palette::Cool => (v1 * 60 / 255, 120 + v2 * 100 / 255, 160 + v1 * 80 / 255),
            Palette::Gray => {
                let g = 120 + v1 * 100 / 255;
                (g, g, g)
            }
        };
        format!("rgb({r},{g},{b})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_are_deterministic_per_name() {
        let p = Palette::Warm;
        assert_eq!(p.color_for("main"), p.color_for("main"));
        assert_ne!(p.color_for("main"), p.color_for("other"));
    }

    #[test]
    fn warm_palette_is_red_dominated() {
        for name in ["a", "b", "getpid", "rocksdb::Get"] {
            let c = Palette::Warm.color_for(name);
            let nums: Vec<u32> = c
                .trim_start_matches("rgb(")
                .trim_end_matches(')')
                .split(',')
                .map(|x| x.parse().unwrap())
                .collect();
            assert!(nums[0] >= 205, "warm colors lead with red: {c}");
            assert!(nums[0] <= 255 && nums[1] <= 255 && nums[2] <= 255);
        }
    }

    #[test]
    fn gray_palette_is_gray() {
        let c = Palette::Gray.color_for("x");
        let nums: Vec<u32> = c
            .trim_start_matches("rgb(")
            .trim_end_matches(')')
            .split(',')
            .map(|x| x.parse().unwrap())
            .collect();
        assert_eq!(nums[0], nums[1]);
        assert_eq!(nums[1], nums[2]);
    }
}
