//! Static SVG renderer, in the spirit of `flamegraph.pl`.

use crate::palette::Palette;
use crate::{FlameGraph, Node};

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Image width in pixels.
    pub width: u32,
    /// Height of one frame row in pixels.
    pub frame_height: u32,
    /// Title printed at the top.
    pub title: String,
    /// Optional subtitle.
    pub subtitle: String,
    /// Frames narrower than this fraction of the width are culled.
    pub min_frac: f64,
    /// Color scheme.
    pub palette: Palette,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 1200,
            frame_height: 16,
            title: "Flame Graph".to_string(),
            subtitle: String::new(),
            min_frac: 0.0005,
            palette: Palette::Warm,
        }
    }
}

impl SvgOptions {
    /// Builder-style title setter.
    pub fn with_title(mut self, title: impl Into<String>) -> SvgOptions {
        self.title = title.into();
        self
    }

    /// Builder-style subtitle setter.
    pub fn with_subtitle(mut self, subtitle: impl Into<String>) -> SvgOptions {
        self.subtitle = subtitle.into();
        self
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Differential coloring hook: maps (stack path, inclusive share) to a
/// fill color and an extra tooltip suffix.
type DiffColor<'a> = &'a dyn Fn(&[String], f64) -> (String, String);

struct Renderer<'a> {
    opts: &'a SvgOptions,
    total: f64,
    max_depth: usize,
    body: String,
    frames: usize,
    diff: Option<DiffColor<'a>>,
    path: Vec<String>,
}

impl<'a> Renderer<'a> {
    fn frame(&mut self, node: &Node, depth: usize, x_ticks: u64) {
        let w = self.opts.width as f64 * node.total_ticks as f64 / self.total;
        if node.total_ticks == 0 || w < self.opts.width as f64 * self.opts.min_frac {
            return;
        }
        let x = self.opts.width as f64 * x_ticks as f64 / self.total;
        // Classic flame graph: roots at the bottom, leaves on top.
        let y = 40 + (self.max_depth - depth) as u32 * (self.opts.frame_height + 1);
        let pct = 100.0 * node.total_ticks as f64 / self.total;
        let name = escape(&node.name);
        self.path.push(node.name.clone());
        let (fill, extra) = match self.diff {
            Some(color) => color(&self.path, node.total_ticks as f64 / self.total),
            None => (self.opts.palette.color_for(&node.name), String::new()),
        };
        self.body.push_str(&format!(
            r##"<g><title>{name} ({ticks} ticks, {pct:.2}%{extra})</title><rect x="{x:.1}" y="{y}" width="{w:.1}" height="{h}" fill="{fill}" rx="1"/>"##,
            ticks = node.total_ticks,
            h = self.opts.frame_height,
            extra = escape(&extra),
        ));
        // Only label frames wide enough to hold text (~7px per char).
        let max_chars = (w / 7.0) as usize;
        if max_chars >= 3 {
            let label = if node.name.len() <= max_chars {
                name.clone()
            } else {
                format!("{}..", escape(&node.name[..max_chars.saturating_sub(2)]))
            };
            self.body.push_str(&format!(
                r##"<text x="{tx:.1}" y="{ty}" font-size="11" font-family="monospace" fill="#000">{label}</text>"##,
                tx = x + 3.0,
                ty = y + self.opts.frame_height - 4,
            ));
        }
        self.body.push_str("</g>\n");
        self.frames += 1;

        // Children packed left-to-right in name order (deterministic).
        let mut cx = x_ticks;
        for child in node.children.values() {
            self.frame(child, depth + 1, cx);
            cx += child.total_ticks;
        }
        self.path.pop();
    }
}

/// Render `graph` to an SVG document.
pub fn render(graph: &FlameGraph, opts: &SvgOptions) -> String {
    render_inner(graph, opts, None)
}

/// Render a **differential** flame graph: the layout of `after`, with each
/// frame colored by how its inclusive-time share changed from `before` —
/// red for growth, blue for shrinkage, neutral beige for ±unchanged
/// (Brendan Gregg's red/blue differential convention). Tooltips carry the
/// share delta in percentage points. Frames new in `after` count as pure
/// growth from zero.
pub fn render_diff(before: &FlameGraph, after: &FlameGraph, opts: &SvgOptions) -> String {
    use std::collections::HashMap;

    // Inclusive share of every stack path in `before`.
    let mut before_shares: HashMap<Vec<String>, f64> = HashMap::new();
    let before_total = before.total_ticks().max(1) as f64;
    fn collect(
        node: &Node,
        path: &mut Vec<String>,
        total: f64,
        out: &mut HashMap<Vec<String>, f64>,
    ) {
        for child in node.children.values() {
            path.push(child.name.clone());
            out.insert(path.clone(), child.total_ticks as f64 / total);
            collect(child, path, total, out);
            path.pop();
        }
    }
    collect(
        before.root(),
        &mut Vec::new(),
        before_total,
        &mut before_shares,
    );

    let color = move |path: &[String], after_share: f64| -> (String, String) {
        let before_share = before_shares.get(path).copied().unwrap_or(0.0);
        let delta = after_share - before_share;
        // Intensity saturates at a 20-percentage-point change.
        let t = (delta.abs() / 0.20).min(1.0);
        let fill = if delta > 0.001 {
            // toward red
            let g = 235.0 - 180.0 * t;
            format!("rgb(250,{g:.0},{g:.0})")
        } else if delta < -0.001 {
            // toward blue
            let rg = 235.0 - 180.0 * t;
            format!("rgb({rg:.0},{rg:.0},250)")
        } else {
            "rgb(240,235,225)".to_string()
        };
        (
            fill,
            format!(", {delta:+.2e} share vs before", delta = delta),
        )
    };
    render_inner(after, opts, Some(&color))
}

fn render_inner(graph: &FlameGraph, opts: &SvgOptions, diff: Option<DiffColor<'_>>) -> String {
    let total = graph.total_ticks().max(1) as f64;
    let max_depth = graph.max_depth();
    let height = 40 + (max_depth as u32 + 1) * (opts.frame_height + 1) + 24;

    let mut r = Renderer {
        opts,
        total,
        max_depth,
        body: String::new(),
        frames: 0,
        diff,
        path: Vec::new(),
    };
    // Render top-level frames (skip the synthetic root).
    let mut cx = 0u64;
    for child in graph.root().children.values() {
        r.frame(child, 1, cx);
        cx += child.total_ticks;
    }

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" viewBox="0 0 {w} {height}">"#,
        w = opts.width,
    ));
    svg.push('\n');
    svg.push_str(&format!(
        r##"<rect width="100%" height="100%" fill="#f8f8f8"/>
<text x="{cx}" y="20" text-anchor="middle" font-size="15" font-family="sans-serif" font-weight="bold">{title}</text>
"##,
        cx = opts.width / 2,
        title = escape(&opts.title),
    ));
    if !opts.subtitle.is_empty() {
        svg.push_str(&format!(
            r##"<text x="{cx}" y="36" text-anchor="middle" font-size="11" font-family="sans-serif" fill="#555">{s}</text>"##,
            cx = opts.width / 2,
            s = escape(&opts.subtitle),
        ));
        svg.push('\n');
    }
    svg.push_str(&r.body);
    svg.push_str(&format!(
        r##"<text x="4" y="{by}" font-size="10" font-family="sans-serif" fill="#888">{n} frames, {t} ticks total — generated by tee-perf</text>"##,
        by = height - 8,
        n = r.frames,
        t = graph.total_ticks(),
    ));
    svg.push_str("\n</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlameGraph {
        FlameGraph::from_folded(&[
            (vec!["main", "io", "read"], 30),
            (vec!["main", "compute<int>"], 60),
            (vec!["main"], 10),
        ])
    }

    #[test]
    fn svg_is_well_formed_and_contains_frames() {
        let svg = sample().to_svg(&SvgOptions::default().with_title("Test Graph"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        for name in ["main", "io", "read"] {
            assert!(svg.contains(&format!("<title>{name} (")), "{name} missing");
        }
        assert!(svg.contains("Test Graph"));
    }

    #[test]
    fn special_characters_escaped() {
        let svg = sample().to_svg(&SvgOptions::default());
        assert!(svg.contains("compute&lt;int&gt;"));
        assert!(!svg.contains("compute<int>"));
    }

    #[test]
    fn widths_proportional_to_ticks() {
        let svg = sample().to_svg(&SvgOptions {
            width: 1000,
            ..SvgOptions::default()
        });
        // main = 100% → width 1000; compute = 60%.
        assert!(svg.contains(r#"width="1000.0""#));
        assert!(svg.contains(r#"width="600.0""#));
        assert!(svg.contains(r#"width="300.0""#));
    }

    #[test]
    fn tiny_frames_culled() {
        let fg = FlameGraph::from_folded(&[
            (vec!["main", "big"], 1_000_000),
            (vec!["main", "microscopic"], 1),
        ]);
        let svg = fg.to_svg(&SvgOptions::default());
        assert!(svg.contains("big"));
        assert!(!svg.contains("microscopic"));
    }

    #[test]
    fn root_frames_sit_below_leaves() {
        let svg = sample().to_svg(&SvgOptions::default());
        // Extract y of main and read titles: main must have larger y.
        let y_of = |name: &str| -> f64 {
            let at = svg.find(&format!("<title>{name} (")).unwrap();
            let rect = svg[at..].find("y=\"").unwrap() + at + 3;
            svg[rect..].split('"').next().unwrap().parse().unwrap()
        };
        assert!(y_of("main") > y_of("read"));
    }

    #[test]
    fn empty_graph_renders_valid_svg() {
        let fg = FlameGraph::from_folded::<&str>(&[]);
        let svg = fg.to_svg(&SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }
}

#[cfg(test)]
mod diff_tests {
    use super::*;

    #[test]
    fn differential_colors_growth_red_and_shrinkage_blue() {
        let before =
            FlameGraph::from_folded(&[(vec!["main", "getpid"], 70), (vec!["main", "io"], 30)]);
        let after =
            FlameGraph::from_folded(&[(vec!["main", "getpid"], 5), (vec!["main", "io"], 95)]);
        let svg = render_diff(&before, &after, &SvgOptions::default());
        // getpid shrank -> its rect is blueish (blue channel at 250);
        // io grew -> reddish (red channel at 250).
        let color_of = |name: &str| -> String {
            let at = svg
                .find(&format!("<title>{name} ("))
                .expect("frame present");
            let fill = svg[at..].find("fill=\"").expect("fill attr") + at + 6;
            svg[fill..].split('"').next().expect("value").to_string()
        };
        let getpid = color_of("getpid");
        let io = color_of("io");
        assert!(getpid.ends_with(",250)"), "getpid should be blue: {getpid}");
        assert!(io.starts_with("rgb(250,"), "io should be red: {io}");
        // Tooltips carry the delta.
        assert!(svg.contains("share vs before"));
    }

    #[test]
    fn identical_graphs_render_neutral() {
        let g = FlameGraph::from_folded(&[(vec!["main", "x"], 10), (vec!["main", "y"], 10)]);
        let svg = render_diff(&g.clone(), &g, &SvgOptions::default());
        assert!(!svg.contains("rgb(250,"), "no growth red expected");
        assert!(!svg.contains(",250)"), "no shrink blue expected");
        assert!(svg.contains("rgb(240,235,225)"));
    }

    #[test]
    fn new_frames_count_as_pure_growth() {
        let before = FlameGraph::from_folded(&[(vec!["main", "old"], 100)]);
        let after =
            FlameGraph::from_folded(&[(vec!["main", "old"], 50), (vec!["main", "brand_new"], 50)]);
        let svg = render_diff(&before, &after, &SvgOptions::default());
        let at = svg.find("<title>brand_new (").expect("frame present");
        let fill = svg[at..].find("fill=\"").expect("fill attr") + at + 6;
        let color = svg[fill..].split('"').next().expect("value");
        assert!(
            color.starts_with("rgb(250,"),
            "new frame should be red: {color}"
        );
    }
}
