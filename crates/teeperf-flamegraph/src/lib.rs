//! # teeperf-flamegraph — stage 4 of TEE-Perf: the visualizer
//!
//! The paper pipes the analyzer's output into Brendan Gregg's Flame Graphs
//! ("implemented with as little as 15 LoC" thanks to the folded-stack
//! format). This crate is a self-contained flame-graph engine:
//!
//! * [`FlameGraph`] — a merge trie built from folded stacks
//!   (`path…;leaf ticks`), the exact interchange format `flamegraph.pl`
//!   consumes;
//! * [`FlameGraph::to_svg`] — a static SVG renderer with the classic
//!   warm palette, per-frame tooltips and percentage labels;
//! * [`FlameGraph::to_ascii`] — a terminal renderer for quick looks;
//! * round-tripping via [`FlameGraph::to_folded`] /
//!   [`FlameGraph::from_folded_text`].

#![forbid(unsafe_code)]

pub mod live;
pub mod palette;
pub mod svg;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use live::{LiveStatus, PidFolded};
pub use palette::Palette;
pub use svg::SvgOptions;

/// One node of the merged call trie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Frame (function) name.
    pub name: String,
    /// Ticks attributed to this exact stack (exclusive time of the leaf).
    pub self_ticks: u64,
    /// Ticks of this node plus all descendants.
    pub total_ticks: u64,
    /// Children by name.
    pub children: BTreeMap<String, Node>,
}

impl Node {
    fn new(name: &str) -> Node {
        Node {
            name: name.to_string(),
            self_ticks: 0,
            total_ticks: 0,
            children: BTreeMap::new(),
        }
    }

    fn insert(&mut self, path: &[String], ticks: u64) {
        self.total_ticks += ticks;
        match path.split_first() {
            None => self.self_ticks += ticks,
            Some((head, rest)) => self
                .children
                .entry(head.clone())
                .or_insert_with(|| Node::new(head))
                .insert(rest, ticks),
        }
    }

    /// Depth-first walk: `(depth, node)`.
    fn walk<'a>(&'a self, depth: usize, f: &mut impl FnMut(usize, &'a Node)) {
        f(depth, self);
        for child in self.children.values() {
            child.walk(depth + 1, f);
        }
    }
}

/// A flame graph: the merge trie over all recorded stacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameGraph {
    root: Node,
}

impl FlameGraph {
    /// Build from folded stacks: `(path outermost→innermost, ticks)`.
    pub fn from_folded<S: AsRef<str>>(folded: &[(Vec<S>, u64)]) -> FlameGraph {
        let mut root = Node::new("root");
        for (path, ticks) in folded {
            let path: Vec<String> = path.iter().map(|s| s.as_ref().to_string()).collect();
            root.insert(&path, *ticks);
        }
        FlameGraph { root }
    }

    /// Build from interned folded stacks: each frame is an index into
    /// `symbols` (the analyzer's `Profile::folded_ids` representation).
    ///
    /// The merge trie is first built keyed by symbol id — the hot join
    /// compares and hashes integers, not strings — and converted to the
    /// named trie once at the end, touching each symbol string once per
    /// distinct trie node. Ids without a `symbols` entry render as
    /// `sym#<id>` rather than panicking.
    pub fn from_folded_ids(symbols: &[String], folded: &[(Vec<u32>, u64)]) -> FlameGraph {
        #[derive(Default)]
        struct IdNode {
            self_ticks: u64,
            total_ticks: u64,
            children: HashMap<u32, IdNode>,
        }
        let mut root = IdNode::default();
        for (path, ticks) in folded {
            root.total_ticks += ticks;
            let mut node = &mut root;
            for id in path {
                let child = node.children.entry(*id).or_default();
                child.total_ticks += ticks;
                node = child;
            }
            node.self_ticks += ticks;
        }

        fn convert(id: u32, node: IdNode, symbols: &[String]) -> Node {
            let name = symbols
                .get(id as usize)
                .cloned()
                .unwrap_or_else(|| format!("sym#{id}"));
            let mut out = Node::new(&name);
            out.self_ticks = node.self_ticks;
            out.total_ticks = node.total_ticks;
            for (cid, child) in node.children {
                merge_child(&mut out.children, convert(cid, child, symbols));
            }
            out
        }
        // Distinct ids normally mean distinct names; if a caller hands in
        // a symbol table with duplicates, same-named siblings merge rather
        // than colliding.
        fn merge_child(children: &mut BTreeMap<String, Node>, node: Node) {
            match children.entry(node.name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(node);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let into = e.get_mut();
                    into.self_ticks += node.self_ticks;
                    into.total_ticks += node.total_ticks;
                    for (_, child) in node.children {
                        merge_child(&mut into.children, child);
                    }
                }
            }
        }

        let mut named_root = Node::new("root");
        named_root.self_ticks = root.self_ticks;
        named_root.total_ticks = root.total_ticks;
        for (cid, child) in root.children {
            merge_child(&mut named_root.children, convert(cid, child, symbols));
        }
        FlameGraph { root: named_root }
    }

    /// Parse the textual folded format (`a;b;c 123` per line).
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_folded_text(text: &str) -> Result<FlameGraph, String> {
        let mut folded = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (path, ticks) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: missing tick count", i + 1))?;
            let ticks: u64 = ticks
                .parse()
                .map_err(|_| format!("line {}: bad tick count `{ticks}`", i + 1))?;
            let path: Vec<String> = path.split(';').map(str::to_string).collect();
            if path.iter().any(String::is_empty) {
                return Err(format!("line {}: empty frame name", i + 1));
            }
            folded.push((path, ticks));
        }
        Ok(FlameGraph::from_folded(&folded))
    }

    /// Serialize to the textual folded format, deterministically ordered.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        fn rec(node: &Node, prefix: &mut Vec<String>, out: &mut String) {
            if node.self_ticks > 0 && !prefix.is_empty() {
                out.push_str(&format!("{} {}\n", prefix.join(";"), node.self_ticks));
            }
            for child in node.children.values() {
                prefix.push(child.name.clone());
                rec(child, prefix, out);
                prefix.pop();
            }
        }
        rec(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Total ticks across all stacks.
    pub fn total_ticks(&self) -> u64 {
        self.root.total_ticks
    }

    /// Maximum stack depth.
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        self.root.walk(0, &mut |d, _| max = max.max(d));
        max
    }

    /// The root node (named "root"; its children are the top-level frames).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Fraction of total time spent in frames named `name` (inclusive).
    /// Nested occurrences of the same name (recursion) are counted once,
    /// at their outermost occurrence.
    pub fn fraction(&self, name: &str) -> f64 {
        if self.root.total_ticks == 0 {
            return 0.0;
        }
        fn sum(node: &Node, name: &str) -> u64 {
            if node.name == name {
                return node.total_ticks;
            }
            node.children.values().map(|c| sum(c, name)).sum()
        }
        sum(&self.root, name) as f64 / self.root.total_ticks as f64
    }

    /// The single hottest leaf path and its share of total time.
    pub fn hottest_path(&self) -> (Vec<String>, f64) {
        let mut best: (Vec<String>, u64) = (Vec::new(), 0);
        fn rec(node: &Node, prefix: &mut Vec<String>, best: &mut (Vec<String>, u64)) {
            if node.self_ticks > best.1 {
                *best = (prefix.clone(), node.self_ticks);
            }
            for child in node.children.values() {
                prefix.push(child.name.clone());
                rec(child, prefix, best);
                prefix.pop();
            }
        }
        rec(&self.root, &mut Vec::new(), &mut best);
        let frac = if self.root.total_ticks == 0 {
            0.0
        } else {
            best.1 as f64 / self.root.total_ticks as f64
        };
        (best.0, frac)
    }

    /// Render a terminal flame view: indented tree with bars sized by
    /// inclusive share.
    pub fn to_ascii(&self, width: usize) -> String {
        let total = self.root.total_ticks.max(1);
        let mut out = String::new();
        self.root.walk(0, &mut |depth, node| {
            if depth == 0 {
                return;
            }
            let frac = node.total_ticks as f64 / total as f64;
            let bar_w = ((width as f64) * frac).round() as usize;
            out.push_str(&format!(
                "{:indent$}{} {:5.1}% |{}|\n",
                "",
                node.name,
                frac * 100.0,
                "█".repeat(bar_w.max(1)),
                indent = (depth - 1) * 2,
            ));
        });
        out
    }

    /// Render a static SVG flame graph.
    pub fn to_svg(&self, options: &SvgOptions) -> String {
        svg::render(self, options)
    }

    /// Render a red/blue differential SVG showing how this graph changed
    /// relative to `before` (see [`svg::render_diff`]).
    pub fn to_diff_svg(&self, before: &FlameGraph, options: &SvgOptions) -> String {
        svg::render_diff(before, self, options)
    }
}

impl fmt::Display for FlameGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlameGraph {
        FlameGraph::from_folded(&[
            (vec!["main", "io", "read"], 30),
            (vec!["main", "io", "write"], 10),
            (vec!["main", "compute"], 50),
            (vec!["main"], 10),
        ])
    }

    #[test]
    fn trie_merges_and_totals() {
        let fg = sample();
        assert_eq!(fg.total_ticks(), 100);
        let main = &fg.root().children["main"];
        assert_eq!(main.total_ticks, 100);
        assert_eq!(main.self_ticks, 10);
        assert_eq!(main.children["io"].total_ticks, 40);
        assert_eq!(main.children["io"].children["read"].self_ticks, 30);
        assert_eq!(fg.max_depth(), 3);
    }

    #[test]
    fn fraction_counts_inclusive_time_once() {
        let fg = sample();
        assert!((fg.fraction("io") - 0.4).abs() < 1e-9);
        assert!((fg.fraction("main") - 1.0).abs() < 1e-9);
        assert_eq!(fg.fraction("nonexistent"), 0.0);
        // Recursive frames counted once at the outermost occurrence.
        let rec = FlameGraph::from_folded(&[(vec!["f", "f", "f"], 10), (vec!["f"], 10)]);
        assert!((rec.fraction("f") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_path() {
        let (path, frac) = sample().hottest_path();
        assert_eq!(path, vec!["main".to_string(), "compute".into()]);
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn folded_ids_build_the_same_graph_as_names() {
        let symbols = vec![
            "main".to_string(),
            "io".to_string(),
            "read".to_string(),
            "write".to_string(),
            "compute".to_string(),
        ];
        let by_ids = FlameGraph::from_folded_ids(
            &symbols,
            &[
                (vec![0, 1, 2], 30),
                (vec![0, 1, 3], 10),
                (vec![0, 4], 50),
                (vec![0], 10),
            ],
        );
        assert_eq!(by_ids, sample());
        assert_eq!(by_ids.to_folded(), sample().to_folded());
    }

    #[test]
    fn folded_ids_tolerate_missing_and_duplicate_symbols() {
        // Id 7 has no entry: placeholder, no panic.
        let fg = FlameGraph::from_folded_ids(&["a".to_string()], &[(vec![0, 7], 5)]);
        assert_eq!(fg.root().children["a"].children["sym#7"].self_ticks, 5);
        // Two ids mapping to one name merge instead of colliding.
        let dup = FlameGraph::from_folded_ids(
            &["f".to_string(), "f".to_string()],
            &[(vec![0], 3), (vec![1], 4)],
        );
        assert_eq!(dup.root().children["f"].self_ticks, 7);
        assert_eq!(dup.total_ticks(), 7);
    }

    #[test]
    fn folded_text_round_trip() {
        let fg = sample();
        let text = fg.to_folded();
        assert!(text.contains("main;io;read 30"));
        let parsed = FlameGraph::from_folded_text(&text).unwrap();
        assert_eq!(parsed, fg);
    }

    #[test]
    fn from_folded_text_rejects_garbage() {
        assert!(FlameGraph::from_folded_text("main;io").is_err());
        assert!(FlameGraph::from_folded_text("main;io x").is_err());
        assert!(FlameGraph::from_folded_text("main;;io 5").is_err());
        // Empty input is a valid empty graph.
        assert_eq!(FlameGraph::from_folded_text("").unwrap().total_ticks(), 0);
    }

    #[test]
    fn ascii_renders_every_frame() {
        let a = sample().to_ascii(40);
        for name in ["main", "io", "read", "write", "compute"] {
            assert!(a.contains(name), "{name} missing from:\n{a}");
        }
        assert!(a.contains("100.0%"));
    }

    #[test]
    fn empty_graph_is_harmless() {
        let fg = FlameGraph::from_folded::<&str>(&[]);
        assert_eq!(fg.total_ticks(), 0);
        assert_eq!(fg.fraction("x"), 0.0);
        assert_eq!(fg.hottest_path().0.len(), 0);
        let _ = fg.to_ascii(40);
    }
}
