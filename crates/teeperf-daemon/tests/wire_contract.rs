//! The wire-contract property: an arbitrary [`Snapshot`], serialized with
//! `to_text()`, served over a real TCP socket by the daemon's own HTTP
//! serving path ([`teeperf_daemon::route`] + [`teeperf_daemon::http`]),
//! must come back byte-identical — and `summary_from_text` of the HTTP
//! body must equal the summary parsed directly from the source snapshot.
//!
//! The server here is live (a real listener, real connections, the exact
//! request-parsing and response-framing code `teeperfd` runs); only the
//! [`SnapshotService`] behind the routing table is swapped for one that
//! serves the generated snapshots, because a registry cannot be loaded
//! with arbitrary profiles.

use std::collections::{BTreeMap, BTreeSet};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use teeperf_analyzer::profile::Anomalies;
use teeperf_analyzer::{MethodStats, Profile};
use teeperf_daemon::http::{self, Request};
use teeperf_daemon::{route, SnapshotService};
use teeperf_flamegraph::LiveStatus;
use teeperf_live::{SessionEvent, Snapshot};

fn empty_profile() -> Profile {
    Profile {
        methods: Vec::new(),
        folded: Vec::new(),
        symbols: Vec::new(),
        folded_ids: Vec::new(),
        caller_edges: Vec::new(),
        per_thread_calls: BTreeMap::new(),
        total_ticks: 0,
        anomalies: Anomalies::default(),
        pids: BTreeSet::new(),
    }
}

fn empty_snapshot() -> Snapshot {
    Snapshot {
        status: LiveStatus::default(),
        profile: empty_profile(),
        events: Vec::new(),
        regime: None,
    }
}

/// The canned service: serves whatever snapshot the test last installed,
/// through the identical routing layer the daemon uses.
struct Canned {
    current: Arc<Mutex<Snapshot>>,
}

impl SnapshotService for Canned {
    fn merged(&mut self) -> Snapshot {
        self.current.lock().expect("snapshot lock").clone()
    }

    fn pid_snapshot(&mut self, pid: u64) -> Option<Snapshot> {
        let snap = self.current.lock().expect("snapshot lock").clone();
        snap.profile.pids.contains(&pid).then_some(snap)
    }

    fn metrics_text(&mut self) -> String {
        "canned_service 1\n".to_string()
    }
}

/// One live server for the whole test binary: accept → parse → route →
/// respond, one connection at a time, forever (it dies with the process).
fn server() -> &'static (SocketAddr, Arc<Mutex<Snapshot>>) {
    static SERVER: OnceLock<(SocketAddr, Arc<Mutex<Snapshot>>)> = OnceLock::new();
    SERVER.get_or_init(|| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind test server");
        let addr = listener.local_addr().expect("local addr");
        let current = Arc::new(Mutex::new(empty_snapshot()));
        let mut service = Canned {
            current: Arc::clone(&current),
        };
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                if let Ok(req) = http::read_request(&mut stream) {
                    let (response, _) = route(&mut service, &req);
                    let _ = response.write_to(&mut stream);
                }
            }
        });
        (addr, current)
    })
}

fn fetch(addr: SocketAddr, path: &str) -> (u16, String) {
    http::get(&addr.to_string(), path, Duration::from_secs(10)).expect("http get")
}

/// Build a snapshot from plain generated numbers (the shimmed proptest
/// has no string strategies; names are derived from small integers).
#[allow(clippy::type_complexity)]
fn assemble(
    counters: (u64, u64, u64, u64, u64, u64),
    methods: Vec<(u8, u64, u64, u64)>,
    folded: Vec<(Vec<u8>, u64)>,
    pids: Vec<u64>,
    events: Vec<(u64, u8)>,
) -> Snapshot {
    let name = |i: u8| format!("m{}", i % 26);
    let (epoch, n_events, dropped, threads, open, total_ticks) = counters;
    let mut profile = empty_profile();
    profile.total_ticks = total_ticks;
    profile.pids = pids.into_iter().collect();
    profile.methods = methods
        .into_iter()
        .map(|(i, calls, inclusive, exclusive)| MethodStats {
            name: name(i),
            addr: 0x40_0000 + u64::from(i),
            calls,
            inclusive,
            exclusive,
            min_inclusive: inclusive.min(1),
            max_inclusive: inclusive,
            threads: BTreeSet::from([0]),
        })
        .collect();
    profile.folded = folded
        .into_iter()
        .map(|(path, ticks)| (path.into_iter().map(name).collect(), ticks))
        .collect();
    let events = events
        .into_iter()
        .map(|(pid, kind)| match kind % 3 {
            0 => SessionEvent::Attached { pid },
            1 => SessionEvent::Detached { pid },
            _ => SessionEvent::Quarantined {
                pid,
                reason: format!("no progress after {pid} pumps"),
            },
        })
        .collect();
    Snapshot {
        status: LiveStatus {
            epoch,
            events: n_events,
            dropped,
            threads,
            open_frames: open,
        },
        profile,
        events,
        regime: None,
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_text` → live HTTP → body is byte-identical, and the parsed
    /// summary equals the direct one (which equals the source status).
    #[test]
    fn snapshot_round_trips_through_live_http(
        counters in (
            0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000,
            0u64..64, 0u64..64, 0u64..1_000_000,
        ),
        methods in proptest::collection::vec(
            (0u8..26, 1u64..1_000, 0u64..100_000, 0u64..100_000), 0..8),
        folded in proptest::collection::vec(
            (proptest::collection::vec(0u8..26, 1..5), 1u64..10_000), 0..8),
        pids in proptest::collection::vec(1u64..1_000, 0..5),
        events in proptest::collection::vec((1u64..1_000, 0u8..3), 0..5),
    ) {
        let snap = assemble(counters, methods, folded, pids, events);
        let direct = Snapshot::summary_from_text(&snap.to_text())
            .expect("every generated snapshot serializes parseably");
        prop_assert_eq!(&direct, &snap.status);

        let (addr, current) = server();
        let expected_text = snap.to_text();
        let pid_probe = snap.profile.pids.iter().next().copied();
        *current.lock().expect("snapshot lock") = snap;

        let (status, body) = fetch(*addr, "/snapshot");
        prop_assert_eq!(status, 200);
        prop_assert_eq!(&body, &expected_text, "HTTP must not reframe the payload");
        let over_wire = Snapshot::summary_from_text(&body)
            .expect("served snapshot must stay parseable");
        prop_assert_eq!(&over_wire, &direct);

        // The per-pid endpoint speaks the same contract.
        if let Some(pid) = pid_probe {
            let (status, body) = fetch(*addr, &format!("/pid/{pid}"));
            prop_assert_eq!(status, 200);
            prop_assert_eq!(
                Snapshot::summary_from_text(&body).expect("parseable"),
                over_wire
            );
        }
    }
}

#[test]
fn unknown_pid_is_a_404_not_a_forged_snapshot() {
    let (addr, current) = server();
    *current.lock().expect("snapshot lock") = empty_snapshot();
    let (status, body) = fetch(*addr, "/pid/424242");
    assert_eq!(status, 404);
    assert!(
        Snapshot::summary_from_text(&body).is_err(),
        "an error body must never parse as a healthy summary"
    );
}

#[test]
fn routing_is_exercised_through_the_same_objects_teeperfd_uses() {
    // Belt-and-braces: the `route` function used above is the daemon's
    // own (same symbol), not a test re-implementation.
    let mut service = Canned {
        current: Arc::new(Mutex::new(empty_snapshot())),
    };
    let (resp, stop) = route(
        &mut service,
        &Request {
            method: "GET".into(),
            target: "/healthz".into(),
        },
    );
    assert_eq!((resp.status, stop), (200, false));
}
