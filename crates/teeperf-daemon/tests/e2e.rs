//! End-to-end: real OS child processes writing through the file-backed
//! transport while a real `teeperfd` (spawned as its own process) serves
//! HTTP. This is the acceptance path of the daemon subsystem:
//!
//! * ≥ 2 writer children publish logs; the merged `/snapshot` totals equal
//!   the per-pid sums and `/pid/<n>` matches each child's own profile;
//! * stdin EOF is the graceful-shutdown trigger: one more drain, the final
//!   snapshot written to `--snapshot-out`, exit code 0;
//! * a writer killed mid-session (SIGKILL) is quarantined by the liveness
//!   machinery — the registry keeps serving, never wedges.
//!
//! Every test carries a hang guard (the daemon's failure mode is an
//! unresponsive loop, which a plain harness reports as a timeout at best).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use teeperf_live::Snapshot;

/// Aborts the whole process if the owning test runs longer than 120s.
struct HangGuard(Arc<Mutex<bool>>);

fn hang_guard(label: &'static str) -> HangGuard {
    let done = Arc::new(Mutex::new(false));
    let armed = Arc::clone(&done);
    std::thread::spawn(move || {
        for _ in 0..1200 {
            std::thread::sleep(Duration::from_millis(100));
            if *armed.lock().expect("guard lock") {
                return;
            }
        }
        eprintln!("e2e test hung for 120s: {label}");
        std::process::abort();
    });
    HangGuard(done)
}

impl Drop for HangGuard {
    fn drop(&mut self) {
        *self.0.lock().expect("guard lock") = true;
    }
}

struct ScratchDir(PathBuf);

fn scratch(label: &str) -> ScratchDir {
    let dir = std::env::temp_dir().join(format!("teeperfd-e2e-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned `teeperfd` with its stdin held open; killed on drop so a
/// panicking test never leaks the process.
struct DaemonProc {
    child: Child,
    addr: SocketAddr,
}

impl DaemonProc {
    fn spawn(dir: &Path, extra: &[&str]) -> DaemonProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_teeperfd"))
            .arg("--dir")
            .arg(dir)
            .args([
                "--listen",
                "127.0.0.1:0",
                "--pump-ms",
                "5",
                "--scan-every",
                "1",
            ])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn teeperfd");
        // The daemon prints its resolved address before entering the loop.
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read banner");
        let addr: SocketAddr = line
            .trim()
            .strip_prefix("teeperfd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .parse()
            .expect("parse address");
        DaemonProc { child, addr }
    }

    fn get(&self, path: &str) -> (u16, String) {
        teeperf_daemon::http::get(&self.addr.to_string(), path, Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("GET {path}: {e}"))
    }

    /// Close stdin (the supervisor's shutdown signal) and collect the exit.
    fn shutdown_via_stdin(mut self) -> std::process::ExitStatus {
        drop(self.child.stdin.take());
        self.child.wait().expect("wait teeperfd")
    }

    fn wait(mut self) -> std::process::ExitStatus {
        self.child.wait().expect("wait teeperfd")
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_writer(dir: &Path, iterations: u64, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_teeperf-shm-writer"))
        .arg("--dir")
        .arg(dir)
        .args(["--iterations", &iterations.to_string()])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn writer")
}

/// Poll `f` every 30ms until it returns `Some`, or fail after `secs`.
fn poll_until<T>(secs: u64, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Entries a writer publishes for n iterations (2 bookends + 4 per round).
fn entries_for(iterations: u64) -> u64 {
    2 + 4 * iterations
}

/// total_ticks of one writer profile (see the writer's workload comment).
fn ticks_for(iterations: u64) -> u64 {
    12 * iterations + 1
}

fn summary(text: &str) -> teeperf_flamegraph::LiveStatus {
    Snapshot::summary_from_text(text).unwrap_or_else(|e| panic!("unparseable snapshot: {e}"))
}

fn total_ticks_line(text: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix("total_ticks "))
        .and_then(|v| v.parse().ok())
        .expect("snapshot has total_ticks")
}

#[test]
fn two_real_processes_merge_into_one_snapshot() {
    let _guard = hang_guard("two_real_processes_merge_into_one_snapshot");
    let dir = scratch("merge");
    let daemon = DaemonProc::spawn(&dir.0, &[]);
    let (status, body) = daemon.get("/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let mut w1 = spawn_writer(&dir.0, 5, &[]);
    let mut w2 = spawn_writer(&dir.0, 8, &[]);
    let pid1 = u64::from(w1.id());
    let pid2 = u64::from(w2.id());
    assert!(w1.wait().expect("wait w1").success());
    assert!(w2.wait().expect("wait w2").success());

    let want = entries_for(5) + entries_for(8);
    let merged = poll_until(60, "both writers merged", || {
        let (code, text) = daemon.get("/snapshot");
        assert_eq!(code, 200);
        (summary(&text).events == want).then_some(text)
    });
    assert_eq!(summary(&merged).dropped, 0);
    assert!(merged.contains(&format!("pid {pid1}")), "{merged}");
    assert!(merged.contains(&format!("pid {pid2}")), "{merged}");
    assert_eq!(
        total_ticks_line(&merged),
        ticks_for(5) + ticks_for(8),
        "merged totals are the per-pid sums"
    );

    // Per-pid views match each child's own workload exactly.
    for (pid, iters) in [(pid1, 5u64), (pid2, 8u64)] {
        let (code, text) = daemon.get(&format!("/pid/{pid}"));
        assert_eq!(code, 200);
        assert_eq!(summary(&text).events, entries_for(iters));
        assert_eq!(total_ticks_line(&text), ticks_for(iters));
        assert!(
            text.contains(&format!("work {iters} {} {}", 10 * iters, 6 * iters)),
            "pid {pid} methods table: {text}"
        );
        assert!(text.contains(&format!("leaf {iters} {} {}", 4 * iters, 4 * iters)));
    }

    // The flame graph serves per-process towers for the merged view.
    let (code, svg) = daemon.get("/flame.svg");
    assert_eq!(code, 200);
    assert!(svg.contains("<svg"));
    assert!(svg.contains(&format!("pid {pid1}")), "merged towers by pid");

    let (_, metrics) = daemon.get("/metrics");
    assert!(metrics.contains("teeperf_attached_total 2"), "{metrics}");
    assert!(metrics.contains(&format!("teeperf_events_total {want}")));
    assert!(metrics.contains("teeperf_quarantined_total 0"));

    let (code, _) = daemon.get("/shutdown");
    assert_eq!(code, 200);
    let status = daemon.wait();
    assert!(status.success(), "clean exit after /shutdown: {status:?}");
}

#[test]
fn stdin_eof_drains_once_more_and_writes_the_final_snapshot() {
    let _guard = hang_guard("stdin_eof_drains_once_more_and_writes_the_final_snapshot");
    let dir = scratch("graceful");
    let out = dir.0.join("final.snapshot");
    let daemon = DaemonProc::spawn(
        &dir.0,
        &["--snapshot-out", out.to_str().expect("utf8 path")],
    );

    let mut w = spawn_writer(&dir.0, 6, &[]);
    assert!(w.wait().expect("wait writer").success());
    poll_until(60, "writer merged", || {
        let (_, text) = daemon.get("/snapshot");
        (summary(&text).events == entries_for(6)).then_some(())
    });

    let status = daemon.shutdown_via_stdin();
    assert!(status.success(), "stdin EOF must exit 0, got {status:?}");
    let written = std::fs::read_to_string(&out).expect("final snapshot written");
    assert_eq!(summary(&written).events, entries_for(6));
    assert_eq!(total_ticks_line(&written), ticks_for(6));
}

#[test]
fn killed_writer_is_quarantined_not_wedging_the_registry() {
    let _guard = hang_guard("killed_writer_is_quarantined_not_wedging_the_registry");
    let dir = scratch("killed");
    let daemon = DaemonProc::spawn(&dir.0, &[]);

    // A healthy writer alongside the doomed one: the survivors must keep
    // being served throughout.
    let mut healthy = spawn_writer(&dir.0, 4, &[]);
    let mut doomed = spawn_writer(&dir.0, 3, &["--hold"]);
    let doomed_pid = u64::from(doomed.id());
    assert!(healthy.wait().expect("wait healthy").success());

    let want = entries_for(4) + entries_for(3);
    poll_until(60, "both writers merged", || {
        let (_, text) = daemon.get("/snapshot");
        (summary(&text).events == want).then_some(())
    });

    doomed.kill().expect("kill writer");
    doomed.wait().expect("reap writer");

    // The liveness machinery notices the dead process and quarantines its
    // session; its contribution stays in the merge.
    let metrics = poll_until(60, "quarantine of the killed writer", || {
        let (_, m) = daemon.get("/metrics");
        m.contains("teeperf_quarantined_total 1").then_some(m)
    });
    assert!(
        metrics.contains(&format!("teeperf_quarantined{{pid=\"{doomed_pid}\"}} 1")),
        "{metrics}"
    );

    let (code, text) = daemon.get("/snapshot");
    assert_eq!(code, 200, "registry keeps serving after a quarantine");
    assert_eq!(summary(&text).events, want, "prior contribution retained");
    assert!(
        text.contains(&format!("quarantined pid {doomed_pid}")),
        "snapshot events section records the quarantine: {text}"
    );
    let (code, body) = daemon.get("/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, _) = daemon.get("/shutdown");
    assert_eq!(code, 200);
    assert!(daemon.wait().success());
}

#[test]
fn windowed_queries_answer_time_travel_over_live_writers() {
    let _guard = hang_guard("windowed_queries_answer_time_travel_over_live_writers");
    let dir = scratch("windows");
    // One writer iteration spans exactly 12 virtual ticks, so a 12-tick
    // window interval puts each iteration's leaf exit in its own window
    // (windows derive from the event counters, never wall time).
    let daemon = DaemonProc::spawn(&dir.0, &["--window-interval", "12", "--retain", "16"]);

    let mut w1 = spawn_writer(&dir.0, 7, &["--interval-ms", "3"]);
    let mut w2 = spawn_writer(&dir.0, 5, &[]);
    let pid1 = u64::from(w1.id());
    let pid2 = u64::from(w2.id());
    assert!(w1.wait().expect("wait w1").success());
    assert!(w2.wait().expect("wait w2").success());

    // The listing settles once both rings hold their final windows: pid1's
    // main returns at tick 86 (window 7), pid2's at 62 (window 5).
    let listing = poll_until(60, "both rings fully populated", || {
        let (code, text) = daemon.get("/windows");
        assert_eq!(code, 200);
        let parts = teeperf_live::windows_from_text(&text).ok()?;
        let done = |pid: u64, last: u64| {
            parts
                .iter()
                .any(|p| p.pid == pid && p.windows.last().is_some_and(|w| w.last == last))
        };
        (done(pid1, 7) && done(pid2, 5)).then_some(parts)
    });
    let ring1 = listing.iter().find(|p| p.pid == pid1).unwrap();
    assert_eq!(ring1.interval, 12);
    assert_eq!(ring1.evicted_windows, 0, "retain 16 never overflows");
    assert_eq!(ring1.windows.len(), 8, "windows 0..=7 all landed");

    // "What ran in the last 5 windows?" — answered fleet-wide over HTTP,
    // inside the snapshot wire contract teeperf top already parses.
    let (code, body) = daemon.get("/query?windows=last:5&top=10");
    assert_eq!(code, 200, "{body}");
    let rows = Snapshot::methods_from_text(&body).unwrap();
    assert!(rows.iter().any(|(n, ..)| n == "work"), "{body}");
    assert!(rows.iter().any(|(n, ..)| n == "leaf"), "{body}");

    // Window 0 holds exactly pid1's first leaf call and nothing else.
    let (code, body) = daemon.get(&format!("/query?windows=0..=0&pid={pid1}"));
    assert_eq!(code, 200, "{body}");
    let rows = Snapshot::methods_from_text(&body).unwrap();
    assert_eq!(rows, vec![("leaf".to_string(), 1, 4, 4)], "{body}");

    // The ring identity, end to end: merging every retained window equals
    // the whole-session per-pid profile the daemon serves at /pid/<n>.
    let (_, span_all) = daemon.get(&format!("/query?windows=all&pid={pid1}"));
    let mut from_ring = Snapshot::methods_from_text(&span_all).unwrap();
    let (_, direct) = daemon.get(&format!("/pid/{pid1}"));
    let mut from_snapshot = Snapshot::methods_from_text(&direct).unwrap();
    from_ring.sort();
    from_snapshot.sort();
    assert_eq!(
        from_ring, from_snapshot,
        "retained windows must merge exactly"
    );

    // Two-window diff via the batch comparator: iterations are identical,
    // so window 2 vs 3 of pid1 shows work and leaf with zero drift.
    let (code, body) = daemon.get(&format!("/query?diff=2,3&pid={pid1}"));
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("diff 2 vs 3\n[diff]\n"), "{body}");
    assert!(body.contains("work") && body.contains("leaf"), "{body}");

    // A window pid2 never reached is a clean 404, not a wedge.
    let (code, _) = daemon.get(&format!("/query?windows=7..=7&pid={pid2}"));
    assert_eq!(code, 404);

    let (code, _) = daemon.get("/shutdown");
    assert_eq!(code, 200);
    assert!(daemon.wait().success());
}

#[test]
fn writer_binary_rejects_bad_usage() {
    let _guard = hang_guard("writer_binary_rejects_bad_usage");
    let out = Command::new(env!("CARGO_BIN_EXE_teeperf-shm-writer"))
        .output()
        .expect("run writer");
    assert_eq!(out.status.code(), Some(2), "--dir is required");

    let out = Command::new(env!("CARGO_BIN_EXE_teeperfd"))
        .arg("--bogus")
        .output()
        .expect("run daemon");
    assert_eq!(out.status.code(), Some(2), "unknown flags are usage errors");
}
