//! A deliberately minimal HTTP/1.1 layer over [`std::net`] — no external
//! dependencies, no keep-alive, no chunked encoding. Every exchange is one
//! request, one `Content-Length` response, `Connection: close`. That is
//! all the daemon's wire contract needs: the payloads are the stable
//! snapshot text format, and the transfer framing stays too small to hide
//! bugs in.
//!
//! Both halves live here — the server side ([`read_request`] /
//! [`Response::write_to`]) used by `teeperfd`, and the client side
//! ([`get`]) used by `teeperf top` and the tests — so a framing change
//! cannot drift between them.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest request head (request line + headers) the server will read;
/// the daemon's API has no legitimate request anywhere near this.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request line. The daemon routes on method + target only;
/// headers are read (to drain the head) and discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/snapshot` or `/flame.svg?pid=7`.
    pub target: String,
}

impl Request {
    /// The target's path without the query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        let (_, qs) = self.target.split_once('?')?;
        qs.split('&')
            .find_map(|pair| pair.split_once('=').filter(|(k, _)| *k == key))
            .map(|(_, v)| v)
    }

    /// The whole raw query string after `?`, if any — `/query` hands it
    /// verbatim to the window-spec parser, whose clause grammar *is* the
    /// query-string grammar.
    pub fn query_string(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, qs)| qs)
    }
}

/// Read one request head off `stream` (through the blank line); the body,
/// if any, is ignored — every daemon endpoint is body-less.
///
/// # Errors
/// I/O failures, an over-long head, and a malformed request line all
/// surface as `InvalidData`-style errors; the caller drops the connection.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    let mut head = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        head += n;
        if head > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    Ok(Request { method, target })
}

/// A complete response, written in one shot with `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Media type of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A `200 OK` SVG response.
    pub fn svg(body: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            body: body.into_bytes(),
        }
    }

    /// A `404 Not Found` with a one-line explanation.
    pub fn not_found(reason: impl Into<String>) -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("{}\n", reason.into()).into_bytes(),
        }
    }

    /// A `400 Bad Request` with a one-line explanation — a malformed
    /// window-query spec is the client's fault, not a missing resource.
    pub fn bad_request(reason: impl Into<String>) -> Response {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("{}\n", reason.into()).into_bytes(),
        }
    }

    /// The status line's reason phrase.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }

    /// Serialize status line, headers and body onto `stream`.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Blocking HTTP GET of `path` from `addr` (e.g. `127.0.0.1:7071`),
/// returning the status code and the body as text. The timeout bounds
/// connect, read and write individually.
///
/// # Errors
/// Connection or I/O failure, a non-HTTP reply, or a non-UTF-8 body.
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_target_splits_path_and_query() {
        let r = Request {
            method: "GET".into(),
            target: "/flame.svg?pid=7&x=1".into(),
        };
        assert_eq!(r.path(), "/flame.svg");
        assert_eq!(r.query("pid"), Some("7"));
        assert_eq!(r.query("x"), Some("1"));
        assert_eq!(r.query("absent"), None);
        let plain = Request {
            method: "GET".into(),
            target: "/healthz".into(),
        };
        assert_eq!(plain.path(), "/healthz");
        assert_eq!(plain.query("pid"), None);
    }

    #[test]
    fn client_and_server_speak_to_each_other() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.path(), "/snapshot");
            Response::text("[live]\nepoch 0\n")
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, body) = get(&addr.to_string(), "/snapshot", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "[live]\nepoch 0\n");
        server.join().unwrap();
    }
}
