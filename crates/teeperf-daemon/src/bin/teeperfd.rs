//! `teeperfd` — the fleet profiling daemon.
//!
//! ```text
//! teeperfd --dir /dev/shm/teeperf --listen 127.0.0.1:7071 \
//!          [--snapshot-out FILE] [--pump-ms N] [--scan-every N] [--max-loops N]
//! ```
//!
//! Prints `teeperfd listening on <addr>` (with the kernel-resolved port)
//! before entering the loop, so supervisors and tests can connect without
//! racing. Shuts down on `GET /shutdown` or when stdin reaches EOF — the
//! workspace forbids `unsafe`, so there is no sigaction handler; a
//! supervisor that wants SIGTERM semantics runs the daemon with a pipe on
//! stdin and closes it (see DESIGN.md §12). Exits 0 on a clean shutdown.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use teeperf_daemon::{Daemon, DaemonConfig};
use teeperf_live::RingConfig;

fn usage() -> String {
    "usage: teeperfd [--dir DIR] [--listen ADDR] [--snapshot-out FILE] \
     [--pump-ms N] [--scan-every N] [--max-loops N] [--no-liveness-probe] \
     [--window-interval TICKS] [--retain N] [--max-width N] \
     [--overhead-budget PCT]"
        .to_string()
}

fn parse(args: &[String]) -> Result<(DaemonConfig, bool), String> {
    let mut config = DaemonConfig::default();
    let mut probe = true;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--dir" => config.dir = PathBuf::from(value()?),
            "--listen" => config.listen = value()?.to_string(),
            "--snapshot-out" => config.snapshot_out = Some(PathBuf::from(value()?)),
            "--pump-ms" => {
                let ms: u64 = value()?.parse().map_err(|_| "--pump-ms: not a number")?;
                config.pump_interval = Duration::from_millis(ms);
            }
            "--scan-every" => {
                config.scan_every = value()?.parse().map_err(|_| "--scan-every: not a number")?;
                if config.scan_every == 0 {
                    return Err("--scan-every must be >= 1".to_string());
                }
            }
            "--max-loops" => {
                config.max_loops = Some(value()?.parse().map_err(|_| "--max-loops: not a number")?)
            }
            "--window-interval" => {
                let ticks: u64 = value()?
                    .parse()
                    .map_err(|_| "--window-interval: not a number")?;
                if ticks == 0 {
                    return Err("--window-interval must be >= 1".to_string());
                }
                config
                    .retention
                    .get_or_insert_with(RingConfig::default)
                    .interval = ticks;
            }
            "--retain" => {
                let n: usize = value()?.parse().map_err(|_| "--retain: not a number")?;
                if n == 0 {
                    return Err("--retain must be >= 1".to_string());
                }
                config
                    .retention
                    .get_or_insert_with(RingConfig::default)
                    .capacity = n;
            }
            "--max-width" => {
                let n: u64 = value()?.parse().map_err(|_| "--max-width: not a number")?;
                if n == 0 {
                    return Err("--max-width must be >= 1".to_string());
                }
                config
                    .retention
                    .get_or_insert_with(RingConfig::default)
                    .max_width = n;
            }
            "--overhead-budget" => {
                let pct: u8 = value()?
                    .parse()
                    .map_err(|_| "--overhead-budget: not a percentage")?;
                if pct == 0 || pct > 100 {
                    return Err("--overhead-budget must be 1..=100".to_string());
                }
                config.budget = Some(teeperf_live::OverheadBudget { pct });
            }
            "--no-liveness-probe" => probe = false,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok((config, probe))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, probe) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let daemon = match Daemon::new(config.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("teeperfd: failed to start: {e}");
            return ExitCode::from(1);
        }
    };
    let daemon = if probe {
        daemon
    } else {
        daemon.without_liveness_probe()
    };
    println!("teeperfd listening on {}", daemon.addr());
    println!("teeperfd watching {}", config.dir.display());
    let _ = std::io::stdout().flush();

    // The shutdown trigger: stdin EOF. A supervisor holds our stdin pipe
    // open for as long as it wants us alive; closing it (or dying, which
    // closes it too) is the SIGTERM of this unsafe-free world.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        let _ = tx.send("stdin closed".to_string());
    });

    match daemon.run(&rx) {
        Ok(report) => {
            print!("{}", report.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("teeperfd: {e}");
            ExitCode::from(1)
        }
    }
}
