//! `teeperf-shm-writer` — a scripted writer process for the file-backed
//! transport. The e2e tests and the CI smoke stage spawn several of these
//! as real OS child processes; each registers `<pid>.tplog` (+ `<pid>.sym`)
//! in the shared directory and publishes a deterministic `main → work →
//! leaf` call tree through the reserve → write → publish discipline.
//!
//! ```text
//! teeperf-shm-writer --dir DIR [--pid N] [--iterations N] [--capacity N]
//!                    [--interval-ms N] [--hold] [--no-finish] [--no-sym]
//! ```
//!
//! `--hold` keeps the process alive (log ACTIVE, nothing more published)
//! until it is killed — the scripted stand-in for a writer that crashes or
//! hangs, which the daemon's liveness machinery must quarantine.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use mcvm::DebugInfo;
use teeperf_core::layout::{EventKind, LogEntry};
use teeperf_core::log::make_header;
use teeperf_core::shm_file::{publish_sidecar, FileShmWriter, SYM_EXT};

struct Args {
    dir: PathBuf,
    pid: u64,
    iterations: u64,
    capacity: u64,
    interval: Duration,
    hold: bool,
    finish: bool,
    sym: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        dir: PathBuf::new(),
        pid: u64::from(std::process::id()),
        iterations: 10,
        capacity: 4096,
        interval: Duration::ZERO,
        hold: false,
        finish: true,
        sym: true,
    };
    let mut it = args.iter();
    let mut have_dir = false;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let number = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag}: not a number"))
        };
        match flag.as_str() {
            "--dir" => {
                out.dir = PathBuf::from(value()?);
                have_dir = true;
            }
            "--pid" => out.pid = number(value()?)?,
            "--iterations" => out.iterations = number(value()?)?,
            "--capacity" => out.capacity = number(value()?)?,
            "--interval-ms" => out.interval = Duration::from_millis(number(value()?)?),
            "--hold" => out.hold = true,
            "--no-finish" => out.finish = false,
            "--no-sym" => out.sym = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !have_dir {
        return Err("--dir is required".to_string());
    }
    Ok(out)
}

/// The fixed synthetic workload: `main` calls `work` once per iteration,
/// `work` calls `leaf`. Tick layout per iteration: `work` spans 10 ticks
/// inclusive of `leaf`'s 4, plus 2 of `main`'s own between calls — 12 per
/// iteration — and `main`'s final bookend tick, so per-pid totals are
/// exactly predictable: `total_ticks = 12 * iterations + 1`.
fn run(args: &Args) -> Result<(), String> {
    let debug = DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5), ("leaf", 4, 9)]);
    if args.sym {
        publish_sidecar(&args.dir, args.pid, SYM_EXT, &debug.to_text())
            .map_err(|e| format!("publish sidecar: {e}"))?;
    }
    let header = make_header(args.pid, args.capacity, true, 0, 0);
    let mut w =
        FileShmWriter::create(&args.dir, &header).map_err(|e| format!("create log: {e}"))?;
    let (main_a, work_a, leaf_a) = (
        debug.entry_addr(0),
        debug.entry_addr(1),
        debug.entry_addr(2),
    );
    let mut write = |kind: EventKind, counter: u64, addr: u64| {
        w.write(&LogEntry {
            kind,
            counter,
            addr,
            tid: 0,
        })
        .map(|_| ())
        .map_err(|e| format!("write: {e}"))
    };
    let mut t = 1;
    write(EventKind::Call, t, main_a)?;
    for _ in 0..args.iterations {
        t += 1;
        write(EventKind::Call, t, work_a)?;
        t += 3;
        write(EventKind::Call, t, leaf_a)?;
        t += 4;
        write(EventKind::Return, t, leaf_a)?;
        t += 3;
        write(EventKind::Return, t, work_a)?;
        t += 1;
        if !args.interval.is_zero() {
            std::thread::sleep(args.interval);
        }
    }
    t += 1;
    write(EventKind::Return, t, main_a)?;
    if args.hold {
        // Stay alive with the log still ACTIVE until killed: the scripted
        // crashed/hung writer. (Sleep-loop, not park: no wakeups wanted.)
        loop {
            std::thread::sleep(Duration::from_millis(200));
        }
    }
    if args.finish {
        w.finish().map_err(|e| format!("finish: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&args) {
        Ok(a) => a,
        Err(message) => {
            eprintln!("teeperf-shm-writer: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("teeperf-shm-writer: pid {} done", args.pid);
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("teeperf-shm-writer: {message}");
            ExitCode::from(1)
        }
    }
}
