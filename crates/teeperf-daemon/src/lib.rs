//! # teeperf-daemon — continuous fleet profiling over the file transport
//!
//! The paper's pipeline is record-then-analyze; its natural production
//! form (the TEEMon direction) is a long-running daemon. `teeperfd` is
//! that daemon:
//!
//! * it watches a **registration directory** into which profiled processes
//!   publish file-backed shared logs
//!   ([`teeperf_core::shm_file::FileShmWriter`], one `<pid>.tplog` per
//!   process, atomically renamed into place);
//! * every discovered log is attached **hot** to a
//!   [`teeperf_live::SessionRegistry`] behind a
//!   [`teeperf_core::FileShmSource`], wrapped in a [`LivenessProbe`] that
//!   turns the death of the writer process into a watchdog quarantine;
//! * an embedded **HTTP/1.1 listener** (plain [`std::net::TcpListener`],
//!   no dependencies — see [`http`]) serves the merged snapshot, per-pid
//!   views, flame graphs and metrics. The payloads are the stable
//!   [`Snapshot::to_text`] format: the text format *is* the wire contract,
//!   and `teeperf top` re-parses it with
//!   [`Snapshot::summary_from_text`].
//!
//! The daemon is deliberately **single-threaded**: one loop alternates
//! accepting connections, pumping the registry and rescanning the
//! directory. No locks, no shared state, no atomics — concurrency lives in
//! the transport protocol (where it is model-checked), not in the daemon.
//!
//! Shutdown is cooperative: a `GET /shutdown`, the external trigger
//! channel (the `teeperfd` binary wires stdin-EOF into it, so a
//! supervisor's process-group teardown lands here), or the optional loop
//! limit. All three drain once more, write the final snapshot to
//! `--snapshot-out` if configured, and return a [`DaemonReport`].

#![forbid(unsafe_code)]

pub mod http;

use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::Duration;

use mcvm::DebugInfo;
use teeperf_analyzer::symbolize::Symbolizer;
use teeperf_analyzer::WindowSpec;
use teeperf_core::shm_file::{log_path, sym_path, LOG_EXT};
use teeperf_core::{EventSource, FileShmSource, SalvageReport, SourceBatch};
use teeperf_flamegraph::SvgOptions;
use teeperf_live::{
    windows_to_text, LiveConfig, RingConfig, SessionEvent, SessionRegistry, Snapshot,
    WatchdogConfig,
};

use http::{Request, Response};

/// Everything configurable about one daemon run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Registration directory to watch for `<pid>.tplog` files.
    pub dir: PathBuf,
    /// Listen address, e.g. `127.0.0.1:0` (0 = kernel-assigned port).
    pub listen: String,
    /// Sleep between loop iterations when nothing is happening.
    pub pump_interval: Duration,
    /// Rescan the registration directory every N loop iterations.
    pub scan_every: u64,
    /// Write the final merged snapshot here on shutdown.
    pub snapshot_out: Option<PathBuf>,
    /// Liveness watchdog handed to the registry.
    pub watchdog: WatchdogConfig,
    /// Consecutive pumps an unpublished hole may stall a source's cursor.
    pub hole_pumps: u64,
    /// Shut down after this many loop iterations (a test/CI safety net;
    /// `None` runs until asked to stop).
    pub max_loops: Option<u64>,
    /// Windowed retention handed to every session (`None` serves the
    /// all-time view only: `/windows` lists nothing and `/query` 404s).
    pub retention: Option<RingConfig>,
    /// Overhead budget handed to every session: each pid gets its own
    /// fidelity controller walking `Full → Sampled(1/N) → Quiescent`
    /// against this loss budget (`None` pins the fleet to full fidelity).
    pub budget: Option<teeperf_live::OverheadBudget>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            dir: teeperf_core::shm_file::default_shm_dir(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: Duration::from_millis(25),
            scan_every: 4,
            snapshot_out: None,
            watchdog: WatchdogConfig::default(),
            hole_pumps: teeperf_core::shm_file::DEFAULT_HOLE_PUMPS,
            max_loops: None,
            retention: None,
            budget: None,
        }
    }
}

/// Wraps a [`FileShmSource`] and reports the source dead once the writer
/// *process* is gone while its log still claims to be active — the file
/// transport's substitute for the in-memory log's writers-in-flight word.
/// The probe checks `/proc/<pid>` (cheap, no `unsafe`), and only after an
/// empty pump, so a killed writer's already-published entries are drained
/// before the registry quarantines it.
#[derive(Debug)]
pub struct LivenessProbe {
    inner: FileShmSource,
    /// Probe only when enabled — synthetic-pid tests must not have their
    /// sources killed by a pid-namespace miss.
    enabled: bool,
    last_pump_empty: bool,
    writer_gone: bool,
}

impl LivenessProbe {
    /// Wrap `inner`; `enabled` turns the `/proc` probe on.
    pub fn new(inner: FileShmSource, enabled: bool) -> LivenessProbe {
        LivenessProbe {
            inner,
            enabled,
            last_pump_empty: false,
            writer_gone: false,
        }
    }

    fn probe(&mut self) {
        if !self.enabled || self.writer_gone || self.inner.writer_finished() {
            return;
        }
        if self.last_pump_empty && !Path::new(&format!("/proc/{}", self.inner.pid())).is_dir() {
            self.writer_gone = true;
        }
    }
}

impl EventSource for LivenessProbe {
    fn pid(&self) -> u64 {
        self.inner.pid()
    }

    fn pump(&mut self) -> SourceBatch {
        let batch = self.inner.pump();
        self.last_pump_empty = batch.entries.is_empty() && batch.dropped == 0;
        self.probe();
        batch
    }

    fn drain_to_end(&mut self) -> SourceBatch {
        let batch = self.inner.drain_to_end();
        self.last_pump_empty = batch.entries.is_empty() && batch.dropped == 0;
        self.probe();
        batch
    }

    fn dropped_total(&self) -> u64 {
        self.inner.dropped_total()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }

    fn salvage(&self) -> SalvageReport {
        self.inner.salvage()
    }

    fn is_dead(&self) -> bool {
        self.inner.is_dead() || self.writer_gone
    }
}

/// What the HTTP routing layer needs from whoever owns the profiles. The
/// daemon implements it over its [`SessionRegistry`]; the wire-contract
/// tests implement it over arbitrary generated snapshots, driving the
/// identical serving path.
pub trait SnapshotService {
    /// The merged cross-process snapshot.
    fn merged(&mut self) -> Snapshot;
    /// One process's snapshot, if that pid is (or was) part of the run.
    fn pid_snapshot(&mut self, pid: u64) -> Option<Snapshot>;
    /// The `/metrics` exposition text.
    fn metrics_text(&mut self) -> String;

    /// The `/windows` listing ([`teeperf_live::windows_to_text`] over the
    /// per-pid retention rings). The default serves the empty listing —
    /// correct for services without windowed retention.
    fn windows_text(&mut self) -> String {
        windows_to_text(&[])
    }

    /// Evaluate a window-query spec string (the raw query string of
    /// `GET /query?...`). `Err` is a parse failure (the client's fault:
    /// 400); `Ok(None)` means nothing retained matches (404); `Ok(Some)`
    /// is the response body. The default retains nothing.
    ///
    /// # Errors
    /// A description of the malformed spec.
    fn query_text(&mut self, spec: &str) -> Result<Option<String>, String> {
        WindowSpec::parse(spec)?;
        Ok(None)
    }

    /// Flame-graph SVG: one pid's towers, or the merged per-process view.
    /// `None` when the pid is unknown.
    fn flame_svg(&mut self, pid: Option<u64>) -> Option<String> {
        let snap = match pid {
            Some(p) => self.pid_snapshot(p)?,
            None => self.merged(),
        };
        let title = match pid {
            Some(p) => format!("teeperfd pid {p}"),
            None => "teeperfd merged".to_string(),
        };
        Some(teeperf_flamegraph::live::render_svg(
            &snap.profile.folded,
            &snap.status,
            &SvgOptions::default().with_title(title),
        ))
    }
}

/// Route one request against a [`SnapshotService`]. Returns the response
/// and whether the request asked the daemon to shut down. Pure routing —
/// no I/O — so the endpoint table is unit-testable without sockets.
pub fn route(service: &mut dyn SnapshotService, req: &Request) -> (Response, bool) {
    if req.method != "GET" && req.method != "POST" {
        return (
            Response {
                status: 405,
                content_type: "text/plain; charset=utf-8",
                body: b"only GET and POST are supported\n".to_vec(),
            },
            false,
        );
    }
    match req.path() {
        "/healthz" => (Response::text("ok\n"), false),
        "/snapshot" => (Response::text(service.merged().to_text()), false),
        "/metrics" => (Response::text(service.metrics_text()), false),
        "/windows" => (Response::text(service.windows_text()), false),
        "/query" => {
            let spec = req.query_string().unwrap_or("");
            match service.query_text(spec) {
                Ok(Some(body)) => (Response::text(body), false),
                Ok(None) => (
                    Response::not_found(
                        "no retained window matches the query (is retention enabled? \
                         see /windows)",
                    ),
                    false,
                ),
                Err(why) => (Response::bad_request(why), false),
            }
        }
        "/shutdown" => (Response::text("shutting down\n"), true),
        "/flame.svg" => {
            let pid = match req.query("pid") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(p) => Some(p),
                    Err(_) => return (Response::not_found(format!("bad pid {raw:?}")), false),
                },
                None => None,
            };
            match service.flame_svg(pid) {
                Some(svg) => (Response::svg(svg), false),
                None => (
                    Response::not_found(format!("no session for pid {}", pid.unwrap_or(0))),
                    false,
                ),
            }
        }
        path => {
            if let Some(raw) = path.strip_prefix("/pid/") {
                match raw.parse::<u64>() {
                    Ok(pid) => match service.pid_snapshot(pid) {
                        Some(snap) => (Response::text(snap.to_text()), false),
                        None => (
                            Response::not_found(format!("no session for pid {pid}")),
                            false,
                        ),
                    },
                    Err(_) => (Response::not_found(format!("bad pid {raw:?}")), false),
                }
            } else {
                (
                    Response::not_found(format!(
                        "unknown path {path}; try /healthz /snapshot /pid/<n> /flame.svg \
                         /windows /query /metrics /shutdown"
                    )),
                    false,
                )
            }
        }
    }
}

/// Why the daemon stopped, in the final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShutdownCause {
    /// A client requested `GET /shutdown`.
    HttpRequest,
    /// The external trigger channel fired (stdin EOF in the binary).
    External(String),
    /// [`DaemonConfig::max_loops`] was reached.
    LoopLimit,
}

impl std::fmt::Display for ShutdownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShutdownCause::HttpRequest => write!(f, "http /shutdown"),
            ShutdownCause::External(why) => write!(f, "external: {why}"),
            ShutdownCause::LoopLimit => write!(f, "loop limit"),
        }
    }
}

/// The summary a finished daemon run hands back.
#[derive(Debug)]
pub struct DaemonReport {
    /// What stopped the loop.
    pub cause: ShutdownCause,
    /// Loop iterations executed.
    pub loops: u64,
    /// HTTP requests served.
    pub requests: u64,
    /// Every pid that was attached during the run.
    pub attached: Vec<u64>,
    /// Pids the watchdog quarantined.
    pub quarantined: Vec<u64>,
    /// Where the final snapshot was written, if requested.
    pub snapshot_path: Option<PathBuf>,
    /// The final merged snapshot.
    pub merged: Snapshot,
}

impl DaemonReport {
    /// Human-readable closing summary (what `teeperfd` prints on exit).
    pub fn summary(&self) -> String {
        let list = |pids: &[u64]| {
            if pids.is_empty() {
                "-".to_string()
            } else {
                pids.iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        let mut out = format!(
            "teeperfd: shut down ({})\nloops {} requests {}\nattached pids: {}\nquarantined pids: {}\n",
            self.cause,
            self.loops,
            self.requests,
            list(&self.attached),
            list(&self.quarantined),
        );
        if let Some(path) = &self.snapshot_path {
            out.push_str(&format!("final snapshot: {}\n", path.display()));
        }
        out.push_str(&self.merged.status.banner());
        out.push('\n');
        out
    }
}

/// The daemon: registry + listener + scan state. Construct with
/// [`Daemon::new`], read the bound address with [`Daemon::addr`], then
/// [`Daemon::run`] until a shutdown trigger.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    registry: SessionRegistry,
    listener: TcpListener,
    addr: SocketAddr,
    /// Pids ever attached (a retired pid must not be re-attached — its
    /// contribution is already in the merge).
    seen_pids: BTreeSet<u64>,
    /// Log files that failed to attach; retried never (a file that was
    /// rejected once is not going to become a valid log).
    rejected: BTreeSet<PathBuf>,
    /// One line per attach failure, surfaced in `/metrics`.
    attach_errors: Vec<String>,
    /// Whether the `/proc/<pid>` liveness probe is armed on new sources.
    probe_liveness: bool,
    requests: u64,
    scans: u64,
}

impl Daemon {
    /// Bind the listener and build an empty registry over `config.dir`.
    ///
    /// # Errors
    /// Fails when the listen address cannot be bound or the registration
    /// directory cannot be created.
    pub fn new(config: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&config.dir)?;
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let live = LiveConfig {
            retention: config.retention.clone(),
            budget: config.budget,
            ..LiveConfig::default()
        };
        let registry = SessionRegistry::new(live).with_watchdog(config.watchdog);
        Ok(Daemon {
            config,
            registry,
            listener,
            addr,
            seen_pids: BTreeSet::new(),
            rejected: BTreeSet::new(),
            attach_errors: Vec::new(),
            probe_liveness: true,
            requests: 0,
            scans: 0,
        })
    }

    /// Disable the `/proc/<pid>` writer-liveness probe (tests that
    /// register logs under synthetic pids).
    #[must_use]
    pub fn without_liveness_probe(mut self) -> Daemon {
        self.probe_liveness = false;
        self
    }

    /// The address the HTTP listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One registration-directory sweep: attach every `<pid>.tplog` not
    /// already attached or rejected. Returns how many sessions were
    /// attached.
    pub fn scan(&mut self) -> usize {
        self.scans += 1;
        let Ok(entries) = std::fs::read_dir(&self.config.dir) else {
            return 0;
        };
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(LOG_EXT) {
                continue;
            }
            let Some(pid) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            if self.seen_pids.contains(&pid) || self.rejected.contains(&path) {
                continue;
            }
            found.push((pid, path));
        }
        found.sort();
        let mut attached = 0;
        for (pid, path) in found {
            match self.attach_log(pid, &path) {
                Ok(()) => attached += 1,
                Err(why) => {
                    self.rejected.insert(path.clone());
                    self.attach_errors
                        .push(format!("{}: {why}", path.display()));
                }
            }
        }
        attached
    }

    fn attach_log(&mut self, pid: u64, path: &Path) -> Result<(), String> {
        let source = FileShmSource::open(path)
            .map_err(|e| e.to_string())?
            .with_hole_pumps(self.config.hole_pumps);
        if source.pid() != pid {
            return Err(format!(
                "file is named for pid {pid} but its header says {}",
                source.pid()
            ));
        }
        // The optional `<pid>.sym` sidecar names the addresses; without it
        // the profile still works, with raw-hex frames.
        let debug = std::fs::read_to_string(sym_path(&self.config.dir, pid))
            .ok()
            .and_then(|text| DebugInfo::from_text(&text))
            .unwrap_or_default();
        let probed = LivenessProbe::new(source, self.probe_liveness);
        self.registry
            .attach(Box::new(probed), Symbolizer::without_relocation(debug))
            .map_err(|e| format!("attach: {e:?}"))?;
        self.seen_pids.insert(pid);
        Ok(())
    }

    /// Accept and serve every connection currently pending. Returns
    /// whether any request asked for shutdown.
    fn serve_pending(&mut self) -> bool {
        let mut shutdown = false;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    self.requests += 1;
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(2_000)));
                    if let Ok(req) = http::read_request(&mut stream) {
                        let (response, stop) = route(self, &req);
                        let _ = response.write_to(&mut stream);
                        shutdown |= stop;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        shutdown
    }

    fn quarantined_pids(&self) -> Vec<u64> {
        self.registry
            .session_events()
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Quarantined { pid, .. } => Some(*pid),
                _ => None,
            })
            .collect()
    }

    /// Run until a shutdown trigger: `GET /shutdown`, a message on
    /// `external`, or the configured loop limit. Consumes the daemon and
    /// returns the final report.
    ///
    /// # Errors
    /// Propagates I/O failures writing the final snapshot; serving errors
    /// are per-connection and never stop the loop.
    pub fn run(mut self, external: &Receiver<String>) -> io::Result<DaemonReport> {
        let mut loops: u64 = 0;
        let cause = loop {
            if loops.is_multiple_of(self.config.scan_every) {
                self.scan();
            }
            loops += 1;
            if self.serve_pending() {
                break ShutdownCause::HttpRequest;
            }
            self.registry.pump();
            match external.try_recv() {
                Ok(why) => break ShutdownCause::External(why),
                Err(TryRecvError::Disconnected) => {
                    break ShutdownCause::External("trigger channel closed".to_string())
                }
                Err(TryRecvError::Empty) => {}
            }
            if let Some(limit) = self.config.max_loops {
                if loops >= limit {
                    break ShutdownCause::LoopLimit;
                }
            }
            std::thread::sleep(self.config.pump_interval);
        };
        // Drain once more (the graceful-shutdown contract), then freeze.
        self.scan();
        self.registry.pump();
        let run = self.registry.finish();
        let snapshot_path = match &self.config.snapshot_out {
            Some(path) => {
                std::fs::write(path, run.merged.to_text())?;
                Some(path.clone())
            }
            None => None,
        };
        Ok(DaemonReport {
            cause,
            loops,
            requests: self.requests,
            attached: self.seen_pids.iter().copied().collect(),
            quarantined: self.quarantined_pids(),
            snapshot_path,
            merged: run.merged,
        })
    }
}

impl SnapshotService for Daemon {
    fn merged(&mut self) -> Snapshot {
        self.registry.merged_snapshot()
    }

    fn pid_snapshot(&mut self, pid: u64) -> Option<Snapshot> {
        self.registry.snapshot_pid(pid)
    }

    /// Merged view: the registry's per-process rendering (one `pid <n>`
    /// tower per process). Per-pid views use the default single-profile
    /// path.
    fn flame_svg(&mut self, pid: Option<u64>) -> Option<String> {
        match pid {
            Some(p) => {
                let snap = self.pid_snapshot(p)?;
                Some(teeperf_flamegraph::live::render_svg(
                    &snap.profile.folded,
                    &snap.status,
                    &SvgOptions::default().with_title(format!("teeperfd pid {p}")),
                ))
            }
            None => Some(
                self.registry
                    .render_svg(&SvgOptions::default().with_title("teeperfd merged")),
            ),
        }
    }

    fn windows_text(&mut self) -> String {
        windows_to_text(&self.registry.windows())
    }

    fn query_text(&mut self, spec: &str) -> Result<Option<String>, String> {
        let spec = WindowSpec::parse(spec)?;
        Ok(self.registry.query_text(&spec))
    }

    fn metrics_text(&mut self) -> String {
        let salvage = self.registry.salvage();
        let quarantined = self.quarantined_pids();
        let mut out = String::new();
        out.push_str(&format!(
            "teeperf_attached_total {}\n",
            self.seen_pids.len()
        ));
        out.push_str(&format!("teeperf_active {}\n", self.registry.pids().len()));
        out.push_str(&format!(
            "teeperf_events_total {}\n",
            self.registry.events()
        ));
        out.push_str(&format!(
            "teeperf_dropped_total {}\n",
            self.registry.dropped()
        ));
        for (pid, dropped) in self.registry.dropped_by_pid() {
            out.push_str(&format!(
                "teeperf_dropped_total{{pid=\"{pid}\"}} {dropped}\n"
            ));
        }
        let headroom = self.registry.budget_headroom_by_pid();
        for (pid, info) in self.registry.regimes_by_pid() {
            // Regime as an enumerated gauge (0 full, 1 sampled, 2
            // quiescent) plus the sampling divisor as its own gauge, so a
            // scraper can alert on "any pid degraded" without label math.
            let (mode, n) = match info.regime {
                teeperf_core::Regime::Full => (0u8, 1u64),
                teeperf_core::Regime::Sampled(n) => (1, u64::from(n)),
                teeperf_core::Regime::Quiescent => (2, 0),
            };
            out.push_str(&format!("teeperf_regime{{pid=\"{pid}\"}} {mode}\n"));
            out.push_str(&format!("teeperf_regime_n{{pid=\"{pid}\"}} {n}\n"));
            out.push_str(&format!(
                "teeperf_regime_transitions_total{{pid=\"{pid}\"}} {}\n",
                info.transitions
            ));
            out.push_str(&format!(
                "teeperf_regime_faults_total{{pid=\"{pid}\"}} {}\n",
                info.faults
            ));
            if let Some(h) = headroom.get(&pid) {
                out.push_str(&format!(
                    "teeperf_budget_headroom_pct{{pid=\"{pid}\"}} {h}\n"
                ));
            }
        }
        out.push_str(&format!("teeperf_salvage_kept {}\n", salvage.kept));
        out.push_str(&format!("teeperf_salvage_dropped {}\n", salvage.dropped));
        for reason in [
            teeperf_core::SalvageReason::TornEntry,
            teeperf_core::SalvageReason::UnpublishedSlot,
            teeperf_core::SalvageReason::StalledRotation,
            teeperf_core::SalvageReason::CorruptHeader,
            teeperf_core::SalvageReason::TruncatedFile,
            teeperf_core::SalvageReason::DeadWriterReclaimed,
            teeperf_core::SalvageReason::CorruptRegimeWord,
        ] {
            out.push_str(&format!(
                "teeperf_salvage_reason{{reason=\"{reason}\"}} {}\n",
                salvage.count(reason)
            ));
        }
        out.push_str(&format!(
            "teeperf_quarantined_total {}\n",
            quarantined.len()
        ));
        for pid in &quarantined {
            out.push_str(&format!("teeperf_quarantined{{pid=\"{pid}\"}} 1\n"));
        }
        out.push_str(&format!(
            "teeperf_attach_errors_total {}\n",
            self.attach_errors.len()
        ));
        out.push_str(&format!("teeperf_scans_total {}\n", self.scans));
        out.push_str(&format!("teeperf_requests_total {}\n", self.requests));
        out
    }
}

/// Re-export for callers that build registration paths.
pub use teeperf_core::shm_file::default_shm_dir;

/// Build a registration path helper: where pid's log would live in `dir`.
pub fn registered_log(dir: &Path, pid: u64) -> PathBuf {
    log_path(dir, pid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use teeperf_core::layout::{EventKind, LogEntry};
    use teeperf_core::log::make_header;
    use teeperf_core::shm_file::{publish_sidecar, FileShmWriter};

    struct ScratchDir(PathBuf);

    fn scratch(label: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("teeperfd-lib-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A tiny main→work call tree for pid, fully published and finished.
    fn write_session(dir: &Path, pid: u64, work_ticks: u64) {
        let debug = DebugInfo::from_functions([("main", 4, 1), ("work", 4, 5)]);
        publish_sidecar(dir, pid, "sym", &debug.to_text()).unwrap();
        let mut w = FileShmWriter::create(dir, &make_header(pid, 64, true, 0, 0)).unwrap();
        let (a0, a1) = (debug.entry_addr(0), debug.entry_addr(1));
        let e = |kind, counter, addr| LogEntry {
            kind,
            counter,
            addr,
            tid: 0,
        };
        w.write(&e(EventKind::Call, 1, a0)).unwrap();
        w.write(&e(EventKind::Call, 10, a1)).unwrap();
        w.write(&e(EventKind::Return, 10 + work_ticks, a1)).unwrap();
        w.write(&e(EventKind::Return, 101, a0)).unwrap();
        w.finish().unwrap();
    }

    fn test_daemon(dir: &Path) -> Daemon {
        test_daemon_with(dir, None)
    }

    fn test_daemon_with(dir: &Path, retention: Option<RingConfig>) -> Daemon {
        Daemon::new(DaemonConfig {
            dir: dir.to_path_buf(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: Duration::from_millis(1),
            scan_every: 1,
            snapshot_out: None,
            watchdog: WatchdogConfig::default(),
            hole_pumps: 4,
            max_loops: None,
            retention,
            budget: None,
        })
        .unwrap()
        .without_liveness_probe()
    }

    #[test]
    fn scan_attaches_registered_logs_and_serves_them() {
        let dir = scratch("scan");
        write_session(&dir.0, 101, 50);
        write_session(&dir.0, 102, 30);
        let mut d = test_daemon(&dir.0);
        assert_eq!(d.scan(), 2);
        assert_eq!(d.scan(), 0, "already attached");
        d.registry.pump();
        let merged = d.merged();
        assert_eq!(merged.status.events, 8);
        let text = merged.to_text();
        assert!(text.contains("pid 101"));
        assert!(text.contains("pid 102"));
        assert!(text.contains("work"), "sidecar symbols resolved: {text}");
        let s101 = d.pid_snapshot(101).unwrap();
        let s102 = d.pid_snapshot(102).unwrap();
        assert_eq!(
            s101.profile.total_ticks + s102.profile.total_ticks,
            merged.profile.total_ticks,
            "merged totals are the per-pid sums"
        );
        assert!(d.pid_snapshot(999).is_none());
    }

    #[test]
    fn scan_rejects_alien_files_once_and_reports_them() {
        let dir = scratch("alien");
        std::fs::write(dir.0.join("33.tplog"), b"junk").unwrap();
        std::fs::write(dir.0.join("not-a-pid.tplog"), b"junk").unwrap();
        let mut d = test_daemon(&dir.0);
        assert_eq!(d.scan(), 0);
        assert_eq!(d.attach_errors.len(), 1, "pid-named junk is an error");
        assert_eq!(d.scan(), 0);
        assert_eq!(d.attach_errors.len(), 1, "rejected files are not retried");
        assert!(d.metrics_text().contains("teeperf_attach_errors_total 1"));
    }

    #[test]
    fn routing_table_serves_every_endpoint() {
        let dir = scratch("routes");
        write_session(&dir.0, 77, 40);
        let mut d = test_daemon(&dir.0);
        d.scan();
        d.registry.pump();
        let get = |d: &mut Daemon, target: &str| {
            route(
                d,
                &Request {
                    method: "GET".into(),
                    target: target.into(),
                },
            )
        };
        let (r, stop) = get(&mut d, "/healthz");
        assert_eq!((r.status, stop), (200, false));
        let (r, _) = get(&mut d, "/snapshot");
        assert!(String::from_utf8(r.body).unwrap().contains("[live]"));
        let (r, _) = get(&mut d, "/pid/77");
        assert_eq!(r.status, 200);
        let (r, _) = get(&mut d, "/pid/99");
        assert_eq!(r.status, 404);
        let (r, _) = get(&mut d, "/pid/xyz");
        assert_eq!(r.status, 404);
        let (r, _) = get(&mut d, "/flame.svg");
        assert_eq!(r.status, 200);
        assert!(String::from_utf8(r.body).unwrap().contains("<svg"));
        let (r, _) = get(&mut d, "/flame.svg?pid=77");
        assert_eq!(r.status, 200);
        let (r, _) = get(&mut d, "/flame.svg?pid=99");
        assert_eq!(r.status, 404);
        let (r, _) = get(&mut d, "/metrics");
        assert!(String::from_utf8(r.body)
            .unwrap()
            .contains("teeperf_events_total 4"));
        // Retention is off in this daemon: the listing is empty, a valid
        // query finds nothing, and a malformed one is the client's fault.
        let (r, _) = get(&mut d, "/windows");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"[windows]\n");
        let (r, _) = get(&mut d, "/query?windows=all");
        assert_eq!(r.status, 404);
        let (r, _) = get(&mut d, "/query?windows=sideways");
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("sideways"));
        let (r, _) = get(&mut d, "/nope");
        assert_eq!(r.status, 404);
        assert!(String::from_utf8(r.body).unwrap().contains("/query"));
        let (r, stop) = get(&mut d, "/shutdown");
        assert_eq!((r.status, stop), (200, true));
        let (r, _) = route(
            &mut d,
            &Request {
                method: "DELETE".into(),
                target: "/snapshot".into(),
            },
        );
        assert_eq!(r.status, 405);
    }

    #[test]
    fn metrics_break_out_drops_and_regimes_per_pid() {
        let dir = scratch("regime-metrics");
        write_session(&dir.0, 501, 40);
        let mut d = Daemon::new(DaemonConfig {
            dir: dir.0.clone(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: Duration::from_millis(1),
            scan_every: 1,
            snapshot_out: None,
            watchdog: WatchdogConfig::default(),
            hole_pumps: 4,
            max_loops: None,
            retention: None,
            budget: Some(teeperf_live::OverheadBudget { pct: 5 }),
        })
        .unwrap()
        .without_liveness_probe();
        d.scan();
        d.registry.pump();
        let m = d.metrics_text();
        assert!(m.contains("teeperf_dropped_total{pid=\"501\"} 0"), "{m}");
        assert!(m.contains("teeperf_regime{pid=\"501\"} 0"), "{m}");
        assert!(m.contains("teeperf_regime_n{pid=\"501\"} 1"), "{m}");
        assert!(
            m.contains("teeperf_budget_headroom_pct{pid=\"501\"} 5"),
            "{m}"
        );
        assert!(
            m.contains("teeperf_regime_transitions_total{pid=\"501\"} 0"),
            "{m}"
        );
        assert!(
            m.contains("teeperf_salvage_reason{reason=\"corrupt-regime-word\"} 0"),
            "{m}"
        );
        // The budgeted fleet's regime block flows through /snapshot too.
        let snap = d.merged().to_text();
        assert!(snap.contains("[regime]\nmode full\n"), "{snap}");
        assert!(snap.contains("budget 5"), "{snap}");
    }

    #[test]
    fn windowed_daemon_serves_listing_query_and_diff() {
        let dir = scratch("windows");
        // pid 101: work exits at tick 60 (window 3), main at 101 (window 6);
        // pid 202: work exits at tick 40 (window 2), main at 101 (window 6).
        write_session(&dir.0, 101, 50);
        write_session(&dir.0, 202, 30);
        let mut d = test_daemon_with(
            &dir.0,
            Some(RingConfig {
                interval: 16,
                capacity: 8,
                max_width: 4,
            }),
        );
        d.scan();
        d.registry.pump();
        let get = |d: &mut Daemon, target: &str| {
            route(
                d,
                &Request {
                    method: "GET".into(),
                    target: target.into(),
                },
            )
            .0
        };
        let r = get(&mut d, "/windows");
        let listing = String::from_utf8(r.body).unwrap();
        assert!(listing.contains("pid 101 interval 16"), "{listing}");
        assert!(listing.contains("pid 202 interval 16"), "{listing}");
        let parsed = teeperf_live::windows_from_text(&listing).unwrap();
        assert_eq!(parsed.len(), 2);

        let r = get(&mut d, "/query?windows=last:5&top=10");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        let rows = Snapshot::methods_from_text(&body).unwrap();
        assert!(rows.iter().any(|(name, ..)| name == "work"), "{body}");

        let r = get(&mut d, "/query?diff=2,3&pid=101");
        assert_eq!(r.status, 404, "pid 101 has nothing in window 2");
        let r = get(&mut d, "/query?diff=2,3");
        assert_eq!(r.status, 200, "fleet-wide both windows exist");
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("diff 2 vs 3\n[diff]\n"), "{body}");
        assert!(body.contains("work"), "{body}");
    }

    #[test]
    fn run_loop_shuts_down_on_external_trigger_and_writes_snapshot() {
        let dir = scratch("extshutdown");
        write_session(&dir.0, 55, 20);
        let out = dir.0.join("final.snapshot");
        let mut config = DaemonConfig {
            dir: dir.0.clone(),
            pump_interval: Duration::from_millis(1),
            scan_every: 1,
            snapshot_out: Some(out.clone()),
            ..DaemonConfig::default()
        };
        config.listen = "127.0.0.1:0".to_string();
        let d = Daemon::new(config).unwrap().without_liveness_probe();
        let (tx, rx) = mpsc::channel();
        tx.send("test trigger".to_string()).unwrap();
        let report = d.run(&rx).unwrap();
        assert_eq!(
            report.cause,
            ShutdownCause::External("test trigger".to_string())
        );
        assert_eq!(report.attached, vec![55]);
        assert_eq!(report.snapshot_path.as_deref(), Some(out.as_path()));
        let written = std::fs::read_to_string(&out).unwrap();
        let status = Snapshot::summary_from_text(&written).unwrap();
        assert_eq!(status.events, 4);
        assert!(report.summary().contains("attached pids: 55"));
    }

    #[test]
    fn run_loop_respects_the_loop_limit() {
        let dir = scratch("looplimit");
        let config = DaemonConfig {
            dir: dir.0.clone(),
            listen: "127.0.0.1:0".to_string(),
            pump_interval: Duration::from_millis(1),
            max_loops: Some(3),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(config).unwrap().without_liveness_probe();
        let (_tx, rx) = mpsc::channel::<String>();
        let report = d.run(&rx).unwrap();
        assert_eq!(report.cause, ShutdownCause::LoopLimit);
        assert_eq!(report.loops, 3);
    }
}
