//! The SPDK `perf` benchmark: 4 KiB random reads/writes (80 % reads) at a
//! fixed queue depth, driven by a polling event loop — with the exact call
//! frames of Figure 6 probed so TEE-Perf's flame graph reproduces the
//! paper's.
//!
//! Environment-call sites per I/O (calibrated so the naive enclave port
//! shows the paper's ~72 % `getpid` / ~20 % `rdtsc` split):
//!
//! * submission: `allocate_request` ×3 `getpid` (mempool get, owner check,
//!   debug trace), `_nvme_ns_cmd_rw` ×1, `pcie_qpair_submit_request` ×2;
//!   `get_ticks` ×2 (start + queue timestamps);
//! * completion: `pcie_qpair_process_completions` ×2 `getpid`,
//!   `pcie_qpair_complete_tracker` ×1, `io_complete` ×1, `task_complete`
//!   ×1 + mempool put ×2; `get_ticks` ×2 (latency bookkeeping).

use std::cell::RefCell;
use std::rc::Rc;

use tee_sim::Machine;
use teeperf_core::{Probe, Profiler};

use crate::device::{DeviceConfig, NvmeDevice};
use crate::env::SpdkEnv;
use crate::nvme::{IoKind, QueuePair};

/// Per-I/O structural CPU work on the submission path (command assembly,
/// scatter-gather setup, queue bookkeeping).
const SUBMIT_WORK_CYCLES: u64 = 6_500;
/// Per-I/O structural CPU work on the completion path.
const COMPLETE_WORK_CYCLES: u64 = 6_000;
/// One empty polling iteration.
const IDLE_POLL_CYCLES: u64 = 300;

/// Benchmark parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfToolOptions {
    /// I/Os to complete.
    pub ops: u64,
    /// Percentage of reads (the paper uses 80).
    pub read_pct: u32,
    /// Queue depth.
    pub queue_depth: usize,
    /// RNG seed for the lba/read-write stream.
    pub seed: u64,
    /// Device timing.
    pub device: DeviceConfig,
}

impl Default for PerfToolOptions {
    fn default() -> Self {
        PerfToolOptions {
            ops: 3_000,
            read_pct: 80,
            queue_depth: 32,
            seed: 7,
            device: DeviceConfig::default(),
        }
    }
}

/// Benchmark outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfToolResult {
    /// I/Os completed.
    pub ops: u64,
    /// Reads among them.
    pub reads: u64,
    /// Virtual cycles elapsed.
    pub cycles: u64,
    /// I/O operations per virtual second.
    pub iops: f64,
    /// Throughput in MiB/s at 4 KiB blocks.
    pub throughput_mib_s: f64,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }
}

fn getpid_site(probe: &Probe, machine: &mut Machine, env: &mut SpdkEnv, n: u64) {
    for _ in 0..n {
        // The optimized port serves the cached pid without ever calling
        // `getpid(2)` again, so no frame is emitted — exactly why the
        // hotspot vanishes from the bottom Figure-6 graph.
        if env.next_getpid_is_real() {
            probe.scope(machine, "getpid", |machine| {
                env.getpid(machine);
            });
        } else {
            env.getpid(machine);
        }
    }
}

fn ticks_site(probe: &Probe, machine: &mut Machine, env: &mut SpdkEnv, n: u64) {
    // The fig-6 frame chain: get_ticks → get_timer_cycles → get_tsc_cycles
    // → rdtsc. The inner chain down to `rdtsc` only executes when the
    // counter is actually read (always for the naive port; on corrective
    // refreshes only for the optimized one).
    for _ in 0..n {
        probe.scope(machine, "get_ticks", |machine| {
            if env.next_ticks_is_real() {
                probe.scope(machine, "get_timer_cycles", |machine| {
                    probe.scope(machine, "get_tsc_cycles", |machine| {
                        probe.scope(machine, "rdtsc", |machine| {
                            env.get_ticks(machine);
                        });
                    });
                });
            } else {
                env.get_ticks(machine);
            }
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_single_io(
    probe: &Probe,
    machine: &mut Machine,
    env: &mut SpdkEnv,
    qp: &mut QueuePair,
    rng: &mut Lcg,
    options: &PerfToolOptions,
    reads: &mut u64,
) {
    probe.scope(machine, "submit_single_io", |machine| {
        ticks_site(probe, machine, env, 2);
        let is_read = rng.next() % 100 < u64::from(options.read_pct);
        let lba = rng.next() % options.device.blocks;
        let cmd_frame = if is_read {
            *reads += 1;
            "ns_cmd_read_with_md"
        } else {
            "ns_cmd_write_with_md"
        };
        probe.scope(machine, cmd_frame, |machine| {
            probe.scope(machine, "_nvme_ns_cmd_rw", |machine| {
                probe.scope(machine, "allocate_request", |machine| {
                    getpid_site(probe, machine, env, 3);
                    machine.compute(SUBMIT_WORK_CYCLES / 4);
                });
                getpid_site(probe, machine, env, 1);
                machine.compute(SUBMIT_WORK_CYCLES / 4);
            });
            probe.scope(machine, "nvme_qpair_submit_request", |machine| {
                probe.scope(machine, "pcie_qpair_submit_request", |machine| {
                    getpid_site(probe, machine, env, 2);
                    machine.compute(SUBMIT_WORK_CYCLES / 2);
                    qp.submit(
                        machine,
                        lba,
                        if is_read { IoKind::Read } else { IoKind::Write },
                    )
                    .expect("caller checked queue depth");
                });
            });
        });
    });
}

fn check_io(probe: &Probe, machine: &mut Machine, env: &mut SpdkEnv, qp: &mut QueuePair) -> u64 {
    probe.scope(machine, "check_io", |machine| {
        probe.scope(machine, "qpair_process_completions", |machine| {
            probe.scope(machine, "transport_qpair_process_completions", |machine| {
                probe.scope(machine, "pcie_qpair_process_completions", |machine| {
                    let done = qp.process_completions(machine);
                    if done.is_empty() {
                        return 0;
                    }
                    getpid_site(probe, machine, env, 2);
                    let mut n = 0u64;
                    for _cid in done {
                        probe.scope(machine, "pcie_qpair_complete_tracker", |machine| {
                            getpid_site(probe, machine, env, 1);
                            machine.compute(COMPLETE_WORK_CYCLES / 3);
                            probe.scope(machine, "io_complete", |machine| {
                                getpid_site(probe, machine, env, 1);
                                machine.compute(COMPLETE_WORK_CYCLES / 3);
                                probe.scope(machine, "task_complete", |machine| {
                                    getpid_site(probe, machine, env, 3);
                                    ticks_site(probe, machine, env, 2);
                                    machine.compute(COMPLETE_WORK_CYCLES / 3);
                                });
                            });
                        });
                        n += 1;
                    }
                    n
                })
            })
        })
    })
}

/// Run the `perf` benchmark event loop. When `profiler` is `Some`, the
/// Figure-6 frames are probed into the TEE-Perf log.
pub fn run_perf_tool(
    machine: &mut Machine,
    options: &PerfToolOptions,
    env: &mut SpdkEnv,
    profiler: Option<Rc<RefCell<Profiler>>>,
) -> PerfToolResult {
    let probe = match &profiler {
        Some(p) => Probe::new(Rc::clone(p), 0),
        None => Probe::disabled(),
    };
    let mut qp = QueuePair::new(NvmeDevice::new(options.device.clone()), options.queue_depth);
    let mut rng = Lcg(options.seed | 1);
    let mut reads = 0u64;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let t0 = machine.clock().now();

    probe.scope(machine, "work_fn", |machine| {
        while completed < options.ops {
            while submitted < options.ops && qp.outstanding() < qp.depth() {
                submit_single_io(&probe, machine, env, &mut qp, &mut rng, options, &mut reads);
                submitted += 1;
            }
            let n = check_io(&probe, machine, env, &mut qp);
            if n == 0 {
                machine.compute(IDLE_POLL_CYCLES);
            }
            completed += n;
        }
    });

    let cycles = machine.clock().now() - t0;
    let secs = machine.cost().cycles_to_secs(cycles);
    let iops = options.ops as f64 / secs;
    PerfToolResult {
        ops: options.ops,
        reads,
        cycles,
        iops,
        throughput_mib_s: iops * 4096.0 / (1 << 20) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_sim::CostModel;
    use teeperf_core::{Recorder, RecorderConfig};

    fn quick() -> PerfToolOptions {
        PerfToolOptions {
            ops: 600,
            ..PerfToolOptions::default()
        }
    }

    fn run(cost: CostModel, env: &mut SpdkEnv) -> PerfToolResult {
        let is_native = cost.kind == tee_sim::TeeKind::Native;
        let mut m = Machine::new(cost);
        if !is_native {
            m.ecall();
        }
        run_perf_tool(&mut m, &quick(), env, None)
    }

    #[test]
    fn native_iops_in_p3700_ballpark() {
        let r = run(CostModel::native(), &mut SpdkEnv::naive());
        assert!(
            (150_000.0..320_000.0).contains(&r.iops),
            "native iops {:.0}",
            r.iops
        );
        let read_frac = r.reads as f64 / r.ops as f64;
        assert!((0.72..0.88).contains(&read_frac), "read frac {read_frac}");
        assert!(r.throughput_mib_s > 500.0);
    }

    #[test]
    fn naive_enclave_port_collapses() {
        let native = run(CostModel::native(), &mut SpdkEnv::naive());
        let naive = run(CostModel::sgx_v1(), &mut SpdkEnv::naive());
        let factor = native.iops / naive.iops;
        assert!(
            (8.0..25.0).contains(&factor),
            "collapse factor {factor:.1} (native {:.0}, naive {:.0})",
            native.iops,
            naive.iops
        );
    }

    #[test]
    fn optimized_port_recovers_to_native_or_better() {
        let native = run(CostModel::native(), &mut SpdkEnv::naive());
        let optimized = run(CostModel::sgx_v1(), &mut SpdkEnv::optimized(128));
        assert!(
            optimized.iops >= native.iops * 0.95,
            "optimized {:.0} should be ≈ native {:.0}",
            optimized.iops,
            native.iops
        );
        let naive = run(CostModel::sgx_v1(), &mut SpdkEnv::naive());
        let improvement = optimized.iops / naive.iops;
        assert!(
            (8.0..25.0).contains(&improvement),
            "improvement {improvement:.1}× (paper: 14.7×)"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(CostModel::sgx_v1(), &mut SpdkEnv::naive());
        let b = run(CostModel::sgx_v1(), &mut SpdkEnv::naive());
        assert_eq!(a, b);
    }

    #[test]
    fn profiled_naive_run_shows_getpid_dominating() {
        let recorder = Recorder::new(&RecorderConfig {
            max_entries: 1 << 22,
            ..RecorderConfig::default()
        });
        let mut m = Machine::new(CostModel::sgx_v1());
        recorder.attach(&mut m);
        m.ecall();
        let profiler = Rc::new(RefCell::new(Profiler::new(
            recorder.sim_hooks(m.clock().clone()),
        )));
        let mut env = SpdkEnv::naive();
        run_perf_tool(&mut m, &quick(), &mut env, Some(Rc::clone(&profiler)));
        let log = recorder.finish();
        assert_eq!(log.header.dropped_entries(), 0);
        let debug = profiler.borrow().debug_info();
        let analyzer = teeperf_analyzer::Analyzer::new(log, debug).unwrap();
        let profile = analyzer.profile();
        let fg = teeperf_flamegraph::FlameGraph::from_folded(&profile.folded);
        let getpid = fg.fraction("getpid");
        let rdtsc = fg.fraction("rdtsc");
        assert!(
            (0.55..0.85).contains(&getpid),
            "getpid fraction {getpid:.2} (paper ≈ 0.72)"
        );
        assert!(
            (0.10..0.32).contains(&rdtsc),
            "rdtsc fraction {rdtsc:.2} (paper ≈ 0.20)"
        );
    }

    #[test]
    fn profiled_optimized_run_shows_hotspots_gone() {
        let recorder = Recorder::new(&RecorderConfig {
            max_entries: 1 << 22,
            ..RecorderConfig::default()
        });
        let mut m = Machine::new(CostModel::sgx_v1());
        recorder.attach(&mut m);
        m.ecall();
        let profiler = Rc::new(RefCell::new(Profiler::new(
            recorder.sim_hooks(m.clock().clone()),
        )));
        let mut env = SpdkEnv::optimized(128);
        run_perf_tool(&mut m, &quick(), &mut env, Some(Rc::clone(&profiler)));
        let log = recorder.finish();
        let debug = profiler.borrow().debug_info();
        let analyzer = teeperf_analyzer::Analyzer::new(log, debug).unwrap();
        let fg = teeperf_flamegraph::FlameGraph::from_folded(&analyzer.profile().folded);
        assert!(
            fg.fraction("getpid") < 0.10,
            "getpid {:.3}",
            fg.fraction("getpid")
        );
        assert!(
            fg.fraction("rdtsc") < 0.10,
            "rdtsc {:.3}",
            fg.fraction("rdtsc")
        );
    }
}
