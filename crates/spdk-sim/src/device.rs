//! The simulated NVMe SSD.
//!
//! Service model: the drive has `channels` independent service units; a
//! command occupies the earliest-free unit for its latency. Defaults are
//! sized after the paper's Intel DC P3700 400 GB (4 KiB random read ≈
//! 80 µs ≈ 288 k cycles at 3.6 GHz; internal parallelism high enough that
//! the device is never the bottleneck at queue depth 32).

/// Device timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Cycles to service one 4 KiB read.
    pub read_latency_cycles: u64,
    /// Cycles to service one 4 KiB write (NVMe SSD writes land in the
    /// drive's power-protected buffer — faster than reads).
    pub write_latency_cycles: u64,
    /// Independent service units.
    pub channels: usize,
    /// Namespace size in 4 KiB blocks.
    pub blocks: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            read_latency_cycles: 288_000, // 80 µs @ 3.6 GHz
            write_latency_cycles: 72_000, // 20 µs
            channels: 64,
            blocks: 100 << 20 >> 12, // 100 MiB worth of 4 KiB blocks
        }
    }
}

/// One in-flight command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Command id assigned at submission.
    pub cid: u64,
    /// Virtual cycle at which the device completes it.
    pub complete_at: u64,
}

/// The simulated drive.
#[derive(Debug, Clone)]
pub struct NvmeDevice {
    config: DeviceConfig,
    /// Busy-until time per channel.
    channels: Vec<u64>,
    in_flight: Vec<InFlight>,
    next_cid: u64,
    completed_total: u64,
}

impl NvmeDevice {
    /// A fresh, idle device.
    pub fn new(config: DeviceConfig) -> NvmeDevice {
        let channels = vec![0; config.channels];
        NvmeDevice {
            config,
            channels,
            in_flight: Vec::new(),
            next_cid: 1,
            completed_total: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Submit a command at virtual time `now`; returns its command id.
    ///
    /// # Panics
    /// Panics if `lba` is out of range.
    pub fn submit(&mut self, now: u64, lba: u64, is_read: bool) -> u64 {
        assert!(lba < self.config.blocks, "lba {lba} out of range");
        let latency = if is_read {
            self.config.read_latency_cycles
        } else {
            self.config.write_latency_cycles
        };
        let (slot, &busy_until) = self
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("device has channels");
        let start = now.max(busy_until);
        let complete_at = start + latency;
        self.channels[slot] = complete_at;
        let cid = self.next_cid;
        self.next_cid += 1;
        self.in_flight.push(InFlight { cid, complete_at });
        cid
    }

    /// Poll: remove and return all commands completed by `now`.
    pub fn poll(&mut self, now: u64) -> Vec<InFlight> {
        let (done, pending): (Vec<InFlight>, Vec<InFlight>) =
            self.in_flight.iter().partition(|c| c.complete_at <= now);
        self.in_flight = pending;
        self.completed_total += done.len() as u64;
        done
    }

    /// Earliest completion time of any in-flight command.
    pub fn next_completion_at(&self) -> Option<u64> {
        self.in_flight.iter().map(|c| c.complete_at).min()
    }

    /// Commands currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Commands completed over the device's lifetime.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmeDevice {
        NvmeDevice::new(DeviceConfig {
            read_latency_cycles: 100,
            write_latency_cycles: 40,
            channels: 2,
            blocks: 1_000,
        })
    }

    #[test]
    fn completion_respects_latency() {
        let mut d = dev();
        let cid = d.submit(1_000, 5, true);
        assert!(d.poll(1_099).is_empty());
        let done = d.poll(1_100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cid, cid);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn writes_are_faster_than_reads() {
        let mut d = dev();
        d.submit(0, 1, true);
        d.submit(0, 2, false);
        let done = d.poll(40);
        assert_eq!(done.len(), 1, "only the write is done at t=40");
    }

    #[test]
    fn channels_limit_parallelism() {
        let mut d = dev();
        // Three reads on two channels: the third queues behind a channel.
        d.submit(0, 1, true);
        d.submit(0, 2, true);
        d.submit(0, 3, true);
        assert_eq!(d.poll(100).len(), 2);
        assert!(d.poll(199).is_empty());
        assert_eq!(d.poll(200).len(), 1);
    }

    #[test]
    fn next_completion_tracks_earliest() {
        let mut d = dev();
        assert_eq!(d.next_completion_at(), None);
        d.submit(0, 1, true); // completes at 100
        d.submit(0, 2, false); // completes at 40
        assert_eq!(d.next_completion_at(), Some(40));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lba_bounds_checked() {
        let mut d = dev();
        d.submit(0, 1_000, true);
    }

    #[test]
    fn throughput_cap_matches_channels_over_latency() {
        // With 2 channels and 100-cycle reads the device tops out at one
        // completion per 50 cycles.
        let mut d = dev();
        let mut now = 0;
        let mut done = 0;
        while done < 100 {
            while d.in_flight() < 8 {
                d.submit(now, (done % 100) as u64, true);
            }
            now += 50;
            done += d.poll(now).len();
        }
        let per_op = now as f64 / 100.0;
        assert!((45.0..60.0).contains(&per_op), "cycles/op {per_op}");
    }
}
