//! The SPDK environment layer: process id and timestamp services.
//!
//! This is the entire difference between the paper's naive and optimized
//! enclave ports. The data path itself is syscall-free (polled user-space
//! I/O); what killed the naive port were the *environment* calls —
//! `getpid` in the request allocator and `rdtsc` in the tick counter —
//! each a full ocall inside SGX.
//!
//! * [`SpdkEnv::naive`] — call through every time (native behaviour; fine
//!   on the host, catastrophic in an enclave);
//! * [`SpdkEnv::optimized`] — cache the pid forever ("unproblematic", per
//!   the paper) and serve ticks from a cache that is *corrected by a real
//!   read every `refresh_interval` calls*, extrapolating in between.

use tee_sim::{Machine, Syscalls};

/// Cycles for serving a value from the cache (a load + branch).
const CACHED_CYCLES: u64 = 4;
/// Cycles added to an extrapolated tick estimate (reading the estimate
/// counter and scaling).
const EXTRAPOLATE_CYCLES: u64 = 6;

/// Timestamp/pid provider for the SPDK data path.
#[derive(Debug, Clone)]
pub enum SpdkEnv {
    /// Issue the real syscall on every request.
    Naive,
    /// Cache pid and ticks; correct ticks every `refresh_interval` calls.
    Optimized {
        /// Calls between corrective real timestamp reads.
        refresh_interval: u64,
        /// Cached pid, filled on first use.
        pid: Option<u64>,
        /// Last real tick value read.
        cached_ticks: u64,
        /// Calls since the last correction.
        calls_since_refresh: u64,
    },
}

impl SpdkEnv {
    /// The naive port: every env call is a syscall (ocall in a TEE).
    pub fn naive() -> SpdkEnv {
        SpdkEnv::Naive
    }

    /// The optimized port with the paper's caching fix.
    pub fn optimized(refresh_interval: u64) -> SpdkEnv {
        assert!(refresh_interval > 0, "refresh interval must be nonzero");
        SpdkEnv::Optimized {
            refresh_interval,
            pid: None,
            cached_ticks: 0,
            calls_since_refresh: 0,
        }
    }

    /// `spdk_env_get_pid`: the process id.
    pub fn getpid(&mut self, machine: &mut Machine) -> u64 {
        match self {
            SpdkEnv::Naive => machine.syscall(Syscalls::Getpid),
            SpdkEnv::Optimized { pid, .. } => match pid {
                Some(p) => {
                    machine.compute(CACHED_CYCLES);
                    *p
                }
                None => {
                    let p = machine.syscall(Syscalls::Getpid);
                    *pid = Some(p);
                    p
                }
            },
        }
    }

    /// `spdk_get_ticks` → `rdtsc`: the timestamp counter.
    ///
    /// The optimized variant returns a *slightly stale* value between
    /// corrections — the accuracy/performance trade the paper accepted.
    pub fn get_ticks(&mut self, machine: &mut Machine) -> u64 {
        match self {
            SpdkEnv::Naive => machine.syscall(Syscalls::Rdtsc),
            SpdkEnv::Optimized {
                refresh_interval,
                cached_ticks,
                calls_since_refresh,
                ..
            } => {
                *calls_since_refresh += 1;
                if *calls_since_refresh >= *refresh_interval || *cached_ticks == 0 {
                    *cached_ticks = machine.syscall(Syscalls::Rdtsc);
                    *calls_since_refresh = 0;
                    *cached_ticks
                } else {
                    machine.compute(CACHED_CYCLES + EXTRAPOLATE_CYCLES);
                    // Crude forward estimate so time never appears frozen.
                    *cached_ticks += EXTRAPOLATE_CYCLES;
                    *cached_ticks
                }
            }
        }
    }

    /// Whether this is the optimized variant.
    pub fn is_optimized(&self) -> bool {
        matches!(self, SpdkEnv::Optimized { .. })
    }

    /// Whether the *next* `getpid` will issue a real syscall (rather than
    /// return the cached pid). The profiler uses this to attribute frames
    /// faithfully: the optimized port simply never calls `getpid(2)` again,
    /// so no `getpid` frame should appear.
    pub fn next_getpid_is_real(&self) -> bool {
        match self {
            SpdkEnv::Naive => true,
            SpdkEnv::Optimized { pid, .. } => pid.is_none(),
        }
    }

    /// Whether the *next* `get_ticks` will read the hardware counter (a
    /// corrective refresh) rather than extrapolate from the cache.
    pub fn next_ticks_is_real(&self) -> bool {
        match self {
            SpdkEnv::Naive => true,
            SpdkEnv::Optimized {
                refresh_interval,
                cached_ticks,
                calls_since_refresh,
                ..
            } => *cached_ticks == 0 || calls_since_refresh + 1 >= *refresh_interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_sim::CostModel;

    fn enclave_machine() -> Machine {
        let mut m = Machine::new(CostModel::sgx_v1());
        m.ecall();
        m
    }

    #[test]
    fn naive_pays_an_ocall_per_call() {
        let mut m = enclave_machine();
        let mut env = SpdkEnv::naive();
        for _ in 0..5 {
            env.getpid(&mut m);
            env.get_ticks(&mut m);
        }
        assert_eq!(m.stats().ocalls, 10);
    }

    #[test]
    fn optimized_pays_one_getpid_ever() {
        let mut m = enclave_machine();
        let mut env = SpdkEnv::optimized(100);
        let p1 = env.getpid(&mut m);
        let after_first = m.stats().ocalls;
        for _ in 0..100 {
            assert_eq!(env.getpid(&mut m), p1);
        }
        assert_eq!(m.stats().ocalls, after_first);
    }

    #[test]
    fn optimized_ticks_refresh_periodically() {
        let mut m = enclave_machine();
        let mut env = SpdkEnv::optimized(10);
        let mut real_reads = m.stats().ocalls;
        env.get_ticks(&mut m); // first call is a real read
        real_reads = m.stats().ocalls - real_reads;
        assert_eq!(real_reads, 1);
        let before = m.stats().ocalls;
        for _ in 0..30 {
            env.get_ticks(&mut m);
        }
        let refreshes = m.stats().ocalls - before;
        assert_eq!(refreshes, 3, "every 10th call corrects");
    }

    #[test]
    fn optimized_ticks_are_monotone_and_roughly_tracking() {
        let mut m = enclave_machine();
        let mut env = SpdkEnv::optimized(8);
        let mut last = 0;
        for _ in 0..50 {
            m.compute(1_000);
            let t = env.get_ticks(&mut m);
            assert!(t >= last, "ticks went backwards");
            last = t;
        }
        // After the most recent correction the cache is within one refresh
        // window of real time.
        let real = m.clock().now();
        assert!(
            real.abs_diff(last) < 20_000,
            "cache drifted: {last} vs {real}"
        );
    }

    #[test]
    fn optimized_is_cheaper_in_the_enclave() {
        let cost_of = |env: &mut SpdkEnv| {
            let mut m = enclave_machine();
            let t0 = m.clock().now();
            for _ in 0..100 {
                env.getpid(&mut m);
                env.get_ticks(&mut m);
            }
            m.clock().now() - t0
        };
        let naive = cost_of(&mut SpdkEnv::naive());
        let optimized = cost_of(&mut SpdkEnv::optimized(128));
        assert!(
            naive > optimized * 20,
            "naive {naive} should dwarf optimized {optimized}"
        );
    }
}
