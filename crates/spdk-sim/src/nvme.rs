//! NVMe queue pairs: submission/completion rings with polled completions,
//! as SPDK drives them from user space (no interrupts, no syscalls).

use tee_sim::Machine;

use crate::device::NvmeDevice;

/// Cycles to build an NVMe command and ring the submission doorbell
/// (an MMIO write).
const SUBMIT_CYCLES: u64 = 250;
/// Cycles to check the completion queue head once (an MMIO/DMA-coherent
/// memory read).
const POLL_CYCLES: u64 = 120;
/// Cycles to reap one completion entry (phase-bit check, cid match,
/// doorbell update).
const REAP_CYCLES: u64 = 180;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// 4 KiB random read.
    Read,
    /// 4 KiB random write.
    Write,
}

/// Error returned when the submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("submission queue full")
    }
}

impl std::error::Error for QueueFull {}

/// One I/O queue pair bound to a device.
#[derive(Debug)]
pub struct QueuePair {
    device: NvmeDevice,
    depth: usize,
    outstanding: usize,
    submitted_total: u64,
    completed_total: u64,
}

impl QueuePair {
    /// Create a queue pair of the given depth over `device`.
    pub fn new(device: NvmeDevice, depth: usize) -> QueuePair {
        QueuePair {
            device,
            depth,
            outstanding: 0,
            submitted_total: 0,
            completed_total: 0,
        }
    }

    /// Queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands submitted but not yet reaped.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Lifetime submission count.
    pub fn submitted_total(&self) -> u64 {
        self.submitted_total
    }

    /// Lifetime completion count.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// The underlying device (for test introspection).
    pub fn device(&self) -> &NvmeDevice {
        &self.device
    }

    /// Submit one 4 KiB command.
    ///
    /// # Errors
    /// Returns [`QueueFull`] when `depth` commands are outstanding.
    pub fn submit(
        &mut self,
        machine: &mut Machine,
        lba: u64,
        kind: IoKind,
    ) -> Result<u64, QueueFull> {
        if self.outstanding >= self.depth {
            return Err(QueueFull);
        }
        machine.compute(SUBMIT_CYCLES);
        let cid = self
            .device
            .submit(machine.clock().now(), lba, kind == IoKind::Read);
        self.outstanding += 1;
        self.submitted_total += 1;
        Ok(cid)
    }

    /// Poll the completion queue; returns the cids reaped.
    pub fn process_completions(&mut self, machine: &mut Machine) -> Vec<u64> {
        machine.compute(POLL_CYCLES);
        let done = self.device.poll(machine.clock().now());
        machine.compute(done.len() as u64 * REAP_CYCLES);
        self.outstanding -= done.len();
        self.completed_total += done.len() as u64;
        done.into_iter().map(|c| c.cid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use tee_sim::CostModel;

    fn qp(depth: usize) -> (QueuePair, Machine) {
        let device = NvmeDevice::new(DeviceConfig {
            read_latency_cycles: 1_000,
            write_latency_cycles: 400,
            channels: 8,
            blocks: 1_000,
        });
        (
            QueuePair::new(device, depth),
            Machine::new(CostModel::native()),
        )
    }

    #[test]
    fn submit_poll_complete_cycle() {
        let (mut q, mut m) = qp(4);
        q.submit(&mut m, 1, IoKind::Read).unwrap();
        assert_eq!(q.outstanding(), 1);
        assert!(q.process_completions(&mut m).is_empty());
        m.compute(2_000);
        let done = q.process_completions(&mut m);
        assert_eq!(done.len(), 1);
        assert_eq!(q.outstanding(), 0);
        assert_eq!(q.completed_total(), 1);
    }

    #[test]
    fn queue_depth_enforced() {
        let (mut q, mut m) = qp(2);
        q.submit(&mut m, 1, IoKind::Read).unwrap();
        q.submit(&mut m, 2, IoKind::Read).unwrap();
        assert_eq!(q.submit(&mut m, 3, IoKind::Read), Err(QueueFull));
        m.compute(2_000);
        q.process_completions(&mut m);
        assert!(q.submit(&mut m, 3, IoKind::Read).is_ok());
    }

    #[test]
    fn completions_preserve_counts() {
        let (mut q, mut m) = qp(8);
        for i in 0..8 {
            q.submit(
                &mut m,
                i,
                if i % 2 == 0 {
                    IoKind::Read
                } else {
                    IoKind::Write
                },
            )
            .unwrap();
        }
        let mut reaped = 0;
        while reaped < 8 {
            m.compute(500);
            reaped += q.process_completions(&mut m).len();
        }
        assert_eq!(q.submitted_total(), 8);
        assert_eq!(q.completed_total(), 8);
        assert_eq!(q.device().completed_total(), 8);
    }
}
