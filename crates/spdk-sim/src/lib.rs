//! # spdk-sim — a user-space NVMe storage stack (the SPDK of §IV-C)
//!
//! The paper's case study ports Intel SPDK into an SGX enclave, profiles it
//! with TEE-Perf, and finds the naive port spending ~72 % of its time in
//! `getpid` ocalls and ~20 % in `rdtsc` emulation (Figure 6, top). After
//! caching the pid and periodically-corrected timestamps, performance
//! returns to (slightly above) native: 223,808 → 15,821 → 232,736 IOPS.
//!
//! This crate rebuilds that experiment end to end:
//!
//! * [`device`] — a simulated NVMe SSD (per-channel service model sized
//!   after the paper's Intel DC P3700);
//! * [`nvme`] — queue pairs with submission/completion rings and polled
//!   completions, SPDK-style (no interrupts, no syscalls in the data path —
//!   *except* the environment calls below);
//! * [`env`](mod@env) — the environment layer: `getpid` and `get_ticks`/`rdtsc`.
//!   [`env::SpdkEnv::naive`] issues a real syscall each time (an ocall
//!   inside a TEE — the bug the paper found); [`env::SpdkEnv::optimized`]
//!   caches the pid and refreshes the cached timestamp only every N calls
//!   (the paper's fix);
//! * [`perf_tool`] — the `spdk perf` benchmark: 4 KiB random reads/writes
//!   (80 % reads) at a fixed queue depth, with the exact call frames of
//!   Figure 6 probed for the flame graphs.

#![forbid(unsafe_code)]

pub mod device;
pub mod env;
pub mod nvme;
pub mod perf_tool;

pub use device::{DeviceConfig, NvmeDevice};
pub use env::SpdkEnv;
pub use nvme::{IoKind, QueuePair};
pub use perf_tool::{run_perf_tool, PerfToolOptions, PerfToolResult};
