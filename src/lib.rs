//! # teeperf — a reproduction of *TEE-Perf: A Profiler for Trusted
//! Execution Environments* (Bailleu et al., DSN 2019) in Rust
//!
//! TEE-Perf is an architecture- and platform-independent, method-level
//! profiler for applications running inside trusted execution environments
//! (Intel SGX, ARM TrustZone, AMD SEV, RISC-V Keystone). It needs no
//! hardware performance counters and no kernel support: the application is
//! recompiled with hooks at every call and return, the hooks write
//! timestamped events into shared memory using a lock-free log, and the
//! timestamps come from a *software counter* — a host thread incrementing
//! a shared word in a tight loop.
//!
//! This crate is a façade re-exporting the whole reproduction:
//!
//! | module | paper stage | contents |
//! |---|---|---|
//! | [`compiler`] | stage 1 | instrumentation pass + run drivers |
//! | [`core`] | stage 2 | log format, counters, recorder, hooks, native API |
//! | [`analyzer`] | stage 3 | call-stack reconstruction, profiles, query engine |
//! | [`flamegraph`] | stage 4 | folded stacks, SVG/ASCII rendering |
//! | [`sim`] | substrate | the deterministic TEE simulator |
//! | [`mc`] | substrate | the Mini-C language and VM the profiler instruments |
//! | [`perf`] | baseline | the sampling profiler (`Linux perf` analogue) |
//! | [`phoenix`] | workload | the Phoenix 2.0 suite in Mini-C |
//! | [`rocksdb`] | workload | the LSM key–value store + `db_bench` (Figure 5) |
//! | [`spdk`] | workload | the user-space NVMe stack + case study (Figure 6) |
//!
//! ## Quickstart
//!
//! ```
//! use teeperf::compiler::{compile_instrumented, profile_program, InstrumentOptions};
//! use teeperf::analyzer::Analyzer;
//! use teeperf::flamegraph::FlameGraph;
//! use teeperf::core::RecorderConfig;
//! use teeperf::sim::CostModel;
//! use teeperf::mc::RunConfig;
//!
//! let source = r#"
//!     fn hot(n: int) -> int {
//!         let s: int = 0;
//!         for (let i: int = 0; i < n; i = i + 1) { s = s + i; }
//!         return s;
//!     }
//!     fn main() -> int { return hot(1000); }
//! "#;
//! // Stage 1: recompile with instrumentation; stage 2: run under the
//! // recorder inside a simulated SGX enclave.
//! let program = compile_instrumented(source, &InstrumentOptions::default())?;
//! let run = profile_program(
//!     program, CostModel::sgx_v1(), RunConfig::default(),
//!     &RecorderConfig::default(), |_| Ok(()),
//! )?;
//! // Stage 3: analyze; stage 4: visualize.
//! let analyzer = Analyzer::new(run.log, run.debug)?;
//! let profile = analyzer.profile();
//! assert_eq!(profile.method("hot").unwrap().calls, 1);
//! let graph = FlameGraph::from_folded(&profile.folded);
//! assert!(graph.fraction("hot") > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

/// Stage 1 — the instrumentation pass and run drivers
/// ([`teeperf_compiler`]).
pub mod compiler {
    pub use teeperf_compiler::*;
}

/// Stage 2 — the recorder runtime ([`teeperf_core`]).
pub mod core {
    pub use teeperf_core::*;
}

/// Stage 3 — the offline analyzer and query engine ([`teeperf_analyzer`]).
pub mod analyzer {
    pub use teeperf_analyzer::*;
}

/// Stage 4 — the flame-graph visualizer ([`teeperf_flamegraph`]).
pub mod flamegraph {
    pub use teeperf_flamegraph::*;
}

/// The deterministic TEE hardware simulator ([`tee_sim`]).
pub mod sim {
    pub use tee_sim::*;
}

/// The Mini-C language and VM ([`mcvm`]).
pub mod mc {
    pub use mcvm::*;
}

/// The sampling-profiler baseline ([`perf_sim`]).
pub mod perf {
    pub use perf_sim::*;
}

/// The Phoenix 2.0 workload suite ([`phoenix`]).
pub mod phoenix {
    pub use ::phoenix::*;
}

/// The LSM key–value store and `db_bench` ([`lsm_store`]).
pub mod rocksdb {
    pub use lsm_store::*;
}

/// The user-space NVMe stack and `perf` tool ([`spdk_sim`]).
pub mod spdk {
    pub use spdk_sim::*;
}
