#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 build + tests, workspace tests.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh quick    # skip the release build (lints + debug tests)
#
# The build environment has no route to crates.io (see EXPERIMENTS.md,
# "Seed-test triage"), so everything runs --offline against the vendored
# third_party/ shims.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

run() {
  echo "==> $*"
  "$@"
}

# Like `run`, but under a hard wall-clock limit. SIGKILL, not the default
# SIGTERM: a consumer wedged in a spin loop (or a test harness stuck in a
# mutex) can shrug off TERM and hang CI anyway.
tmo() {
  local limit="$1"
  shift
  echo "==> [timeout ${limit}s] $*"
  timeout --signal=KILL "$limit" "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings \
  -D clippy::undocumented_unsafe_blocks -D clippy::dbg_macro

# API docs must build warning-free (broken intra-doc links, missing docs
# on public items surfaced by the crates' own lint settings, etc.).
# --lib: the `teeperf` CLI bin collides with the root facade lib's doc
# output path; library APIs are what the docs gate is for.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --lib

# Tier-1 (ROADMAP.md): the root facade build + tests must stay green.
if [ "$mode" != "quick" ]; then
  run cargo build --release --offline
fi
run cargo test -q --offline

# The rest of the workspace.
run cargo test -q --workspace --offline

# Fault-injection matrix (ISSUE 5): every FaultPlan fault kind crossed with
# both consumers (live LiveLogSource and FileReplaySource replay), plus the
# registry crash acceptance test and the writer-crash salvage proptest.
# Each test binary runs under a hard 60s timeout so a salvage regression
# that hangs a consumer fails the gate instead of wedging CI (the tests
# also carry an in-process hang guard that aborts after 60s of no exit).
tmo 60 cargo test -q --offline -p teeperf-live --test fault_matrix
tmo 60 cargo test -q --offline -p teeperf-core faults::
tmo 60 cargo test -q --offline -p teeperf-core source::tests

# Protocol lint (ISSUE 6): no raw atomics outside the SharedMem/MemModel
# seam, every Ordering choice justified with an `// ord:` comment, no
# wall-clock or OS randomness in protocol modules, no `unsafe` anywhere.
run cargo run -q --offline -p teeperf-check --bin teeperf-lint -- .

# Model-check smoke (ISSUE 6): exhaustive DFS over the 2-writer config plus
# 200 seeded PCT schedules on the clean protocol, then both known mutation
# classes must be found and their schedules must replay. Built untimed
# (compile cost is not the smoke's budget), then run under a hard KILL
# timeout: a scheduler bug that deadlocks the virtual fleet must fail the
# gate, not hang it. 240s: the regime-flip DFS configs (ISSUE 10) grew
# the clean sweep past the old 120s budget — the limit is a deadlock
# detector, not a performance gate.
run cargo build -q --release --offline -p teeperf-check --bin teeperf-check
tmo 240 cargo run -q --release --offline -p teeperf-check --bin teeperf-check -- --smoke

# Daemon smoke (ISSUE 7): start a real teeperfd over a scratch registration
# directory, run a scripted writer process through the file-backed shared
# log, then curl /healthz and /snapshot off the live HTTP listener and
# assert the merged totals are non-empty. Shutdown is the stdin-EOF
# contract: the daemon's stdin pipe is closed and it must exit 0 on its
# own. The whole stage runs under a hard KILL timeout so a wedged loop
# fails the gate instead of hanging CI.
daemon_smoke() {
  local dir out pid addr snap
  dir="$(mktemp -d)"
  out="$dir/out.log"
  run cargo build -q --offline -p teeperf-daemon
  # The daemon's stdin is a fifo we hold open on FD 3; closing FD 3 is the
  # shutdown signal (the stdin-EOF contract, DESIGN.md §12).
  mkfifo "$dir/stdin"
  target/debug/teeperfd --dir "$dir/reg" --listen 127.0.0.1:0 --pump-ms 5 \
    --scan-every 1 < "$dir/stdin" > "$out" &
  pid=$!
  exec 3> "$dir/stdin" # holds the fifo open for the daemon's lifetime
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^teeperfd listening on //p' "$out" | head -1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "daemon-smoke: no listen banner"; return 1; }
  run target/debug/teeperf-shm-writer --dir "$dir/reg" --iterations 7
  [ "$(curl -sf "http://$addr/healthz")" = "ok" ] \
    || { echo "daemon-smoke: /healthz failed"; return 1; }
  for _ in $(seq 1 100); do
    snap="$(curl -sf "http://$addr/snapshot" || true)"
    echo "$snap" | grep -q "^events 30$" && break
    sleep 0.1
  done
  echo "$snap" | grep -q "^events 30$" \
    || { echo "daemon-smoke: merged events never reached 30"; echo "$snap"; return 1; }
  echo "$snap" | grep -q "^total_ticks 85$" \
    || { echo "daemon-smoke: wrong merged totals"; echo "$snap"; return 1; }
  echo "$snap" | grep -q "^work 7 70 42$" \
    || { echo "daemon-smoke: method table missing"; echo "$snap"; return 1; }
  exec 3>&- # stdin EOF: the graceful-shutdown trigger
  wait "$pid" || { echo "daemon-smoke: daemon did not exit 0"; return 1; }
  grep -q "teeperfd: shut down" "$out" \
    || { echo "daemon-smoke: no closing report"; cat "$out"; return 1; }
  rm -rf "$dir"
  echo "==> daemon-smoke ok"
}
tmo 120 bash -c "$(declare -f daemon_smoke run); daemon_smoke"

# Query smoke (ISSUE 9): teeperfd with short retention windows over a
# scratch registration directory, two real writer processes, then the
# windowed query engine must answer off the live HTTP listener: /windows
# lists both pids' retained windows, /query serves a last-5 top-N and a
# two-window diff. Same stdin-EOF shutdown contract and hard KILL timeout
# as the daemon smoke.
query_smoke() {
  local dir out pid addr listing q
  dir="$(mktemp -d)"
  out="$dir/out.log"
  run cargo build -q --offline -p teeperf-daemon
  mkfifo "$dir/stdin"
  target/debug/teeperfd --dir "$dir/reg" --listen 127.0.0.1:0 --pump-ms 5 \
    --scan-every 1 --window-interval 12 --retain 16 < "$dir/stdin" > "$out" &
  pid=$!
  exec 3> "$dir/stdin" # holds the fifo open for the daemon's lifetime
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^teeperfd listening on //p' "$out" | head -1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "query-smoke: no listen banner"; return 1; }
  # Two writers, distinct pids: 7 iterations puts main's exit in window 7,
  # 5 iterations in window 5 (12 virtual ticks per iteration, interval 12).
  run target/debug/teeperf-shm-writer --dir "$dir/reg" --iterations 7
  run target/debug/teeperf-shm-writer --dir "$dir/reg" --iterations 5
  for _ in $(seq 1 100); do
    listing="$(curl -sf "http://$addr/windows" || true)"
    echo "$listing" | grep -qF "window 7..=7" \
      && echo "$listing" | grep -qF "window 5..=5" && break
    sleep 0.1
  done
  echo "$listing" | grep -qF "window 7..=7" \
    || { echo "query-smoke: writer 1 windows never appeared"; echo "$listing"; return 1; }
  echo "$listing" | grep -qF "window 5..=5" \
    || { echo "query-smoke: writer 2 windows never appeared"; echo "$listing"; return 1; }
  [ "$(echo "$listing" | grep -c "interval 12")" = 2 ] \
    || { echo "query-smoke: expected two pid listings"; echo "$listing"; return 1; }
  q="$(curl -sf "http://$addr/query?windows=last:5&top=10")" \
    || { echo "query-smoke: last-5 query failed"; return 1; }
  echo "$q" | grep -q "^work " \
    || { echo "query-smoke: last-5 top-N missing work"; echo "$q"; return 1; }
  q="$(curl -sf "http://$addr/query?diff=2,3")" \
    || { echo "query-smoke: diff query failed"; return 1; }
  echo "$q" | grep -qF "diff 2 vs 3" \
    || { echo "query-smoke: diff header missing"; echo "$q"; return 1; }
  exec 3>&- # stdin EOF: the graceful-shutdown trigger
  wait "$pid" || { echo "query-smoke: daemon did not exit 0"; return 1; }
  rm -rf "$dir"
  echo "==> query-smoke ok"
}
tmo 120 bash -c "$(declare -f query_smoke run); query_smoke"

# Analyzer-throughput smoke: small log, shards {1,2}; asserts the JSON
# artifact is written and the model speedup at 2 shards is >= 1.0. Results
# go to a scratch dir so the checked-in full-scale JSON stays untouched.
if [ "$mode" != "quick" ]; then
  TEEPERF_RESULTS="$(mktemp -d)" \
    run cargo run --release --offline -p bench --bin analyze_throughput -- --smoke
fi

# Contention smoke (ISSUE 8): a tiny writers x batch-slots x transition-mode
# grid through the real lock-free protocol on real OS threads. The bin exits
# non-zero if any cell dropped an entry or drained differently from the
# unbatched classic run of the same writer count — the exactness gate for
# batched reservation. Hard KILL timeout: a livelocked reservation loop
# must fail the gate, not hang it.
if [ "$mode" != "quick" ]; then
  TEEPERF_RESULTS="$(mktemp -d)" \
    tmo 120 cargo run --release --offline -p bench --bin record_contention -- --smoke
fi

# Query-latency smoke (ISSUE 9): a tiny retained-window sweep through the
# registry's /query serving path; the bin exits non-zero if any window
# count fails to answer the last-5, all-merge or diff query shapes.
if [ "$mode" != "quick" ]; then
  TEEPERF_RESULTS="$(mktemp -d)" \
    tmo 120 cargo run --release --offline -p bench --bin query_latency -- --smoke
fi

# Regime smoke (ISSUE 10): a calm -> storm -> recovery overload ramp
# through the budgeted fidelity controller. The bin exits non-zero unless
# the budgeted session degrades into Sampled during the storm, settles
# within its loss budget (where the unbudgeted full run blows it),
# accounts for every offered event, and returns to Full during recovery.
if [ "$mode" != "quick" ]; then
  TEEPERF_RESULTS="$(mktemp -d)" \
    tmo 120 cargo run --release --offline -p bench --bin regime_bench -- --smoke
fi

echo "==> ci ok"
