#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 build + tests, workspace tests.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh quick    # skip the release build (lints + debug tests)
#
# The build environment has no route to crates.io (see EXPERIMENTS.md,
# "Seed-test triage"), so everything runs --offline against the vendored
# third_party/ shims.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

run() {
  echo "==> $*"
  "$@"
}

# Like `run`, but under a hard wall-clock limit. SIGKILL, not the default
# SIGTERM: a consumer wedged in a spin loop (or a test harness stuck in a
# mutex) can shrug off TERM and hang CI anyway.
tmo() {
  local limit="$1"
  shift
  echo "==> [timeout ${limit}s] $*"
  timeout --signal=KILL "$limit" "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings \
  -D clippy::undocumented_unsafe_blocks -D clippy::dbg_macro

# API docs must build warning-free (broken intra-doc links, missing docs
# on public items surfaced by the crates' own lint settings, etc.).
# --lib: the `teeperf` CLI bin collides with the root facade lib's doc
# output path; library APIs are what the docs gate is for.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --lib

# Tier-1 (ROADMAP.md): the root facade build + tests must stay green.
if [ "$mode" != "quick" ]; then
  run cargo build --release --offline
fi
run cargo test -q --offline

# The rest of the workspace.
run cargo test -q --workspace --offline

# Fault-injection matrix (ISSUE 5): every FaultPlan fault kind crossed with
# both consumers (live LiveLogSource and FileReplaySource replay), plus the
# registry crash acceptance test and the writer-crash salvage proptest.
# Each test binary runs under a hard 60s timeout so a salvage regression
# that hangs a consumer fails the gate instead of wedging CI (the tests
# also carry an in-process hang guard that aborts after 60s of no exit).
tmo 60 cargo test -q --offline -p teeperf-live --test fault_matrix
tmo 60 cargo test -q --offline -p teeperf-core faults::
tmo 60 cargo test -q --offline -p teeperf-core source::tests

# Protocol lint (ISSUE 6): no raw atomics outside the SharedMem/MemModel
# seam, every Ordering choice justified with an `// ord:` comment, no
# wall-clock or OS randomness in protocol modules, no `unsafe` anywhere.
run cargo run -q --offline -p teeperf-check --bin teeperf-lint -- .

# Model-check smoke (ISSUE 6): exhaustive DFS over the 2-writer config plus
# 200 seeded PCT schedules on the clean protocol, then both known mutation
# classes must be found and their schedules must replay. Built untimed
# (compile cost is not the smoke's budget), then run under a hard KILL
# timeout: a scheduler bug that deadlocks the virtual fleet must fail the
# gate, not hang it.
run cargo build -q --release --offline -p teeperf-check --bin teeperf-check
tmo 120 cargo run -q --release --offline -p teeperf-check --bin teeperf-check -- --smoke

# Analyzer-throughput smoke: small log, shards {1,2}; asserts the JSON
# artifact is written and the model speedup at 2 shards is >= 1.0. Results
# go to a scratch dir so the checked-in full-scale JSON stays untouched.
if [ "$mode" != "quick" ]; then
  TEEPERF_RESULTS="$(mktemp -d)" \
    run cargo run --release --offline -p bench --bin analyze_throughput -- --smoke
fi

echo "==> ci ok"
